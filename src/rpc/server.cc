#include "rpc/server.h"

#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <utility>

namespace memdb::rpc {

namespace {
// Per-readiness read cap; level-triggered epoll re-reports leftovers.
constexpr size_t kReadChunk = 64 * 1024;
constexpr size_t kMaxReadPerEvent = 1u << 20;

uint64_t NowUs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}
}  // namespace

Server::Server(LoopThread* loop, std::string bind_address, uint16_t port)
    : loop_(loop),
      bind_address_(std::move(bind_address)),
      requested_port_(port) {}

// lint:off-loop -- teardown runs on the embedding thread.
Server::~Server() { Stop(); }

void Server::RegisterHandler(const std::string& method, Handler handler) {
  handlers_[method] = std::move(handler);
}

void Server::set_metrics(MetricsRegistry* registry) {
  metrics_ = registry;
  requests_ = registry->GetCounter("rpc_server_requests_total");
  bad_frames_ = registry->GetCounter("rpc_server_bad_frames_total");
  no_method_ = registry->GetCounter("rpc_server_no_method_total");
  conns_gauge_ = registry->GetGauge("rpc_server_connections");
}

// lint:off-loop -- startup runs on the embedding thread; the PostSync
// rendezvous hands loop-affine state (listener, watch set) to the loop.
Status Server::Start() {
  Status result = Status::OK();
  loop_->PostSync([this, &result] {
    result = listener_.Open(bind_address_, requested_port_, 128);
    if (!result.ok()) return;
    listener_handler_.on_ready = [this](uint32_t) { AcceptPending(); };
    result =
        loop_->Watch(listener_.fd(), net::kReadable, &listener_handler_);
    if (!result.ok()) {
      listener_.Close();
      return;
    }
    port_ = listener_.port();
    started_ = true;
  });
  return result;
}

// lint:off-loop -- teardown runs on the embedding thread (see Start).
void Server::Stop() {
  if (!started_) return;
  loop_->PostSync([this] {
    stopping_ = true;
    if (listener_.fd() >= 0) loop_->Unwatch(listener_.fd());
    listener_.Close();
    // CloseConn mutates conns_; drain via ids.
    std::vector<Conn*> all;
    all.reserve(conns_.size());
    for (auto& [id, c] : conns_) all.push_back(c.get());
    for (Conn* c : all) CloseConn(c);
  });
  started_ = false;
}

void Server::AcceptPending() {
  loop_->AssertOnLoopThread();
  for (;;) {
    const int fd = listener_.Accept();
    if (fd < 0) return;
    auto conn = std::make_unique<Conn>();
    Conn* c = conn.get();
    c->fd = fd;
    c->id = next_conn_id_++;
    c->handler.on_ready = [this, c](uint32_t events) {
      OnConnReady(c, events);
    };
    if (!loop_->Watch(fd, net::kReadable, &c->handler).ok()) {
      ::close(fd);
      continue;
    }
    conns_.emplace(c->id, std::move(conn));
    if (conns_gauge_ != nullptr) {
      conns_gauge_->Set(static_cast<int64_t>(conns_.size()));
    }
  }
}

void Server::OnConnReady(Conn* c, uint32_t events) {
  loop_->AssertOnLoopThread();
  if (c->dead) return;
  if (events & (net::kReadable | net::kClosed)) ReadFrames(c);
  if (c->dead) return;
  if (events & net::kWritable) FlushConn(c);
}

void Server::ReadFrames(Conn* c) {
  size_t total = 0;
  for (;;) {
    const size_t old = c->in.size();
    c->in.resize(old + kReadChunk);
    const ssize_t n = ::read(c->fd, c->in.data() + old, kReadChunk);
    if (n > 0) {
      c->in.resize(old + static_cast<size_t>(n));
      total += static_cast<size_t>(n);
      if (total >= kMaxReadPerEvent) break;
      continue;
    }
    c->in.resize(old);
    if (n == 0) {  // peer closed; serve already-buffered frames, then close
      CloseConn(c);
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    CloseConn(c);
    return;
  }

  size_t off = 0;
  while (off < c->in.size()) {
    Frame frame;
    size_t consumed = 0;
    std::string error;
    const FrameDecode r = DecodeFrame(c->in.data() + off,
                                      c->in.size() - off, &consumed, &frame,
                                      &error);
    if (r == FrameDecode::kNeedMore) break;
    if (r == FrameDecode::kError) {
      if (bad_frames_ != nullptr) bad_frames_->Increment();
      CloseConn(c);
      return;
    }
    off += consumed;
    if (frame.type == FrameType::kRequest) Dispatch(c, std::move(frame));
    // Response frames arriving at a server are ignored (protocol misuse).
    if (c->dead) return;
  }
  if (off > 0) c->in.erase(0, off);
}

void Server::Dispatch(Conn* c, Frame&& frame) {
  if (requests_ != nullptr) requests_->Increment();
  if (fault_.ShouldDropRequest(frame.method)) return;
  auto it = handlers_.find(frame.method);
  if (it == handlers_.end()) {
    if (no_method_ != nullptr) no_method_->Increment();
    Frame rsp;
    rsp.type = FrameType::kResponse;
    rsp.code = Code::kNoMethod;
    rsp.request_id = frame.request_id;
    rsp.trace_id = frame.trace_id;
    rsp.method = frame.method;
    SendResponse(c->id, std::move(rsp));
    return;
  }
  if (trace_ != nullptr && frame.trace_id != 0) {
    trace_->Record(frame.trace_id, "rpc.dispatch", NowUs(), frame.request_id);
  }
  Call call;
  call.method = frame.method;
  call.payload = std::move(frame.payload);
  call.trace_id = frame.trace_id;
  call.deadline_ms = frame.deadline_ms;
  const uint64_t conn_id = c->id;
  const uint64_t request_id = frame.request_id;
  const uint64_t trace_id = frame.trace_id;
  const std::string method = frame.method;
  call.respond = [this, conn_id, request_id, trace_id,
                  method](Code code, std::string payload) {
    // Cross-thread safe: hop onto the loop. The server outlives its calls
    // only by contract (Stop() before destruction), matching the net layer.
    loop_->Post([this, conn_id, request_id, trace_id, method, code,
                 payload = std::move(payload)]() mutable {
      Frame rsp;
      rsp.type = FrameType::kResponse;
      rsp.code = code;
      rsp.request_id = request_id;
      rsp.trace_id = trace_id;
      rsp.method = method;
      rsp.payload = std::move(payload);
      SendResponse(conn_id, std::move(rsp));
    });
  };
  it->second(std::move(call));
}

void Server::SendResponse(uint64_t conn_id, Frame&& frame) {
  auto it = conns_.find(conn_id);
  if (it == conns_.end() || it->second->dead) return;
  const FaultInjector::ResponsePlan plan = fault_.OnResponse(frame.method);
  if (plan.drop) return;
  if (plan.delay_ms > 0) {
    const bool dup = plan.duplicate;
    loop_->After(plan.delay_ms,
                 [this, conn_id, dup, frame = std::move(frame)]() mutable {
                   // Re-resolve: the connection may have died meanwhile.
                   auto it2 = conns_.find(conn_id);
                   if (it2 == conns_.end() || it2->second->dead) return;
                   QueueFrame(it2->second.get(), frame);
                   if (dup) QueueFrame(it2->second.get(), frame);
                 });
    return;
  }
  Conn* c = it->second.get();
  QueueFrame(c, frame);
  if (plan.duplicate) QueueFrame(c, frame);
}

void Server::QueueFrame(Conn* c, const Frame& frame) {
  EncodeFrame(frame, &c->out);
  FlushConn(c);
}

void Server::FlushConn(Conn* c) {
  while (c->out_sent < c->out.size()) {
    const ssize_t n = ::send(c->fd, c->out.data() + c->out_sent,
                             c->out.size() - c->out_sent, MSG_NOSIGNAL);
    if (n > 0) {
      c->out_sent += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (n < 0 && errno == EINTR) continue;
    CloseConn(c);
    return;
  }
  if (c->out_sent == c->out.size()) {
    c->out.clear();
    c->out_sent = 0;
  } else if (c->out_sent > (1u << 20)) {
    c->out.erase(0, c->out_sent);
    c->out_sent = 0;
  }
  const bool want = !c->out.empty();
  if (want != c->want_write) {
    c->want_write = want;
    Status rearm = loop_->Rearm(
        c->fd, want ? (net::kReadable | net::kWritable) : net::kReadable,
        &c->handler);
    if (!rearm.ok()) {
      // Same contract as a failed send: the kernel interest set is wrong,
      // the peer would wait forever for the rest of this response.
      CloseConn(c);
    }
  }
}

void Server::CloseConn(Conn* c) {
  if (c->dead) return;
  c->dead = true;
  loop_->Unwatch(c->fd);
  ::close(c->fd);
  c->fd = -1;
  if (conns_gauge_ != nullptr) {
    conns_gauge_->Set(static_cast<int64_t>(conns_.size() - 1));
  }
  // Defer destruction one loop turn: the current epoll batch may still hold
  // this connection's tag, and its handler must stay callable (it no-ops on
  // dead). Late respond() closures for this conn resolve by id and miss.
  auto it = conns_.find(c->id);
  if (it != conns_.end()) {
    loop_->Post([owned = std::shared_ptr<Conn>(std::move(it->second))] {});
    conns_.erase(it);
  }
}

}  // namespace memdb::rpc
