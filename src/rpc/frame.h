// Length-prefixed binary RPC framing for the internal service plane (the
// wire between memorydb-server and the out-of-process transaction log, and
// between memorydb-txlogd replicas).
//
// Layout (little-endian fixed-width header, then variable parts):
//
//   +--------+-----------------------------------------------------------+
//   | u32    | frame length: bytes that FOLLOW this field                |
//   | u32    | magic 'MRPC' (0x4350524D on the wire)                     |
//   | u8     | protocol version (kVersion)                               |
//   | u8     | type: 0 = request, 1 = response                           |
//   | u8     | code: transport status (responses; 0 on requests)         |
//   | u8     | reserved (0)                                              |
//   | u64    | request id: correlates a response on a multiplexed conn   |
//   | u64    | trace id: write-path trace context (0 = untraced)         |
//   | u64    | deadline: caller budget in ms (requests; 0 = none)        |
//   | u16    | method length M (requests; 0 on responses)                |
//   | M      | method name bytes                                         |
//   | P      | payload (application-encoded body)                        |
//   | u32    | checksum: low 32 bits of CRC64 over magic..payload        |
//   +--------+-----------------------------------------------------------+
//
// The checksum covers everything after the length field and before itself,
// so a frame corrupted anywhere (including the header) is rejected rather
// than dispatched.

#ifndef MEMDB_RPC_FRAME_H_
#define MEMDB_RPC_FRAME_H_

#include <cstdint>
#include <string>

namespace memdb::rpc {

inline constexpr uint32_t kMagic = 0x4350524Du;  // "MRPC" little-endian
inline constexpr uint8_t kVersion = 1;
// Guard rail against absurd allocations from a corrupt or hostile peer.
inline constexpr size_t kMaxFrameBytes = 64u << 20;

enum class FrameType : uint8_t { kRequest = 0, kResponse = 1 };

// Transport-level response codes; application-level outcomes ride in the
// payload (e.g. txlog::wire::ClientResult).
enum class Code : uint8_t {
  kOk = 0,
  kNoMethod = 1,     // no handler registered for the method
  kShutdown = 2,     // server is stopping; call will never be served
  kBadRequest = 3,   // handler could not decode the payload
  kOverloaded = 4,   // server refused to queue the call
};

struct Frame {
  FrameType type = FrameType::kRequest;
  Code code = Code::kOk;
  uint64_t request_id = 0;
  uint64_t trace_id = 0;
  uint64_t deadline_ms = 0;
  std::string method;
  std::string payload;
};

// Appends the encoded frame to *out.
void EncodeFrame(const Frame& frame, std::string* out);

enum class FrameDecode { kOk, kNeedMore, kError };

// Attempts to decode one frame from data[0, size). On kOk, *consumed is the
// total bytes of the frame. On kError, *error describes the problem (bad
// magic/version/checksum/limits) and the connection must be dropped — the
// stream cannot be resynchronized.
FrameDecode DecodeFrame(const char* data, size_t size, size_t* consumed,
                        Frame* out, std::string* error);

}  // namespace memdb::rpc

#endif  // MEMDB_RPC_FRAME_H_
