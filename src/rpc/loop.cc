#include "rpc/loop.h"

#include <chrono>

namespace memdb::rpc {

LoopThread::~LoopThread() { Stop(); }

uint64_t LoopThread::NowMs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

Status LoopThread::Start() {
  MEMDB_RETURN_IF_ERROR(loop_.Init());
  started_ = true;
  thread_ = std::thread([this] {
    // Atomic bind (vs the old plain thread::id write): OnLoopThread from
    // another thread racing startup reads a coherent value.
    affinity_.BindToCurrentThread();
    LoopMain();
  });
  return Status::OK();
}

void LoopThread::Stop() {
  if (!started_) return;
  stop_requested_.store(true, std::memory_order_release);
  loop_.Wakeup();
  if (thread_.joinable()) thread_.join();
  started_ = false;
  // Late-posted tasks (e.g. from channel users racing Stop) are dropped;
  // run-down happens inside LoopMain before exit. The loop thread is joined,
  // so touching timers_ here cannot race it.
  MutexLock lock(&task_mu_);
  tasks_.clear();
  timers_.clear();
}

void LoopThread::Post(std::function<void()> fn) {
  {
    MutexLock lock(&task_mu_);
    tasks_.push_back(std::move(fn));
  }
  loop_.Wakeup();
}

// lint:off-loop -- blocking rendezvous for off-loop callers by contract:
// posted work runs on the loop thread, so waiting for it from the loop
// thread would never complete; the guard below turns that mistake into a
// deterministic abort instead of a hang.
void LoopThread::PostSync(std::function<void()> fn) {
  if (affinity_.BoundToCurrentThread()) {
    sync_internal::Die("LoopThread::PostSync called from the loop thread");
  }
  Mutex mu;
  CondVar cv;
  bool done = false;
  Post([&] {
    fn();
    MutexLock lock(&mu);
    done = true;
    cv.Signal();
  });
  MutexLock lock(&mu);
  while (!done) cv.Wait(&mu);
}

Status LoopThread::Watch(int fd, uint32_t events, FdHandler* handler) {
  AssertOnLoopThread();
  return loop_.Add(fd, events, handler);
}

Status LoopThread::Rearm(int fd, uint32_t events, FdHandler* handler) {
  AssertOnLoopThread();
  return loop_.Modify(fd, events, handler);
}

void LoopThread::Unwatch(int fd) {
  AssertOnLoopThread();
  loop_.Remove(fd);
}

uint64_t LoopThread::After(uint64_t delay_ms, std::function<void()> fn) {
  AssertOnLoopThread();
  const uint64_t id = next_timer_id_++;
  timers_[id] = Timer{NowMs() + delay_ms, std::move(fn)};
  return id;
}

void LoopThread::CancelTimer(uint64_t id) {
  AssertOnLoopThread();
  timers_.erase(id);
}

void LoopThread::RunTasks() {
  // Swap out the queue so handlers posting new tasks don't starve the poll.
  std::deque<std::function<void()>> batch;
  {
    MutexLock lock(&task_mu_);
    batch.swap(tasks_);
  }
  for (auto& fn : batch) fn();
}

int LoopThread::RunTimers() {
  const uint64_t now = NowMs();
  // Collect due timers first: callbacks may add/cancel timers.
  std::vector<std::function<void()>> due;
  for (auto it = timers_.begin(); it != timers_.end();) {
    if (it->second.deadline_ms <= now) {
      due.push_back(std::move(it->second.fn));
      it = timers_.erase(it);
    } else {
      ++it;
    }
  }
  for (auto& fn : due) fn();
  if (timers_.empty()) return -1;
  uint64_t next = ~0ULL;
  for (const auto& [id, t] : timers_) {
    if (t.deadline_ms < next) next = t.deadline_ms;
  }
  const uint64_t now2 = NowMs();
  return next <= now2 ? 0 : static_cast<int>(next - now2);
}

void LoopThread::LoopMain() {
  std::vector<net::Event> events;
  while (!stop_requested_.load(std::memory_order_acquire)) {
    RunTasks();
    int timeout_ms = RunTimers();
    if (timeout_ms < 0 || timeout_ms > 100) timeout_ms = 100;
    {
      MutexLock lock(&task_mu_);
      if (!tasks_.empty()) timeout_ms = 0;
    }
    loop_.Poll(timeout_ms, &events);
    for (const net::Event& ev : events) {
      auto* handler = static_cast<FdHandler*>(ev.tag);
      if (handler != nullptr && handler->on_ready) {
        handler->on_ready(ev.events);
      }
    }
    events.clear();
  }
  // Run-down: execute whatever was posted before the stop flag was seen so
  // PostSync callers blocked at shutdown always complete.
  RunTasks();
}

}  // namespace memdb::rpc
