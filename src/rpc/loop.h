// LoopThread: an owned thread running a net::EventLoop with timers and a
// cross-thread task queue — the execution substrate for the RPC plane.
//
// One LoopThread can host any mix of rpc::Server instances (listener + all
// accepted connections), rpc::Channel instances (outbound connections), and
// application timers; memorydb-txlogd runs its entire raft replica — server
// side, peer channels, election/heartbeat timers — on a single LoopThread,
// which makes the daemon's state single-threaded by construction.
//
// Threading contract: Post() is the only thread-safe entry point; Watch/
// Rearm/Unwatch/After/CancelTimer must run on the loop thread — enforced at
// runtime by the ThreadAffinity bound when the loop thread starts.

#ifndef MEMDB_RPC_LOOP_H_
#define MEMDB_RPC_LOOP_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <thread>
#include <vector>

#include "common/status.h"
#include "common/sync.h"
#include "net/event_loop.h"

namespace memdb::rpc {

class LoopThread {
 public:
  // Readiness callback; receives net::kReadable / kWritable / kClosed bits.
  struct FdHandler {
    std::function<void(uint32_t)> on_ready;
  };

  LoopThread() = default;
  ~LoopThread();
  LoopThread(const LoopThread&) = delete;
  LoopThread& operator=(const LoopThread&) = delete;

  Status Start();
  // Joins the loop thread. Pending tasks posted before Stop() still run;
  // timers that have not fired are dropped.
  void Stop();

  // Thread-safe: runs fn on the loop thread (immediately queued; if called
  // from the loop thread itself it still goes through the queue, preserving
  // run-to-completion semantics for the current callback).
  void Post(std::function<void()> fn);
  // Post and block until fn has run (never call from the loop thread).
  void PostSync(std::function<void()> fn);

  // --- loop-thread-only API -------------------------------------------------
  Status Watch(int fd, uint32_t events, FdHandler* handler);
  Status Rearm(int fd, uint32_t events, FdHandler* handler);
  void Unwatch(int fd);

  // One-shot timer: fires fn after delay_ms. Returns a cancellation id.
  uint64_t After(uint64_t delay_ms, std::function<void()> fn);
  void CancelTimer(uint64_t id);

  bool OnLoopThread() const { return affinity_.BoundToCurrentThread(); }
  // Aborts when called off the loop thread (passes before Start, while the
  // affinity is unbound). Components running on this loop use it to pin
  // their loop-thread-affine state.
  void AssertOnLoopThread() const { affinity_.AssertHeldThread(); }
  // Monotonic milliseconds (steady clock).
  static uint64_t NowMs();

 private:
  void LoopMain();
  void RunTasks();
  // Fires due timers; returns ms until the next timer (or -1 = none).
  int RunTimers();

  net::EventLoop loop_;
  std::thread thread_;
  ThreadAffinity affinity_;  // bound by the loop thread at startup
  std::atomic<bool> stop_requested_{false};
  bool started_ = false;

  Mutex task_mu_;
  std::deque<std::function<void()>> tasks_ GUARDED_BY(task_mu_);

  // Timers live on the loop thread only (affinity-checked, not locked).
  struct Timer {
    uint64_t deadline_ms = 0;
    std::function<void()> fn;
  };
  std::map<uint64_t, Timer> timers_;  // id -> timer
  uint64_t next_timer_id_ = 1;
};

}  // namespace memdb::rpc

#endif  // MEMDB_RPC_LOOP_H_
