// FaultInjector: deterministic fault hooks for the RPC transport, used by
// tests to prove the retry/dedup invariants (a dropped append ack followed
// by a retry must not double-commit) and by the partition/backoff suites.
//
// Faults act on the server side, at the moment a frame would be written:
//   * DropResponses(method, n)      — swallow the next n responses,
//   * DelayResponses(method, ms, n) — hold the next n responses for ms,
//   * DuplicateResponses(method, n) — send the next n responses twice,
//   * DropRequests(method, n)       — ignore the next n inbound requests
//                                     (as if the request frame was lost).
//
// Thread-safe: tests arm faults from the test thread while the rpc loop
// consults them.

#ifndef MEMDB_RPC_FAULT_H_
#define MEMDB_RPC_FAULT_H_

#include <cstdint>
#include <map>
#include <string>

#include "common/sync.h"

namespace memdb::rpc {

class FaultInjector {
 public:
  void DropResponses(const std::string& method, int n) {
    memdb::MutexLock lock(&mu_);
    drop_rsp_[method] += n;
  }
  void DelayResponses(const std::string& method, uint64_t ms, int n) {
    memdb::MutexLock lock(&mu_);
    delay_rsp_[method] = {ms, delay_rsp_[method].second + n};
  }
  void DuplicateResponses(const std::string& method, int n) {
    memdb::MutexLock lock(&mu_);
    dup_rsp_[method] += n;
  }
  void DropRequests(const std::string& method, int n) {
    memdb::MutexLock lock(&mu_);
    drop_req_[method] += n;
  }
  // Disarm every outstanding fault (tests that stall a path deliberately
  // and then let it resume).
  void Clear() {
    memdb::MutexLock lock(&mu_);
    drop_rsp_.clear();
    dup_rsp_.clear();
    drop_req_.clear();
    delay_rsp_.clear();
  }

  // --- transport-side queries ----------------------------------------------
  struct ResponsePlan {
    bool drop = false;
    bool duplicate = false;
    uint64_t delay_ms = 0;
  };
  ResponsePlan OnResponse(const std::string& method) {
    memdb::MutexLock lock(&mu_);
    ResponsePlan plan;
    if (Take(&drop_rsp_, method)) {
      plan.drop = true;
      return plan;
    }
    if (Take(&dup_rsp_, method)) plan.duplicate = true;
    auto it = delay_rsp_.find(method);
    if (it != delay_rsp_.end() && it->second.second > 0) {
      --it->second.second;
      plan.delay_ms = it->second.first;
    }
    return plan;
  }
  bool ShouldDropRequest(const std::string& method) {
    memdb::MutexLock lock(&mu_);
    return Take(&drop_req_, method);
  }

 private:
  bool Take(std::map<std::string, int>* m, const std::string& k)
      REQUIRES(mu_) {
    auto it = m->find(k);
    if (it == m->end() || it->second <= 0) return false;
    --it->second;
    return true;
  }

  memdb::Mutex mu_;
  std::map<std::string, int> drop_rsp_ GUARDED_BY(mu_);
  std::map<std::string, int> dup_rsp_ GUARDED_BY(mu_);
  std::map<std::string, int> drop_req_ GUARDED_BY(mu_);
  // ms, count
  std::map<std::string, std::pair<uint64_t, int>> delay_rsp_ GUARDED_BY(mu_);
};

}  // namespace memdb::rpc

#endif  // MEMDB_RPC_FAULT_H_
