// loadgen: a memtier-style multi-connection load generator over the real
// RESP socket path — the workload half of DESIGN.md "Memory pressure & load
// harness". N client connections spread across a small thread pool drive a
// GET/SET mix with a configurable key distribution (scrambled Zipfian or
// uniform over millions of keys), value-size distribution, pipelining
// depth, warmup, and fixed-duration or fixed-op runs; a per-second
// HDR-style recorder yields throughput and latency-percentile trajectories
// for the standing BENCH_load.json envelope.
//
// Threading: deliberately client-side blocking sockets on plain threads —
// like client::ClusterClient, this is never an event loop and stays OFF the
// loop-owned dirs in tools/memdb_analyzer.py / tools/lint.py.

#ifndef MEMDB_LOADGEN_LOADGEN_H_
#define MEMDB_LOADGEN_LOADGEN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/histogram.h"
#include "common/rng.h"

namespace memdb::loadgen {

enum class KeyDist { kUniform, kZipfian };

struct LoadConfig {
  // "host:port" targets. Standalone mode uses endpoints[0]; cluster mode
  // treats them all as seeds for client::ClusterClient slot discovery.
  std::vector<std::string> endpoints;
  bool cluster = false;

  int connections = 8;  // total sockets, spread round-robin across threads
  int threads = 2;

  uint64_t keyspace = 1'000'000;  // distinct keys addressed
  KeyDist dist = KeyDist::kZipfian;
  double zipf_theta = 0.99;  // YCSB-style skew for kZipfian
  std::string key_prefix = "key:";

  double write_ratio = 0.2;  // fraction of ops that are SET
  size_t value_min = 64;     // SET payload size, uniform in [min, max]
  size_t value_max = 64;
  int pipeline = 8;  // commands in flight per connection per round

  // With probability `ttl_fraction` a SET carries PX `ttl_ms` — the knob
  // behind expiry-storm phases.
  double ttl_fraction = 0.0;
  uint64_t ttl_ms = 0;

  uint64_t duration_ms = 10'000;  // measured window; 0 = use total_ops
  uint64_t total_ops = 0;         // fixed-op budget when duration_ms == 0
  uint64_t warmup_ms = 1'000;     // excluded from totals, kept per-second

  uint64_t seed = 42;
  uint64_t recv_timeout_ms = 5000;
};

// One second of the run, workers merged. Seconds [0, warmup_seconds) are
// the warmup.
struct SecondSample {
  uint64_t ops = 0;
  uint64_t errors = 0;
  uint64_t p50_us = 0;
  uint64_t p99_us = 0;
};

struct LoadReport {
  bool ok = true;            // false on connect/protocol-level failure
  std::string error_detail;  // first failure or error reply seen

  // Totals over the measured (post-warmup) window.
  uint64_t ops = 0;
  uint64_t errors = 0;      // error replies (-OOM counted separately too)
  uint64_t oom_errors = 0;  // subset of `errors` that were -OOM
  uint64_t hits = 0;        // GET found
  uint64_t misses = 0;      // GET nil
  double seconds = 0;
  double throughput = 0;  // ops / seconds
  Histogram latency;      // µs, batch-RTT per op, post-warmup

  uint64_t warmup_seconds = 0;
  std::vector<SecondSample> per_second;  // whole run including warmup
};

// YCSB-style Zipfian over [0, n) (Gray et al. approximation) with FNV
// scrambling so the hot items spread across the key space — and, in
// cluster mode, across hash slots.
class ZipfianGenerator {
 public:
  ZipfianGenerator(uint64_t n, double theta);
  uint64_t Next(Rng& rng) const;  // in [0, n)

 private:
  uint64_t n_;
  double theta_;
  double alpha_;
  double zetan_;
  double eta_;
};

class LoadGenerator {
 public:
  explicit LoadGenerator(LoadConfig config);

  // Runs the configured workload to completion and merges the per-worker
  // recorders. Blocking; spawns config.threads workers internally.
  LoadReport Run();

  const LoadConfig& config() const { return config_; }

 private:
  LoadConfig config_;
};

// Scrapes one counter/gauge series from a server's RESP METRICS exposition
// (sums across labeled series of that name). False on connect/protocol
// failure.
bool ScrapeMetric(const std::string& endpoint, const std::string& series,
                  double* value);

// Renders the report as a raw JSON object ({"ops":...,"per_second":[...]})
// for splicing into a BENCH_load.json phase; pairs with
// bench::BenchEnvelopeJson, which handles the envelope itself.
std::string ReportJson(const LoadReport& report);

// Config echo as raw JSON (key/value pairs mirror the flag names).
std::string ConfigJson(const LoadConfig& config);

}  // namespace memdb::loadgen

#endif  // MEMDB_LOADGEN_LOADGEN_H_
