#include "loadgen/loadgen.h"

#include <arpa/inet.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstring>
#include <memory>
#include <thread>

#include "client/cluster_client.h"
#include "common/metrics.h"
#include "resp/resp.h"

namespace memdb::loadgen {
namespace {

uint64_t NowMs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

uint64_t NowUs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// FNV-1a on the index bytes: the "scrambled" in scrambled Zipfian — rank 0
// (the hottest item) lands on an arbitrary key id, not key 0.
uint64_t Scramble(uint64_t x) {
  uint64_t h = 1469598103934665603ULL;
  for (int i = 0; i < 8; ++i) {
    h ^= (x >> (i * 8)) & 0xff;
    h *= 1099511628211ULL;
  }
  return h;
}

bool SplitHostPort(const std::string& endpoint, std::string* host,
                   uint16_t* port) {
  const size_t colon = endpoint.rfind(':');
  if (colon == std::string::npos) return false;
  *host = endpoint.substr(0, colon);
  const int p = std::atoi(endpoint.c_str() + colon + 1);
  if (p <= 0 || p > 65535) return false;
  *port = static_cast<uint16_t>(p);
  return true;
}

// One blocking socket + streaming decoder. Same shape as the bench
// clients, plus batch send for pipelining.
class DirectConn {
 public:
  DirectConn(const std::string& endpoint, uint64_t recv_timeout_ms) {
    std::string host;
    uint16_t port = 0;
    if (!SplitHostPort(endpoint, &host, &port)) return;
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) return;
    sockaddr_in sa{};
    sa.sin_family = AF_INET;
    sa.sin_port = htons(port);
    if (::inet_pton(AF_INET, host.c_str(), &sa.sin_addr) != 1 ||
        ::connect(fd_, reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) != 0) {
      ::close(fd_);
      fd_ = -1;
      return;
    }
    timeval tv{static_cast<time_t>(recv_timeout_ms / 1000),
               static_cast<suseconds_t>((recv_timeout_ms % 1000) * 1000)};
    ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    const int one = 1;
    ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  }
  ~DirectConn() {
    if (fd_ >= 0) ::close(fd_);
  }
  DirectConn(const DirectConn&) = delete;
  DirectConn& operator=(const DirectConn&) = delete;

  bool ok() const { return fd_ >= 0; }

  bool SendAll(const std::string& bytes) {
    size_t off = 0;
    while (off < bytes.size()) {
      const ssize_t n = ::send(fd_, bytes.data() + off, bytes.size() - off,
                               MSG_NOSIGNAL);
      if (n <= 0) return false;
      off += static_cast<size_t>(n);
    }
    return true;
  }

  bool Read(resp::Value* out) {
    char buf[64 * 1024];
    for (;;) {
      const resp::DecodeStatus st = dec_.Decode(out);
      if (st == resp::DecodeStatus::kOk) return true;
      if (st == resp::DecodeStatus::kError) return false;
      const ssize_t r = ::recv(fd_, buf, sizeof(buf), 0);
      if (r <= 0) return false;
      dec_.Feed(Slice(buf, static_cast<size_t>(r)));
    }
  }

 private:
  int fd_ = -1;
  resp::Decoder dec_;
};

// Per-worker recorder: a histogram per elapsed second plus the post-warmup
// aggregate, merged across workers after the run.
struct SecondBucket {
  uint64_t ops = 0;
  uint64_t errors = 0;
  Histogram hist;
};

struct WorkerState {
  Rng rng;
  std::vector<SecondBucket> seconds;
  Histogram measured;  // post-warmup aggregate
  uint64_t ops = 0;
  uint64_t errors = 0;
  uint64_t oom_errors = 0;
  uint64_t hits = 0;
  uint64_t misses = 0;
  bool failed = false;
  std::string error_detail;

  explicit WorkerState(uint64_t seed) : rng(seed) {}

  SecondBucket& BucketAt(uint64_t elapsed_ms) {
    const size_t idx = static_cast<size_t>(elapsed_ms / 1000);
    if (seconds.size() <= idx) seconds.resize(idx + 1);
    return seconds[idx];
  }

  void Fail(const std::string& what) {
    failed = true;
    if (error_detail.empty()) error_detail = what;
  }
};

struct Op {
  bool is_write;
};

}  // namespace

ZipfianGenerator::ZipfianGenerator(uint64_t n, double theta)
    : n_(n == 0 ? 1 : n), theta_(theta) {
  double zetan = 0;
  for (uint64_t i = 1; i <= n_; ++i) zetan += 1.0 / std::pow(double(i), theta_);
  zetan_ = zetan;
  const double zeta2 = 1.0 + std::pow(0.5, theta_);
  alpha_ = 1.0 / (1.0 - theta_);
  eta_ = (1.0 - std::pow(2.0 / double(n_), 1.0 - theta_)) /
         (1.0 - zeta2 / zetan_);
}

uint64_t ZipfianGenerator::Next(Rng& rng) const {
  // Gray et al. "Quickly generating billion-record synthetic databases";
  // the YCSB generator. Returns a rank, scrambled into a key id.
  const double u = rng.NextDouble();
  const double uz = u * zetan_;
  uint64_t rank;
  if (uz < 1.0) {
    rank = 0;
  } else if (uz < 1.0 + std::pow(0.5, theta_)) {
    rank = 1;
  } else {
    rank = static_cast<uint64_t>(
        double(n_) * std::pow(eta_ * u - eta_ + 1.0, alpha_));
    if (rank >= n_) rank = n_ - 1;
  }
  return Scramble(rank) % n_;
}

LoadGenerator::LoadGenerator(LoadConfig config) : config_(std::move(config)) {
  if (config_.threads < 1) config_.threads = 1;
  if (config_.connections < config_.threads) {
    config_.connections = config_.threads;
  }
  if (config_.pipeline < 1) config_.pipeline = 1;
  if (config_.value_max < config_.value_min) {
    config_.value_max = config_.value_min;
  }
  if (config_.keyspace == 0) config_.keyspace = 1;
}

LoadReport LoadGenerator::Run() {
  const LoadConfig& cfg = config_;
  LoadReport report;
  report.warmup_seconds = cfg.warmup_ms / 1000;
  if (cfg.endpoints.empty()) {
    report.ok = false;
    report.error_detail = "no endpoints";
    return report;
  }

  // Zipfian tables are O(keyspace) to build; share one across workers.
  std::unique_ptr<ZipfianGenerator> zipf;
  if (cfg.dist == KeyDist::kZipfian) {
    zipf = std::make_unique<ZipfianGenerator>(cfg.keyspace, cfg.zipf_theta);
  }

  const uint64_t start_ms = NowMs();
  const uint64_t total_ms = cfg.warmup_ms + cfg.duration_ms;
  std::atomic<uint64_t> ops_budget{cfg.duration_ms == 0 ? cfg.total_ops : 0};
  std::vector<std::unique_ptr<WorkerState>> states;
  std::vector<std::thread> workers;

  auto make_key = [&cfg](uint64_t id) {
    return cfg.key_prefix + std::to_string(id);
  };
  auto pick_key = [&](WorkerState& ws) {
    return cfg.dist == KeyDist::kZipfian ? zipf->Next(ws.rng)
                                         : ws.rng.Uniform(cfg.keyspace);
  };
  auto build_command = [&](WorkerState& ws, Op* op,
                           std::vector<std::string>* argv) {
    const uint64_t key_id = pick_key(ws);
    op->is_write = ws.rng.NextDouble() < cfg.write_ratio;
    argv->clear();
    if (op->is_write) {
      const size_t len = cfg.value_min == cfg.value_max
                             ? cfg.value_min
                             : cfg.value_min + ws.rng.Uniform(cfg.value_max -
                                                              cfg.value_min +
                                                              1);
      argv->push_back("SET");
      argv->push_back(make_key(key_id));
      argv->push_back(ws.rng.RandomString(len));
      if (cfg.ttl_ms != 0 && cfg.ttl_fraction > 0 &&
          ws.rng.NextDouble() < cfg.ttl_fraction) {
        argv->push_back("PX");
        argv->push_back(std::to_string(cfg.ttl_ms));
      }
    } else {
      argv->push_back("GET");
      argv->push_back(make_key(key_id));
    }
  };
  auto record_reply = [&](WorkerState& ws, const Op& op,
                          const resp::Value& reply, uint64_t rtt_us,
                          uint64_t elapsed_ms) {
    SecondBucket& bucket = ws.BucketAt(elapsed_ms);
    ++bucket.ops;
    bucket.hist.Record(rtt_us);
    const bool measured = elapsed_ms >= cfg.warmup_ms;
    if (measured) {
      ++ws.ops;
      ws.measured.Record(rtt_us);
    }
    if (reply.IsError()) {
      ++bucket.errors;
      if (measured) {
        ++ws.errors;
        if (reply.str.rfind("OOM", 0) == 0) ++ws.oom_errors;
      }
      if (ws.error_detail.empty()) ws.error_detail = reply.str;
    } else if (!op.is_write) {
      if (reply.IsNull()) {
        if (measured) ++ws.misses;
      } else if (measured) {
        ++ws.hits;
      }
    }
  };
  // True while the run should keep issuing batches. Fixed-op runs draw
  // from the shared budget; fixed-duration runs check the clock.
  auto claim_batch = [&](size_t want) -> size_t {
    if (cfg.duration_ms == 0) {
      uint64_t left = ops_budget.load(std::memory_order_relaxed);
      while (left != 0) {
        const uint64_t take = std::min<uint64_t>(left, want);
        if (ops_budget.compare_exchange_weak(left, left - take,
                                             std::memory_order_relaxed)) {
          return static_cast<size_t>(take);
        }
      }
      return 0;
    }
    return NowMs() - start_ms < total_ms ? want : 0;
  };

  // Standalone worker: owns conns_per_thread sockets; per round sends a
  // pipelined batch on every socket, then drains them all, overlapping
  // server-side work across its connections.
  auto direct_worker = [&](WorkerState* ws, int nconns) {
    std::vector<std::unique_ptr<DirectConn>> conns;
    for (int i = 0; i < nconns; ++i) {
      conns.push_back(std::make_unique<DirectConn>(cfg.endpoints[0],
                                                   cfg.recv_timeout_ms));
      if (!conns.back()->ok()) {
        ws->Fail("connect " + cfg.endpoints[0] + " failed");
        return;
      }
    }
    const size_t depth = static_cast<size_t>(cfg.pipeline);
    std::vector<std::vector<Op>> inflight(conns.size());
    std::vector<uint64_t> sent_us(conns.size());
    std::vector<std::string> argv;
    std::string wire;
    for (;;) {
      bool any = false;
      for (size_t c = 0; c < conns.size(); ++c) {
        inflight[c].clear();
        const size_t batch = claim_batch(depth);
        if (batch == 0) continue;
        any = true;
        wire.clear();
        for (size_t i = 0; i < batch; ++i) {
          Op op;
          build_command(*ws, &op, &argv);
          wire += resp::EncodeCommand(argv);
          inflight[c].push_back(op);
        }
        sent_us[c] = NowUs();
        if (!conns[c]->SendAll(wire)) {
          ws->Fail("send failed");
          return;
        }
      }
      if (!any) return;
      for (size_t c = 0; c < conns.size(); ++c) {
        for (const Op& op : inflight[c]) {
          resp::Value reply;
          if (!conns[c]->Read(&reply)) {
            ws->Fail("recv failed or timed out");
            return;
          }
          record_reply(*ws, op, reply, NowUs() - sent_us[c],
                       NowMs() - start_ms);
        }
      }
    }
  };

  // Cluster worker: one slot-routing ClusterClient per thread, strict
  // request-response (the redirect protocol is per-command; pipelining
  // stays a standalone-mode feature).
  auto cluster_worker = [&](WorkerState* ws) {
    client::ClusterClient::Options opts;
    opts.recv_timeout_ms = cfg.recv_timeout_ms;
    client::ClusterClient cc(cfg.endpoints, opts);
    std::vector<std::string> argv;
    for (;;) {
      if (claim_batch(1) == 0) return;
      Op op;
      build_command(*ws, &op, &argv);
      const uint64_t t0 = NowUs();
      resp::Value reply;
      const Status s = cc.Execute(argv, &reply);
      if (!s.ok()) {
        ws->Fail("cluster execute: " + s.ToString());
        return;
      }
      record_reply(*ws, op, reply, NowUs() - t0, NowMs() - start_ms);
    }
  };

  const int nthreads = cfg.cluster ? cfg.connections : cfg.threads;
  for (int t = 0; t < nthreads; ++t) {
    states.push_back(std::make_unique<WorkerState>(
        cfg.seed * 0x9e3779b97f4a7c15ULL + static_cast<uint64_t>(t) + 1));
  }
  for (int t = 0; t < nthreads; ++t) {
    WorkerState* ws = states[static_cast<size_t>(t)].get();
    if (cfg.cluster) {
      workers.emplace_back(cluster_worker, ws);
    } else {
      // Spread the connection count across threads, remainder to the first.
      const int base = cfg.connections / cfg.threads;
      const int extra = t < cfg.connections % cfg.threads ? 1 : 0;
      workers.emplace_back(direct_worker, ws, base + extra);
    }
  }
  for (std::thread& th : workers) th.join();
  const uint64_t end_ms = NowMs();

  // Merge workers.
  size_t max_seconds = 0;
  for (const auto& ws : states) {
    max_seconds = std::max(max_seconds, ws->seconds.size());
  }
  std::vector<Histogram> merged(max_seconds);
  report.per_second.resize(max_seconds);
  for (const auto& ws : states) {
    if (ws->failed) {
      report.ok = false;
      if (report.error_detail.empty()) report.error_detail = ws->error_detail;
    } else if (report.error_detail.empty() && !ws->error_detail.empty()) {
      report.error_detail = ws->error_detail;
    }
    report.ops += ws->ops;
    report.errors += ws->errors;
    report.oom_errors += ws->oom_errors;
    report.hits += ws->hits;
    report.misses += ws->misses;
    report.latency.Merge(ws->measured);
    for (size_t s = 0; s < ws->seconds.size(); ++s) {
      report.per_second[s].ops += ws->seconds[s].ops;
      report.per_second[s].errors += ws->seconds[s].errors;
      merged[s].Merge(ws->seconds[s].hist);
    }
  }
  for (size_t s = 0; s < max_seconds; ++s) {
    report.per_second[s].p50_us = merged[s].Percentile(0.50);
    report.per_second[s].p99_us = merged[s].Percentile(0.99);
  }
  const uint64_t run_ms = end_ms - start_ms;
  report.seconds =
      run_ms > cfg.warmup_ms ? double(run_ms - cfg.warmup_ms) / 1000.0 : 0;
  report.throughput =
      report.seconds > 0 ? double(report.ops) / report.seconds : 0;
  return report;
}

bool ScrapeMetric(const std::string& endpoint, const std::string& series,
                  double* value) {
  DirectConn conn(endpoint, 2000);
  if (!conn.ok() || !conn.SendAll(resp::EncodeCommand({"METRICS"}))) {
    return false;
  }
  resp::Value reply;
  if (!conn.Read(&reply) || reply.IsError()) return false;
  return MetricsRegistry::ParseSeries(reply.str, series, value);
}

std::string ReportJson(const LoadReport& report) {
  std::string out = "{";
  out += "\"ok\":" + std::string(report.ok ? "true" : "false");
  out += ",\"ops\":" + std::to_string(report.ops);
  out += ",\"errors\":" + std::to_string(report.errors);
  out += ",\"oom_errors\":" + std::to_string(report.oom_errors);
  out += ",\"hits\":" + std::to_string(report.hits);
  out += ",\"misses\":" + std::to_string(report.misses);
  out += ",\"seconds\":" + std::to_string(report.seconds);
  out += ",\"throughput_ops_s\":" + std::to_string(report.throughput);
  out += ",\"p50_us\":" + std::to_string(report.latency.Percentile(0.50));
  out += ",\"p99_us\":" + std::to_string(report.latency.Percentile(0.99));
  out += ",\"p999_us\":" + std::to_string(report.latency.Percentile(0.999));
  out += ",\"max_us\":" + std::to_string(report.latency.max());
  out += ",\"warmup_seconds\":" + std::to_string(report.warmup_seconds);
  out += ",\"per_second\":[";
  for (size_t i = 0; i < report.per_second.size(); ++i) {
    const SecondSample& s = report.per_second[i];
    if (i != 0) out += ",";
    out += "{\"t\":" + std::to_string(i) + ",\"ops\":" +
           std::to_string(s.ops) + ",\"errors\":" + std::to_string(s.errors) +
           ",\"p50_us\":" + std::to_string(s.p50_us) + ",\"p99_us\":" +
           std::to_string(s.p99_us) + "}";
  }
  out += "]}";
  return out;
}

std::string ConfigJson(const LoadConfig& config) {
  std::string eps = "[";
  for (size_t i = 0; i < config.endpoints.size(); ++i) {
    if (i != 0) eps += ",";
    eps += "\"" + config.endpoints[i] + "\"";
  }
  eps += "]";
  std::string out = "{";
  out += "\"endpoints\":" + eps;
  out += ",\"cluster\":" + std::string(config.cluster ? "true" : "false");
  out += ",\"connections\":" + std::to_string(config.connections);
  out += ",\"threads\":" + std::to_string(config.threads);
  out += ",\"keyspace\":" + std::to_string(config.keyspace);
  out += ",\"dist\":\"" +
         std::string(config.dist == KeyDist::kZipfian ? "zipfian"
                                                      : "uniform") +
         "\"";
  out += ",\"zipf_theta\":" + std::to_string(config.zipf_theta);
  out += ",\"write_ratio\":" + std::to_string(config.write_ratio);
  out += ",\"value_min\":" + std::to_string(config.value_min);
  out += ",\"value_max\":" + std::to_string(config.value_max);
  out += ",\"pipeline\":" + std::to_string(config.pipeline);
  out += ",\"ttl_fraction\":" + std::to_string(config.ttl_fraction);
  out += ",\"ttl_ms\":" + std::to_string(config.ttl_ms);
  out += ",\"duration_ms\":" + std::to_string(config.duration_ms);
  out += ",\"total_ops\":" + std::to_string(config.total_ops);
  out += ",\"warmup_ms\":" + std::to_string(config.warmup_ms);
  out += ",\"seed\":" + std::to_string(config.seed);
  out += "}";
  return out;
}

}  // namespace memdb::loadgen
