// memorydb-loadgen: drive a running memorydb-server (standalone or
// cluster) with a memtier-style workload and print/emit a BENCH_load-shaped
// report. Exit status is the gate: non-zero on connect failure, on more
// error replies than --max-errors, or when --require-evictions saw none —
// which is what lets scripts/check.sh use a short run as a smoke test.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench_support/envelope.h"
#include "loadgen/loadgen.h"

namespace {

void Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [options]\n"
      "  --endpoints H:P[,H:P...] targets (default 127.0.0.1:7480)\n"
      "  --cluster                route via slot map (CLUSTER SLOTS)\n"
      "  --connections N          total client sockets (default 8)\n"
      "  --threads N              worker threads, standalone mode (default 2)\n"
      "  --keys N                 distinct keys addressed (default 1000000)\n"
      "  --dist zipfian|uniform   key distribution (default zipfian)\n"
      "  --zipf-theta F           Zipfian skew (default 0.99)\n"
      "  --prefix S               key prefix (default key:)\n"
      "  --write-ratio F          fraction of SETs (default 0.2)\n"
      "  --value-bytes N          fixed SET payload size (default 64)\n"
      "  --value-min N --value-max N  uniform payload size range\n"
      "  --pipeline N             commands in flight per conn (default 8)\n"
      "  --ttl-ms N --ttl-fraction F  PX ttl on that fraction of SETs\n"
      "  --duration-s N           measured seconds (default 10)\n"
      "  --ops N                  fixed op budget instead of a duration\n"
      "  --warmup-s N             warmup seconds excluded from totals "
      "(default 1)\n"
      "  --seed N                 RNG seed (default 42)\n"
      "  --json PATH              write BENCH_load-style JSON report\n"
      "  --require-evictions      fail unless evicted_keys_total grew\n"
      "  --max-errors N           fail if error replies exceed N (default "
      "unlimited)\n",
      argv0);
}

std::vector<std::string> SplitCsv(const std::string& csv) {
  std::vector<std::string> out;
  size_t start = 0;
  while (start <= csv.size()) {
    const size_t comma = csv.find(',', start);
    const size_t end = comma == std::string::npos ? csv.size() : comma;
    if (end > start) out.push_back(csv.substr(start, end - start));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using memdb::loadgen::KeyDist;
  using memdb::loadgen::LoadConfig;

  LoadConfig cfg;
  cfg.endpoints = {"127.0.0.1:7480"};
  std::string json_path;
  bool require_evictions = false;
  long long max_errors = -1;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s requires a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--endpoints") {
      cfg.endpoints = SplitCsv(next());
    } else if (arg == "--cluster") {
      cfg.cluster = true;
    } else if (arg == "--connections") {
      cfg.connections = std::atoi(next());
    } else if (arg == "--threads") {
      cfg.threads = std::atoi(next());
    } else if (arg == "--keys") {
      cfg.keyspace = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--dist") {
      const std::string d = next();
      if (d == "zipfian") {
        cfg.dist = KeyDist::kZipfian;
      } else if (d == "uniform") {
        cfg.dist = KeyDist::kUniform;
      } else {
        std::fprintf(stderr, "unknown --dist %s\n", d.c_str());
        return 2;
      }
    } else if (arg == "--zipf-theta") {
      cfg.zipf_theta = std::atof(next());
    } else if (arg == "--prefix") {
      cfg.key_prefix = next();
    } else if (arg == "--write-ratio") {
      cfg.write_ratio = std::atof(next());
    } else if (arg == "--value-bytes") {
      cfg.value_min = cfg.value_max =
          static_cast<size_t>(std::strtoull(next(), nullptr, 10));
    } else if (arg == "--value-min") {
      cfg.value_min = static_cast<size_t>(std::strtoull(next(), nullptr, 10));
    } else if (arg == "--value-max") {
      cfg.value_max = static_cast<size_t>(std::strtoull(next(), nullptr, 10));
    } else if (arg == "--pipeline") {
      cfg.pipeline = std::atoi(next());
    } else if (arg == "--ttl-ms") {
      cfg.ttl_ms = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--ttl-fraction") {
      cfg.ttl_fraction = std::atof(next());
    } else if (arg == "--duration-s") {
      cfg.duration_ms = std::strtoull(next(), nullptr, 10) * 1000;
    } else if (arg == "--ops") {
      cfg.total_ops = std::strtoull(next(), nullptr, 10);
      cfg.duration_ms = 0;
    } else if (arg == "--warmup-s") {
      cfg.warmup_ms = std::strtoull(next(), nullptr, 10) * 1000;
    } else if (arg == "--seed") {
      cfg.seed = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--json") {
      json_path = next();
    } else if (arg == "--require-evictions") {
      require_evictions = true;
    } else if (arg == "--max-errors") {
      max_errors = std::atoll(next());
    } else if (arg == "--help" || arg == "-h") {
      Usage(argv[0]);
      return 0;
    } else {
      std::fprintf(stderr, "unknown flag %s\n", arg.c_str());
      Usage(argv[0]);
      return 2;
    }
  }
  if (cfg.endpoints.empty()) {
    std::fprintf(stderr, "no endpoints\n");
    return 2;
  }

  double evicted_before = 0;
  if (require_evictions) {
    memdb::loadgen::ScrapeMetric(cfg.endpoints[0], "evicted_keys_total",
                                 &evicted_before);
  }

  memdb::loadgen::LoadGenerator gen(cfg);
  const memdb::loadgen::LoadReport report = gen.Run();

  std::printf("ok=%s ops=%llu errors=%llu oom=%llu throughput=%.0f ops/s\n",
              report.ok ? "true" : "false",
              static_cast<unsigned long long>(report.ops),
              static_cast<unsigned long long>(report.errors),
              static_cast<unsigned long long>(report.oom_errors),
              report.throughput);
  std::printf("latency p50=%lluus p99=%lluus p99.9=%lluus max=%lluus\n",
              static_cast<unsigned long long>(report.latency.Percentile(0.50)),
              static_cast<unsigned long long>(report.latency.Percentile(0.99)),
              static_cast<unsigned long long>(report.latency.Percentile(0.999)),
              static_cast<unsigned long long>(report.latency.max()));
  std::printf("hits=%llu misses=%llu\n",
              static_cast<unsigned long long>(report.hits),
              static_cast<unsigned long long>(report.misses));
  if (!report.error_detail.empty()) {
    std::printf("first error: %s\n", report.error_detail.c_str());
  }

  double used = 0, evicted = 0, expired = 0;
  const bool scraped =
      memdb::loadgen::ScrapeMetric(cfg.endpoints[0], "used_memory_bytes",
                                   &used);
  memdb::loadgen::ScrapeMetric(cfg.endpoints[0], "evicted_keys_total",
                               &evicted);
  memdb::loadgen::ScrapeMetric(cfg.endpoints[0], "expired_keys_total",
                               &expired);
  if (scraped) {
    std::printf(
        "server: used_memory_bytes=%.0f evicted_keys_total=%.0f "
        "expired_keys_total=%.0f\n",
        used, evicted, expired);
  }

  if (!json_path.empty()) {
    std::string json = "{";
    json += memdb::bench::BenchEnvelopeJson(
        "load", {{"mode", memdb::bench::QuoteJson(
                              cfg.cluster ? "cluster" : "standalone")}});
    json += ",\"config\":" + memdb::loadgen::ConfigJson(cfg);
    json += ",\"result\":" + memdb::loadgen::ReportJson(report);
    if (scraped) {
      json += ",\"server\":{\"used_memory_bytes\":" + std::to_string(used) +
              ",\"evicted_keys_total\":" + std::to_string(evicted) +
              ",\"expired_keys_total\":" + std::to_string(expired) + "}";
    }
    json += "}\n";
    FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
    std::printf("wrote %s\n", json_path.c_str());
  }

  if (!report.ok) {
    std::fprintf(stderr, "FAIL: %s\n", report.error_detail.c_str());
    return 1;
  }
  if (max_errors >= 0 &&
      report.errors > static_cast<uint64_t>(max_errors)) {
    std::fprintf(stderr, "FAIL: %llu error replies (max %lld)\n",
                 static_cast<unsigned long long>(report.errors), max_errors);
    return 1;
  }
  if (require_evictions && !(evicted > evicted_before)) {
    std::fprintf(stderr,
                 "FAIL: expected evictions (evicted_keys_total %.0f -> "
                 "%.0f)\n",
                 evicted_before, evicted);
    return 1;
  }
  return 0;
}
