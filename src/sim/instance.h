// Instance profiles: the resource model for a simulated EC2-style host.
// The r7g catalog used by the paper's evaluation lives in
// bench_support/instances.h; this header defines the shape.

#ifndef MEMDB_SIM_INSTANCE_H_
#define MEMDB_SIM_INSTANCE_H_

#include <cstdint>
#include <string>

#include "sim/types.h"

namespace memdb::sim {

struct InstanceProfile {
  std::string name = "generic";
  int vcpus = 2;
  uint64_t memory_bytes = 16ULL << 30;
  // Background IO threads available to the engine (Redis "io-threads" /
  // MemoryDB Enhanced IO). The engine decides how to use them.
  int io_threads = 1;
  // Network bandwidth in megabits/s (affects bulk transfers).
  uint64_t net_mbps = 10000;
  // Cost, on the single-threaded engine workloop, of executing one simple
  // command (GET/SET of a small value), in nanoseconds. Tuned so large
  // instances sustain hundreds of K op/s as in the paper.
  uint64_t engine_op_cost_ns = 1500;
  // Cost, on an IO thread, of performing the socket read+parse+write for one
  // request, in nanoseconds.
  uint64_t io_op_cost_ns = 2000;
};

}  // namespace memdb::sim

#endif  // MEMDB_SIM_INSTANCE_H_
