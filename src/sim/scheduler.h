// Discrete-event scheduler with virtual time. Single-threaded and fully
// deterministic: two runs with the same seed and the same actor code produce
// identical event orders.

#ifndef MEMDB_SIM_SCHEDULER_H_
#define MEMDB_SIM_SCHEDULER_H_

#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "sim/types.h"

namespace memdb::sim {

// Handle to a scheduled event; allows cancellation. Default-constructed
// handles are inert.
class TimerHandle {
 public:
  TimerHandle() = default;

  // Cancels the event if it has not fired yet. Safe to call repeatedly.
  void Cancel();
  bool Pending() const;

 private:
  friend class Scheduler;
  struct Flag {
    bool cancelled = false;
    bool fired = false;
  };
  explicit TimerHandle(std::shared_ptr<Flag> flag) : flag_(std::move(flag)) {}
  std::shared_ptr<Flag> flag_;
};

class Scheduler {
 public:
  Scheduler() = default;
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  Time Now() const { return now_; }

  // Schedule `fn` to run at absolute virtual time `t` (clamped to >= Now()).
  TimerHandle At(Time t, std::function<void()> fn);
  // Schedule `fn` after `d` microseconds.
  TimerHandle After(Duration d, std::function<void()> fn) {
    return At(now_ + d, std::move(fn));
  }

  // Runs events until the queue is empty or `limit` events have fired.
  // Returns the number of events fired.
  uint64_t Run(uint64_t limit = ~0ULL);
  // Runs events with timestamps <= t, then advances Now() to t.
  void RunUntil(Time t);
  void RunFor(Duration d) { RunUntil(now_ + d); }
  // Runs a single event; returns false if the queue is empty.
  bool Step();

  bool Empty() const { return queue_.empty(); }
  uint64_t events_fired() const { return events_fired_; }

 private:
  struct Event {
    Time time;
    uint64_t seq;  // tie-break for determinism
    std::function<void()> fn;
    std::shared_ptr<TimerHandle::Flag> flag;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  void Fire(Event& e);

  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  Time now_ = 0;
  uint64_t next_seq_ = 0;
  uint64_t events_fired_ = 0;
};

}  // namespace memdb::sim

#endif  // MEMDB_SIM_SCHEDULER_H_
