// Simulation: the root object owning the scheduler, the network, and the
// host table. Actors (src/sim/actor.h) attach to hosts and exchange
// messages; tests and benchmarks drive virtual time and inject failures.

#ifndef MEMDB_SIM_SIMULATION_H_
#define MEMDB_SIM_SIMULATION_H_

#include <memory>
#include <vector>

#include "common/rng.h"
#include "sim/instance.h"
#include "sim/network.h"
#include "sim/scheduler.h"
#include "sim/types.h"

namespace memdb::sim {

class Actor;

struct Host {
  NodeId id = kInvalidNode;
  AzId az = 0;
  InstanceProfile profile;
  bool alive = true;
  // Bumped on every restart; in-flight messages addressed to a previous
  // incarnation are dropped (the "socket" no longer exists).
  uint64_t incarnation = 1;
};

class Simulation {
 public:
  explicit Simulation(uint64_t seed = 42,
                      NetworkConfig net_config = NetworkConfig());
  ~Simulation();

  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  // --- topology -----------------------------------------------------------
  NodeId AddHost(AzId az, InstanceProfile profile = InstanceProfile());
  Host* host(NodeId id) { return hosts_[id].get(); }
  const Host* host(NodeId id) const { return hosts_[id].get(); }
  size_t num_hosts() const { return hosts_.size(); }

  // --- failure injection --------------------------------------------------
  // Crash: the host's actor stops receiving messages and all its pending
  // timers become no-ops. State held by the actor object survives in C++
  // but actors must treat a restart as a fresh process (see Actor).
  void Crash(NodeId id);
  // Restart: host becomes reachable again with a new incarnation. The
  // owning layer is responsible for resetting/recreating the actor.
  void Restart(NodeId id);
  bool IsAlive(NodeId id) const { return hosts_[id]->alive; }

  // Partitions an AZ away from the rest of the cluster.
  void PartitionAz(AzId az);
  void HealAz(AzId az);

  // --- access -------------------------------------------------------------
  Scheduler& scheduler() { return scheduler_; }
  Network& network() { return network_; }
  Rng& rng() { return rng_; }
  Time Now() const { return scheduler_.Now(); }

  void RunFor(Duration d) { scheduler_.RunFor(d); }
  void RunUntil(Time t) { scheduler_.RunUntil(t); }
  uint64_t Run(uint64_t limit = ~0ULL) { return scheduler_.Run(limit); }

  // --- actor registry (used by Actor and Network) --------------------------
  void RegisterActor(NodeId id, Actor* actor);
  void UnregisterActor(NodeId id, Actor* actor);
  Actor* ActorFor(NodeId id) const;

 private:
  Scheduler scheduler_;
  Network network_;
  Rng rng_;
  std::vector<std::unique_ptr<Host>> hosts_;
  std::vector<Actor*> actors_;  // indexed by NodeId; may hold nullptr
};

}  // namespace memdb::sim

#endif  // MEMDB_SIM_SIMULATION_H_
