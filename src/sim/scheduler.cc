#include "sim/scheduler.h"

namespace memdb::sim {

void TimerHandle::Cancel() {
  if (flag_) flag_->cancelled = true;
}

bool TimerHandle::Pending() const {
  return flag_ && !flag_->cancelled && !flag_->fired;
}

TimerHandle Scheduler::At(Time t, std::function<void()> fn) {
  if (t < now_) t = now_;
  auto flag = std::make_shared<TimerHandle::Flag>();
  queue_.push(Event{t, next_seq_++, std::move(fn), flag});
  return TimerHandle(std::move(flag));
}

void Scheduler::Fire(Event& e) {
  now_ = e.time;
  if (!e.flag->cancelled) {
    e.flag->fired = true;
    ++events_fired_;
    e.fn();
  }
}

uint64_t Scheduler::Run(uint64_t limit) {
  uint64_t fired = 0;
  while (!queue_.empty() && fired < limit) {
    Event e = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    const bool counts = !e.flag->cancelled;
    Fire(e);
    if (counts) ++fired;
  }
  return fired;
}

void Scheduler::RunUntil(Time t) {
  while (!queue_.empty() && queue_.top().time <= t) {
    Event e = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    Fire(e);
  }
  if (now_ < t) now_ = t;
}

bool Scheduler::Step() {
  if (queue_.empty()) return false;
  Event e = std::move(const_cast<Event&>(queue_.top()));
  queue_.pop();
  Fire(e);
  return true;
}

}  // namespace memdb::sim
