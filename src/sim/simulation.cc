#include "sim/simulation.h"

#include "sim/actor.h"

namespace memdb::sim {

Simulation::Simulation(uint64_t seed, NetworkConfig net_config)
    : network_(this, net_config, seed ^ 0x6e657477ULL), rng_(seed) {}

Simulation::~Simulation() = default;

NodeId Simulation::AddHost(AzId az, InstanceProfile profile) {
  const NodeId id = static_cast<NodeId>(hosts_.size());
  auto host = std::make_unique<Host>();
  host->id = id;
  host->az = az;
  host->profile = std::move(profile);
  hosts_.push_back(std::move(host));
  actors_.push_back(nullptr);
  return id;
}

void Simulation::Crash(NodeId id) { hosts_[id]->alive = false; }

void Simulation::Restart(NodeId id) {
  Host* h = hosts_[id].get();
  h->alive = true;
  ++h->incarnation;
  if (actors_[id] != nullptr) actors_[id]->OnRestart();
}

void Simulation::PartitionAz(AzId az) {
  for (const auto& a : hosts_) {
    if (a->az != az) continue;
    for (const auto& b : hosts_) {
      if (b->az == az) continue;
      network_.SetLinkDown(a->id, b->id, true);
    }
  }
}

void Simulation::HealAz(AzId az) {
  for (const auto& a : hosts_) {
    if (a->az != az) continue;
    for (const auto& b : hosts_) {
      if (b->az == az) continue;
      network_.SetLinkDown(a->id, b->id, false);
    }
  }
}

void Simulation::RegisterActor(NodeId id, Actor* actor) {
  actors_[id] = actor;
}

void Simulation::UnregisterActor(NodeId id, Actor* actor) {
  if (actors_[id] == actor) actors_[id] = nullptr;
}

Actor* Simulation::ActorFor(NodeId id) const { return actors_[id]; }

}  // namespace memdb::sim
