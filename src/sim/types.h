// Fundamental types for the deterministic discrete-event simulation.

#ifndef MEMDB_SIM_TYPES_H_
#define MEMDB_SIM_TYPES_H_

#include <cstdint>
#include <limits>
#include <string>

namespace memdb::sim {

// Virtual time, in microseconds since simulation start.
using Time = uint64_t;
// Durations, also microseconds.
using Duration = uint64_t;

inline constexpr Duration kUs = 1;
inline constexpr Duration kMs = 1000;
inline constexpr Duration kSec = 1000 * 1000;

// Identifies a simulated host (a process-on-a-machine). Node 0 is valid.
using NodeId = uint32_t;
inline constexpr NodeId kInvalidNode = std::numeric_limits<NodeId>::max();

// Availability Zone index (the paper's deployments span 3 AZs).
using AzId = uint8_t;
inline constexpr int kNumAzs = 3;

// A message in flight between two hosts. `rpc_id` correlates a response to a
// pending request (0 for one-way messages).
struct Message {
  NodeId from = kInvalidNode;
  NodeId to = kInvalidNode;
  std::string type;      // handler dispatch key, e.g. "txlog.append"
  std::string payload;   // opaque serialized body
  uint64_t rpc_id = 0;
  bool is_response = false;
  // For responses: a memdb::StatusCode value (0 = OK). On a non-OK response
  // the payload carries the status message.
  uint8_t status_code = 0;
};

}  // namespace memdb::sim

#endif  // MEMDB_SIM_TYPES_H_
