// Simulated network: delivers messages between hosts with an AZ-aware
// latency model, supports partitions, link failures, and message drops.

#ifndef MEMDB_SIM_NETWORK_H_
#define MEMDB_SIM_NETWORK_H_

#include <cstdint>
#include <set>
#include <utility>

#include "common/rng.h"
#include "sim/types.h"

namespace memdb::sim {

class Simulation;

struct NetworkConfig {
  // One-way latencies in microseconds.
  Duration same_az_us = 50;
  Duration cross_az_us = 300;
  Duration local_us = 5;  // same host (loopback)
  // Uniform jitter added on top, [0, jitter_us].
  Duration jitter_us = 20;
  // Per-link bandwidth for bulk payloads, megabits/s. Payloads below
  // `bulk_threshold_bytes` are treated as latency-only.
  uint64_t link_mbps = 10000;
  uint64_t bulk_threshold_bytes = 16 * 1024;
  // Probability of dropping any given message (chaos testing).
  double drop_probability = 0.0;
};

class Network {
 public:
  Network(Simulation* sim, NetworkConfig config, uint64_t seed)
      : sim_(sim), config_(config), rng_(seed) {}

  // Queues `m` for delivery. Messages to/from dead hosts or across a
  // severed link are silently dropped (callers observe RPC timeouts).
  void Send(Message m);

  // Link control. Pairs are unordered.
  void SetLinkDown(NodeId a, NodeId b, bool down);
  // Severs all links between `node` and every other host.
  void Isolate(NodeId node);
  void Heal(NodeId node);
  void HealAll() { down_links_.clear(); isolated_.clear(); }

  bool LinkUp(NodeId a, NodeId b) const;

  NetworkConfig* mutable_config() { return &config_; }

  uint64_t messages_sent() const { return messages_sent_; }
  uint64_t messages_dropped() const { return messages_dropped_; }

 private:
  Duration DeliveryLatency(NodeId from, NodeId to, size_t bytes);

  Simulation* sim_;
  NetworkConfig config_;
  Rng rng_;
  std::set<std::pair<NodeId, NodeId>> down_links_;
  std::set<NodeId> isolated_;
  uint64_t messages_sent_ = 0;
  uint64_t messages_dropped_ = 0;
};

}  // namespace memdb::sim

#endif  // MEMDB_SIM_NETWORK_H_
