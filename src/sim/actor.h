// Actor: base class for every simulated process (database node, transaction
// log replica, monitoring service, client...). Provides guarded timers
// (no-ops after crash/restart), one-way sends, and an RPC facility with
// timeouts. One actor per host.

#ifndef MEMDB_SIM_ACTOR_H_
#define MEMDB_SIM_ACTOR_H_

#include <cstdint>
#include <functional>
#include <map>
#include <string>

#include "common/status.h"
#include "sim/simulation.h"
#include "sim/types.h"

namespace memdb::sim {

class Actor {
 public:
  using RpcCallback =
      std::function<void(const Status&, const std::string& payload)>;
  using Handler = std::function<void(const Message&)>;

  Actor(Simulation* sim, NodeId id);
  virtual ~Actor();

  Actor(const Actor&) = delete;
  Actor& operator=(const Actor&) = delete;

  NodeId id() const { return id_; }
  Simulation* simulation() const { return sim_; }
  Time Now() const { return sim_->Now(); }
  bool alive() const;

  // Called by the network on delivery. Dispatches to registered handlers;
  // responses are routed to the pending RPC callback.
  void Deliver(const Message& m);

  // Called by Simulation::Restart before the host comes back. Default
  // implementation clears pending RPCs; subclasses reset volatile state
  // (an in-memory database restarts empty).
  virtual void OnRestart();

  // The messaging surface is public so that reusable components (e.g. the
  // transaction-log client) can be composed into an actor and send RPCs on
  // its behalf.

  // Registers a handler for one-way and request messages of `type`.
  void On(std::string type, Handler handler);

  // Schedules `fn` after `d`; the call is skipped if this incarnation has
  // crashed or been superseded by the time it fires.
  TimerHandle After(Duration d, std::function<void()> fn);

  // Runs `fn` every `every` microseconds (first run after `every`),
  // for the lifetime of this incarnation.
  void Periodic(Duration every, std::function<void()> fn);

  // Fire-and-forget message.
  void Send(NodeId to, std::string type, std::string payload);

  // Request/response. `cb` is invoked exactly once: with the peer's reply,
  // or with Status::TimedOut if no response arrives within `timeout`.
  void Rpc(NodeId to, std::string type, std::string payload, Duration timeout,
           RpcCallback cb);

  // Replies to a request message (must carry a non-zero rpc_id).
  void Reply(const Message& request, std::string payload);
  void ReplyError(const Message& request, const Status& status);

  // Current incarnation of the underlying host.
  uint64_t incarnation() const { return sim_->host(id_)->incarnation; }

 private:
  struct PendingRpc {
    RpcCallback cb;
    TimerHandle timeout_timer;
  };

  Simulation* sim_;
  NodeId id_;
  std::map<std::string, Handler> handlers_;
  std::map<uint64_t, PendingRpc> pending_rpcs_;
  uint64_t next_rpc_id_ = 1;
};

}  // namespace memdb::sim

#endif  // MEMDB_SIM_ACTOR_H_
