// QueueServer: a k-server FIFO work-conserving queue on virtual time. Models
// contended serial resources: the single-threaded engine workloop (k=1),
// a pool of IO threads (k=n), a disk, etc. Submitting work returns the
// completion time; the caller schedules its continuation there.

#ifndef MEMDB_SIM_QUEUE_SERVER_H_
#define MEMDB_SIM_QUEUE_SERVER_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "sim/scheduler.h"
#include "sim/types.h"

namespace memdb::sim {

class QueueServer {
 public:
  QueueServer(Scheduler* scheduler, int servers)
      : scheduler_(scheduler),
        free_at_(static_cast<size_t>(servers < 1 ? 1 : servers), 0) {}

  // Enqueues a job costing `cost_us`; returns its completion time. Work is
  // assigned to the earliest-free server (FIFO across submissions).
  Time Submit(Duration cost_us) {
    auto it = std::min_element(free_at_.begin(), free_at_.end());
    const Time start = std::max(*it, scheduler_->Now());
    const Time done = start + cost_us;
    *it = done;
    total_busy_us_ += cost_us;
    ++jobs_;
    return done;
  }

  // Convenience: submit and schedule `fn` at the completion time.
  void SubmitAnd(Duration cost_us, std::function<void()> fn) {
    scheduler_->At(Submit(cost_us), std::move(fn));
  }

  // Blocks the resource until `t` (e.g. a fork() stall on the engine
  // thread): pushes every server's next free time to at least `t`.
  void StallUntil(Time t) {
    for (auto& f : free_at_) f = std::max(f, t);
  }

  // Earliest time any server becomes free.
  Time NextFree() const {
    return *std::min_element(free_at_.begin(), free_at_.end());
  }

  // Queue delay a new arrival would currently experience.
  Duration CurrentDelay() const {
    const Time nf = NextFree();
    const Time now = scheduler_->Now();
    return nf > now ? nf - now : 0;
  }

  uint64_t jobs() const { return jobs_; }
  uint64_t total_busy_us() const { return total_busy_us_; }
  int servers() const { return static_cast<int>(free_at_.size()); }

 private:
  Scheduler* scheduler_;
  std::vector<Time> free_at_;
  uint64_t total_busy_us_ = 0;
  uint64_t jobs_ = 0;
};

}  // namespace memdb::sim

#endif  // MEMDB_SIM_QUEUE_SERVER_H_
