#include "sim/actor.h"

#include <utility>

namespace memdb::sim {

Actor::Actor(Simulation* sim, NodeId id) : sim_(sim), id_(id) {
  sim_->RegisterActor(id_, this);
}

Actor::~Actor() { sim_->UnregisterActor(id_, this); }

bool Actor::alive() const { return sim_->host(id_)->alive; }

void Actor::OnRestart() {
  for (auto& [rpc_id, pending] : pending_rpcs_) {
    pending.timeout_timer.Cancel();
  }
  pending_rpcs_.clear();
}

void Actor::On(std::string type, Handler handler) {
  handlers_[std::move(type)] = std::move(handler);
}

void Actor::Deliver(const Message& m) {
  if (m.is_response) {
    auto it = pending_rpcs_.find(m.rpc_id);
    if (it == pending_rpcs_.end()) return;  // late reply after timeout
    PendingRpc pending = std::move(it->second);
    pending_rpcs_.erase(it);
    pending.timeout_timer.Cancel();
    Status status = m.status_code == 0
                        ? Status::OK()
                        : Status(static_cast<StatusCode>(m.status_code),
                                 m.payload);
    pending.cb(status, m.payload);
    return;
  }
  auto it = handlers_.find(m.type);
  if (it != handlers_.end()) it->second(m);
}

TimerHandle Actor::After(Duration d, std::function<void()> fn) {
  const uint64_t inc = incarnation();
  Simulation* sim = sim_;
  const NodeId id = id_;
  return sim_->scheduler().After(d, [sim, id, inc, fn = std::move(fn)]() {
    const Host* host = sim->host(id);
    if (!host->alive || host->incarnation != inc) return;
    fn();
  });
}

void Actor::Periodic(Duration every, std::function<void()> fn) {
  After(every, [this, every, fn]() {
    fn();
    Periodic(every, fn);
  });
}

void Actor::Send(NodeId to, std::string type, std::string payload) {
  Message m;
  m.from = id_;
  m.to = to;
  m.type = std::move(type);
  m.payload = std::move(payload);
  sim_->network().Send(std::move(m));
}

void Actor::Rpc(NodeId to, std::string type, std::string payload,
                Duration timeout, RpcCallback cb) {
  const uint64_t rpc_id = next_rpc_id_++;
  Message m;
  m.from = id_;
  m.to = to;
  m.type = std::move(type);
  m.payload = std::move(payload);
  m.rpc_id = rpc_id;
  PendingRpc pending;
  pending.cb = std::move(cb);
  pending.timeout_timer = After(timeout, [this, rpc_id]() {
    auto it = pending_rpcs_.find(rpc_id);
    if (it == pending_rpcs_.end()) return;
    PendingRpc p = std::move(it->second);
    pending_rpcs_.erase(it);
    p.cb(Status::TimedOut("rpc timed out"), "");
  });
  pending_rpcs_.emplace(rpc_id, std::move(pending));
  sim_->network().Send(std::move(m));
}

void Actor::Reply(const Message& request, std::string payload) {
  Message m;
  m.from = id_;
  m.to = request.from;
  m.type = request.type;
  m.payload = std::move(payload);
  m.rpc_id = request.rpc_id;
  m.is_response = true;
  sim_->network().Send(std::move(m));
}

void Actor::ReplyError(const Message& request, const Status& status) {
  Message m;
  m.from = id_;
  m.to = request.from;
  m.type = request.type;
  m.payload = status.message();
  m.rpc_id = request.rpc_id;
  m.is_response = true;
  m.status_code = static_cast<uint8_t>(status.code());
  sim_->network().Send(std::move(m));
}

}  // namespace memdb::sim
