#include "sim/network.h"

#include <algorithm>

#include "sim/actor.h"
#include "sim/simulation.h"

namespace memdb::sim {

namespace {
std::pair<NodeId, NodeId> OrderedPair(NodeId a, NodeId b) {
  return a < b ? std::make_pair(a, b) : std::make_pair(b, a);
}
}  // namespace

bool Network::LinkUp(NodeId a, NodeId b) const {
  if (isolated_.count(a) || isolated_.count(b)) return false;
  return down_links_.find(OrderedPair(a, b)) == down_links_.end();
}

void Network::SetLinkDown(NodeId a, NodeId b, bool down) {
  if (down) {
    down_links_.insert(OrderedPair(a, b));
  } else {
    down_links_.erase(OrderedPair(a, b));
  }
}

void Network::Isolate(NodeId node) { isolated_.insert(node); }
void Network::Heal(NodeId node) { isolated_.erase(node); }

Duration Network::DeliveryLatency(NodeId from, NodeId to, size_t bytes) {
  Duration base;
  if (from == to) {
    base = config_.local_us;
  } else if (sim_->host(from)->az == sim_->host(to)->az) {
    base = config_.same_az_us;
  } else {
    base = config_.cross_az_us;
  }
  Duration jitter =
      config_.jitter_us > 0 ? rng_.Uniform(config_.jitter_us + 1) : 0;
  Duration transfer = 0;
  if (bytes > config_.bulk_threshold_bytes && config_.link_mbps > 0) {
    // bytes * 8 bits / (mbps * 1e6 bits/s) seconds -> microseconds.
    transfer = static_cast<Duration>(static_cast<double>(bytes) * 8.0 /
                                     static_cast<double>(config_.link_mbps));
  }
  return base + jitter + transfer;
}

void Network::Send(Message m) {
  ++messages_sent_;
  const Host* from = sim_->host(m.from);
  const Host* to = sim_->host(m.to);
  if (!from->alive || !to->alive || !LinkUp(m.from, m.to) ||
      (config_.drop_probability > 0 &&
       rng_.NextDouble() < config_.drop_probability)) {
    ++messages_dropped_;
    return;
  }
  const Duration latency = DeliveryLatency(m.from, m.to, m.payload.size());
  const uint64_t target_incarnation = to->incarnation;
  Simulation* sim = sim_;
  const NodeId to_id = m.to;
  sim_->scheduler().After(latency, [sim, to_id, target_incarnation,
                                    msg = std::move(m)]() {
    const Host* host = sim->host(to_id);
    if (!host->alive || host->incarnation != target_incarnation) return;
    Actor* actor = sim->ActorFor(to_id);
    if (actor != nullptr) actor->Deliver(msg);
  });
}

}  // namespace memdb::sim
