// EventLoop: a thin epoll wrapper — the readiness core of the real I/O path
// (src/net). One loop instance is owned and polled by a single thread; the
// only cross-thread entry point is Wakeup(), which forces a sleeping Poll()
// to return (used for shutdown and for handing work to the loop).
//
// This is the real-socket counterpart of sim::Scheduler: where the simulator
// advances virtual time and delivers messages, the EventLoop blocks in
// epoll_wait and reports which file descriptors are ready.

#ifndef MEMDB_NET_EVENT_LOOP_H_
#define MEMDB_NET_EVENT_LOOP_H_

#include <cstdint>
#include <vector>

#include "common/status.h"

namespace memdb::net {

// Readiness interest / result bits (mapped onto EPOLLIN/EPOLLOUT internally).
inline constexpr uint32_t kReadable = 1u << 0;
inline constexpr uint32_t kWritable = 1u << 1;
// Result-only: peer hung up or the fd errored; always safe to close.
inline constexpr uint32_t kClosed = 1u << 2;

struct Event {
  void* tag = nullptr;  // the tag registered with Add/Modify
  uint32_t events = 0;  // kReadable | kWritable | kClosed
};

class EventLoop {
 public:
  EventLoop() = default;
  ~EventLoop();
  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  // Creates the epoll instance and the internal wakeup eventfd.
  Status Init();

  // Registers `fd` with the given interest set; `tag` is returned verbatim
  // in Events (typically a Connection* or the listener sentinel).
  Status Add(int fd, uint32_t events, void* tag);
  Status Modify(int fd, uint32_t events, void* tag);
  void Remove(int fd);

  // Blocks up to timeout_ms (-1 = indefinitely) and fills *out with ready
  // fds. Wakeup notifications are drained internally and simply cause an
  // early return. Returns the number of events delivered (0 on timeout).
  int Poll(int timeout_ms, std::vector<Event>* out);

  // Thread-safe: makes the current/next Poll return immediately.
  void Wakeup();

 private:
  int epoll_fd_ = -1;
  int wake_fd_ = -1;
};

}  // namespace memdb::net

#endif  // MEMDB_NET_EVENT_LOOP_H_
