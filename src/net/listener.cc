#include "net/listener.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace memdb::net {

Status Listener::Open(const std::string& addr, uint16_t port, int backlog) {
  fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd_ < 0) {
    return Status::Internal(std::string("socket: ") + std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  struct sockaddr_in sa;
  std::memset(&sa, 0, sizeof(sa));
  sa.sin_family = AF_INET;
  sa.sin_port = htons(port);
  if (::inet_pton(AF_INET, addr.c_str(), &sa.sin_addr) != 1) {
    Close();
    return Status::InvalidArgument("bad bind address: " + addr);
  }
  if (::bind(fd_, reinterpret_cast<struct sockaddr*>(&sa), sizeof(sa)) != 0) {
    Status s = Status::Unavailable(std::string("bind ") + addr + ":" +
                                   std::to_string(port) + ": " +
                                   std::strerror(errno));
    Close();
    return s;
  }
  if (::listen(fd_, backlog) != 0) {
    Status s = Status::Internal(std::string("listen: ") +
                                std::strerror(errno));
    Close();
    return s;
  }
  // Recover the kernel-assigned port when the caller bound port 0.
  struct sockaddr_in bound;
  socklen_t len = sizeof(bound);
  if (::getsockname(fd_, reinterpret_cast<struct sockaddr*>(&bound), &len) ==
      0) {
    port_ = ntohs(bound.sin_port);
  } else {
    port_ = port;
  }
  return Status::OK();
}

int Listener::Accept() {
  const int fd =
      ::accept4(fd_, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
  if (fd < 0) return -1;
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

void Listener::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

}  // namespace memdb::net
