#include "net/connection.h"

#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>

namespace memdb::net {

namespace {
// Per-ReadAndParse ceiling: with level-triggered epoll a connection that
// still has unread bytes is simply re-reported next iteration, so bounding
// one drain pass keeps a single firehose client from starving the batch.
constexpr size_t kMaxReadsPerPass = 64;
constexpr size_t kReadChunk = 16 * 1024;
}  // namespace

Connection::Connection(int fd, uint64_t id, const resp::DecodeLimits& limits)
    : fd_(fd), id_(id) {
  decoder_.set_limits(limits);
}

Connection::~Connection() { Close(); }

void Connection::Close() {
  if (state_ != State::kClosed) {
    ::close(fd_);
    state_ = State::kClosed;
  }
}

void Connection::ReadAndParse() {
  if (state_ != State::kOpen) return;
  char buf[kReadChunk];
  for (size_t pass = 0; pass < kMaxReadsPerPass; ++pass) {
    const ssize_t n = ::read(fd_, buf, sizeof(buf));
    if (n > 0) {
      bytes_in_ += static_cast<uint64_t>(n);
      decoder_.Feed(Slice(buf, static_cast<size_t>(n)));
      if (static_cast<size_t>(n) < sizeof(buf)) break;
      continue;
    }
    if (n == 0) {
      peer_closed_ = true;
      break;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    peer_closed_ = true;  // fatal read error: treat like a hangup
    break;
  }
  if (decoder_.buffered() > max_input_buffered_) {
    max_input_buffered_ = decoder_.buffered();
  }
  if (!protocol_error_.empty()) return;
  std::vector<std::string> argv;
  std::string error;
  for (;;) {
    const resp::DecodeStatus st = decoder_.DecodeCommand(&argv, &error);
    if (st == resp::DecodeStatus::kOk) {
      pending_.push_back(std::move(argv));
      argv.clear();
      continue;
    }
    if (st == resp::DecodeStatus::kError) {
      protocol_error_ = error.empty() ? "protocol error" : error;
    }
    break;
  }
}

void Connection::FlushWrites() {
  if (state_ == State::kClosed) return;
  while (out_sent_ < out_.size()) {
    const ssize_t n = ::send(fd_, out_.data() + out_sent_,
                             out_.size() - out_sent_, MSG_NOSIGNAL);
    if (n > 0) {
      bytes_out_ += static_cast<uint64_t>(n);
      out_sent_ += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    // EPIPE / ECONNRESET: the reply sink is gone. Drop the undeliverable
    // output so the reaper sees a drained, dead connection.
    peer_closed_ = true;
    out_.clear();
    out_sent_ = 0;
    return;
  }
  if (out_sent_ == out_.size()) {
    out_.clear();
    out_sent_ = 0;
  } else if (out_sent_ > 64 * 1024 && out_sent_ > out_.size() / 2) {
    out_.erase(0, out_sent_);
    out_sent_ = 0;
  }
}

}  // namespace memdb::net
