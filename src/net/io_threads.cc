#include "net/io_threads.h"

namespace memdb::net {

IoThreadPool::IoThreadPool(int extra_threads)
    : stride_(static_cast<size_t>(extra_threads < 0 ? 0 : extra_threads) +
              1) {
  for (int i = 0; i < extra_threads; ++i) {
    // Worker i owns slice i+1; the caller owns slice 0.
    workers_.emplace_back(
        [this, i] { WorkerMain(static_cast<size_t>(i) + 1); });
  }
}

IoThreadPool::~IoThreadPool() {
  {
    MutexLock lock(&mu_);
    stop_ = true;
  }
  work_cv_.SignalAll();
  for (std::thread& t : workers_) t.join();
}

void IoThreadPool::Run(size_t jobs, const std::function<void(size_t)>& fn) {
  if (jobs == 0) return;
  const size_t stride = stride_;
  if (workers_.empty() || jobs == 1) {
    for (size_t i = 0; i < jobs; ++i) fn(i);
    return;
  }
  {
    MutexLock lock(&mu_);
    fn_ = &fn;
    jobs_ = jobs;
    completed_ = 0;
    ++generation_;
  }
  work_cv_.SignalAll();
  size_t ran = 0;
  for (size_t i = 0; i < jobs; i += stride) {
    fn(i);
    ++ran;
  }
  MutexLock lock(&mu_);
  completed_ += ran;
  // lint:allow-blocking -- io fan-out barrier: the calling loop parks until
  // every worker drains its slice; bounded by the batch the loop just built.
  while (completed_ != jobs_) done_cv_.Wait(&mu_);
  fn_ = nullptr;
}

// lint:off-loop -- io worker thread body; never runs on the event loop.
void IoThreadPool::WorkerMain(size_t slice) {
  const size_t stride = stride_;
  uint64_t seen_generation = 0;
  for (;;) {
    const std::function<void(size_t)>* fn;
    size_t jobs;
    {
      MutexLock lock(&mu_);
      while (!stop_ &&
             (generation_ == seen_generation || fn_ == nullptr)) {
        work_cv_.Wait(&mu_);
      }
      if (stop_) return;
      seen_generation = generation_;
      fn = fn_;
      jobs = jobs_;
    }
    size_t ran = 0;
    for (size_t i = slice; i < jobs; i += stride) {
      (*fn)(i);
      ++ran;
    }
    MutexLock lock(&mu_);
    completed_ += ran;
    if (completed_ == jobs_) done_cv_.SignalAll();
  }
}

}  // namespace memdb::net
