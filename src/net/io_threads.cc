#include "net/io_threads.h"

namespace memdb::net {

IoThreadPool::IoThreadPool(int extra_threads)
    : stride_(static_cast<size_t>(extra_threads < 0 ? 0 : extra_threads) +
              1) {
  for (int i = 0; i < extra_threads; ++i) {
    // Worker i owns slice i+1; the caller owns slice 0.
    workers_.emplace_back(
        [this, i] { WorkerMain(static_cast<size_t>(i) + 1); });
  }
}

IoThreadPool::~IoThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void IoThreadPool::Run(size_t jobs, const std::function<void(size_t)>& fn) {
  if (jobs == 0) return;
  const size_t stride = stride_;
  if (workers_.empty() || jobs == 1) {
    for (size_t i = 0; i < jobs; ++i) fn(i);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    fn_ = &fn;
    jobs_ = jobs;
    completed_ = 0;
    ++generation_;
  }
  work_cv_.notify_all();
  size_t ran = 0;
  for (size_t i = 0; i < jobs; i += stride) {
    fn(i);
    ++ran;
  }
  std::unique_lock<std::mutex> lock(mu_);
  completed_ += ran;
  done_cv_.wait(lock, [this] { return completed_ == jobs_; });
  fn_ = nullptr;
}

void IoThreadPool::WorkerMain(size_t slice) {
  const size_t stride = stride_;
  uint64_t seen_generation = 0;
  for (;;) {
    const std::function<void(size_t)>* fn;
    size_t jobs;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] {
        return stop_ || (generation_ != seen_generation && fn_ != nullptr);
      });
      if (stop_) return;
      seen_generation = generation_;
      fn = fn_;
      jobs = jobs_;
    }
    size_t ran = 0;
    for (size_t i = slice; i < jobs; i += stride) {
      (*fn)(i);
      ++ran;
    }
    std::lock_guard<std::mutex> lock(mu_);
    completed_ += ran;
    if (completed_ == jobs_) done_cv_.notify_all();
  }
}

}  // namespace memdb::net
