// memorydb-server: standalone single-node server — engine::Engine behind the
// real epoll RESP front end (net::RespServer). Serves PING/GET/SET/INFO/
// METRICS and the rest of the engine's command table over TCP.
//
//   memorydb-server [--port N] [--bind ADDR] [--maxclients N]
//                   [--tcp-backlog N] [--io-threads N] [--maxmemory-mb N]
//
// Runs until SIGINT/SIGTERM. With --port 0 the kernel picks a port; the
// chosen port is printed on the "listening" banner either way.

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include "engine/engine.h"
#include "net/server.h"

namespace {

volatile std::sig_atomic_t g_stop = 0;

void OnSignal(int) { g_stop = 1; }

bool ParseUint(const char* s, uint64_t* out) {
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s, &end, 10);
  if (end == s || *end != '\0') return false;
  *out = v;
  return true;
}

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--port N] [--bind ADDR] [--maxclients N]\n"
               "          [--tcp-backlog N] [--io-threads N] "
               "[--maxmemory-mb N]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  memdb::net::ServerConfig config;
  uint64_t maxmemory_mb = 0;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const bool has_value = i + 1 < argc;
    uint64_t v = 0;
    if (arg == "--port" && has_value && ParseUint(argv[++i], &v) &&
        v <= 65535) {
      config.port = static_cast<uint16_t>(v);
    } else if (arg == "--bind" && has_value) {
      config.bind_address = argv[++i];
    } else if (arg == "--maxclients" && has_value &&
               ParseUint(argv[++i], &v) && v > 0) {
      config.maxclients = v;
    } else if (arg == "--tcp-backlog" && has_value &&
               ParseUint(argv[++i], &v) && v > 0) {
      config.tcp_backlog = static_cast<int>(v);
    } else if (arg == "--io-threads" && has_value &&
               ParseUint(argv[++i], &v) && v >= 1 && v <= 128) {
      config.io_threads = static_cast<int>(v);
    } else if (arg == "--maxmemory-mb" && has_value &&
               ParseUint(argv[++i], &v)) {
      maxmemory_mb = v;
    } else {
      return Usage(argv[0]);
    }
  }

  memdb::engine::Engine::Config engine_config;
  engine_config.maxmemory_bytes = maxmemory_mb << 20;
  memdb::engine::Engine engine(engine_config);

  memdb::net::RespServer server(&engine, config);
  const memdb::Status s = server.Start();
  if (!s.ok()) {
    std::fprintf(stderr, "memorydb-server: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf(
      "memorydb-server listening on %s:%u (maxclients=%zu, "
      "tcp-backlog=%d, io-threads=%d)\n",
      server.config().bind_address.c_str(), server.port(),
      server.config().maxclients, server.config().tcp_backlog,
      server.config().io_threads);
  std::fflush(stdout);

  std::signal(SIGINT, OnSignal);
  std::signal(SIGTERM, OnSignal);
  std::signal(SIGPIPE, SIG_IGN);
  while (!g_stop) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  std::printf("memorydb-server: shutting down\n");
  server.Stop();
  return 0;
}
