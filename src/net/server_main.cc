// memorydb-server: standalone single-node server — engine::Engine behind the
// real epoll RESP front end (net::RespServer). Serves PING/GET/SET/INFO/
// METRICS and the rest of the engine's command table over TCP.
//
//   memorydb-server [--port N] [--bind ADDR] [--maxclients N]
//                   [--tcp-backlog N] [--io-threads N] [--maxmemory-mb N]
//                   [--txlog-endpoints HOST:PORT,...] [--writer-id N]
//                   [--txlog-timeout-ms N] [--shutdown-drain-ms N]
//                   [--checksum-every N]
//                   [--replica-of-log HOST:PORT,...]
//                   [--restore --store-dir PATH [--shard-id ID]]
//                   [--failover] [--lease-duration-ms N]
//                   [--lease-renew-ms N] [--failover-probe-ms N]
//                   [--trace-sample-rate N] [--trace-file PATH]
//                   [--trace-proc LABEL] [--slowlog-slower-than-us N]
//                   [--slowlog-max-len N]
//                   [--cluster] [--cluster-slots RANGES]
//                   [--cluster-announce HOST:PORT]
//                   [--cluster-peer SHARD@HOST:PORT=RANGES]...
//                   [--migration-batch-keys N]
//
// With --txlog-endpoints the server runs as a durable primary: every write's
// effect batch is appended to the out-of-process transaction log group
// (memorydb-txlogd, one endpoint per simulated AZ) and the client's reply is
// withheld until a majority of log replicas persisted it (§3.1). On
// shutdown, in-flight appends are drained for up to --shutdown-drain-ms.
//
// With --replica-of-log the server runs as a log-fed replica (§4.2.1): it
// long-polls the same txlogd group for committed entries, applies them, and
// serves reads; writes answer -READONLY and WAIT answers 0.
//
// With --restore the server first recovers peer-lessly from the snapshot
// store at --store-dir plus the log tail (§4.2.1) before accepting traffic
// — the recovery half of the off-box snapshots memorydb-snapshotd writes.
//
// With --failover (§4.1/§4.2) a primary acquires the shard lease in the
// transaction log before serving and chains its appends on it (fenced
// writes); a replica monitors the holder and self-promotes — replaying the
// committed tail first — when the lease expires. No operator action needed.
//
// With --cluster (§5) the server becomes one shard of a hash-slot cluster:
// it serves only the slot ranges in --cluster-slots (e.g. "0-8191"),
// answers -MOVED for slots owned by the peers declared via repeated
// --cluster-peer flags (shard1@127.0.0.1:7001=8192-16383), and accepts
// CLUSTER SETSLOT ... MIGRATE to stream a live slot to a peer with the
// ownership flip fenced through the transaction log.
//
// Runs until SIGINT/SIGTERM. With --port 0 the kernel picks a port; the
// chosen port is printed on the "listening" banner either way.

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "engine/engine.h"
#include "net/server.h"

namespace {

volatile std::sig_atomic_t g_stop = 0;

void OnSignal(int) { g_stop = 1; }

bool ParseUint(const char* s, uint64_t* out) {
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s, &end, 10);
  if (end == s || *end != '\0') return false;
  *out = v;
  return true;
}

std::vector<std::string> SplitList(const std::string& s) {
  std::vector<std::string> out;
  size_t start = 0;
  while (start <= s.size()) {
    const size_t comma = s.find(',', start);
    if (comma == std::string::npos) {
      if (start < s.size()) out.push_back(s.substr(start));
      break;
    }
    if (comma > start) out.push_back(s.substr(start, comma - start));
    start = comma + 1;
  }
  return out;
}

// "shard1@127.0.0.1:7001=8192-16383" -> ClusterPeer{shard, endpoint, slots}.
bool ParseClusterPeer(const std::string& s,
                      memdb::net::ServerConfig::ClusterPeer* out) {
  const size_t at = s.find('@');
  const size_t eq = s.find('=', at == std::string::npos ? 0 : at);
  if (at == std::string::npos || eq == std::string::npos || at == 0 ||
      eq <= at + 1 || eq + 1 >= s.size()) {
    return false;
  }
  out->shard_id = s.substr(0, at);
  out->endpoint = s.substr(at + 1, eq - at - 1);
  out->slots = s.substr(eq + 1);
  return true;
}

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--port N] [--bind ADDR] [--maxclients N]\n"
               "          [--tcp-backlog N] [--io-threads N] "
               "[--maxmemory-mb N]\n"
               "          [--maxmemory-policy noeviction|allkeys-lru|"
               "allkeys-lfu|volatile-ttl]\n"
               "          [--maxmemory-samples N]\n"
               "          [--txlog-endpoints HOST:PORT,...] [--writer-id N]\n"
               "          [--txlog-timeout-ms N] [--shutdown-drain-ms N]\n"
               "          [--checksum-every N] [--replica-of-log "
               "HOST:PORT,...]\n"
               "          [--restore --store-dir PATH [--shard-id ID]]\n"
               "          [--failover] [--lease-duration-ms N]\n"
               "          [--lease-renew-ms N] [--failover-probe-ms N]\n"
               "          [--trace-sample-rate N] [--trace-file PATH]\n"
               "          [--trace-proc LABEL] [--slowlog-slower-than-us N]\n"
               "          [--slowlog-max-len N]\n"
               "          [--cluster] [--cluster-slots RANGES]\n"
               "          [--cluster-announce HOST:PORT]\n"
               "          [--cluster-peer SHARD@HOST:PORT=RANGES]...\n"
               "          [--migration-batch-keys N]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  memdb::net::ServerConfig config;
  uint64_t maxmemory_mb = 0;
  memdb::engine::EvictionPolicy eviction_policy =
      memdb::engine::EvictionPolicy::kNoEviction;
  uint64_t eviction_samples = 5;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const bool has_value = i + 1 < argc;
    uint64_t v = 0;
    if (arg == "--port" && has_value && ParseUint(argv[++i], &v) &&
        v <= 65535) {
      config.port = static_cast<uint16_t>(v);
    } else if (arg == "--bind" && has_value) {
      config.bind_address = argv[++i];
    } else if (arg == "--maxclients" && has_value &&
               ParseUint(argv[++i], &v) && v > 0) {
      config.maxclients = v;
    } else if (arg == "--tcp-backlog" && has_value &&
               ParseUint(argv[++i], &v) && v > 0) {
      config.tcp_backlog = static_cast<int>(v);
    } else if (arg == "--io-threads" && has_value &&
               ParseUint(argv[++i], &v) && v >= 1 && v <= 128) {
      config.io_threads = static_cast<int>(v);
    } else if (arg == "--maxmemory-mb" && has_value &&
               ParseUint(argv[++i], &v)) {
      maxmemory_mb = v;
    } else if (arg == "--maxmemory-policy" && has_value &&
               memdb::engine::ParseEvictionPolicy(argv[i + 1],
                                                  &eviction_policy)) {
      ++i;
    } else if (arg == "--maxmemory-samples" && has_value &&
               ParseUint(argv[++i], &v) && v >= 1 && v <= 64) {
      eviction_samples = v;
    } else if (arg == "--txlog-endpoints" && has_value) {
      config.txlog_endpoints = SplitList(argv[++i]);
    } else if (arg == "--writer-id" && has_value && ParseUint(argv[++i], &v) &&
               v > 0) {
      config.txlog_writer_id = v;
    } else if (arg == "--txlog-timeout-ms" && has_value &&
               ParseUint(argv[++i], &v) && v > 0) {
      config.txlog_rpc_timeout_ms = v;
    } else if (arg == "--shutdown-drain-ms" && has_value &&
               ParseUint(argv[++i], &v)) {
      config.shutdown_drain_ms = v;
    } else if (arg == "--checksum-every" && has_value &&
               ParseUint(argv[++i], &v)) {
      config.txlog_checksum_every = v;
    } else if (arg == "--replica-of-log" && has_value) {
      config.replica_of_log = SplitList(argv[++i]);
    } else if (arg == "--restore") {
      config.restore = true;
    } else if (arg == "--store-dir" && has_value) {
      config.store_dir = argv[++i];
    } else if (arg == "--shard-id" && has_value) {
      config.shard_id = argv[++i];
    } else if (arg == "--failover") {
      config.failover = true;
    } else if (arg == "--lease-duration-ms" && has_value &&
               ParseUint(argv[++i], &v) && v > 0) {
      config.lease_duration_ms = v;
    } else if (arg == "--lease-renew-ms" && has_value &&
               ParseUint(argv[++i], &v) && v > 0) {
      config.lease_renew_ms = v;
    } else if (arg == "--failover-probe-ms" && has_value &&
               ParseUint(argv[++i], &v) && v > 0) {
      config.failover_probe_ms = v;
    } else if (arg == "--trace-sample-rate" && has_value &&
               ParseUint(argv[++i], &v)) {
      config.trace_sample_rate = v;
    } else if (arg == "--trace-file" && has_value) {
      config.trace_file = argv[++i];
    } else if (arg == "--trace-proc" && has_value) {
      config.trace_proc = argv[++i];
    } else if (arg == "--slowlog-slower-than-us" && has_value &&
               ParseUint(argv[++i], &v)) {
      config.slowlog_slower_than_us = v;
    } else if (arg == "--slowlog-max-len" && has_value &&
               ParseUint(argv[++i], &v) && v > 0) {
      config.slowlog_max_len = v;
    } else if (arg == "--cluster") {
      config.cluster = true;
    } else if (arg == "--cluster-slots" && has_value) {
      config.cluster_slots = argv[++i];
    } else if (arg == "--cluster-announce" && has_value) {
      config.cluster_announce = argv[++i];
    } else if (arg == "--cluster-peer" && has_value) {
      memdb::net::ServerConfig::ClusterPeer peer;
      if (!ParseClusterPeer(argv[++i], &peer)) return Usage(argv[0]);
      config.cluster_peers.push_back(std::move(peer));
    } else if (arg == "--migration-batch-keys" && has_value &&
               ParseUint(argv[++i], &v) && v > 0) {
      config.migration_batch_keys = v;
    } else {
      return Usage(argv[0]);
    }
  }

  memdb::engine::Engine::Config engine_config;
  engine_config.maxmemory_bytes = maxmemory_mb << 20;
  engine_config.eviction_policy = eviction_policy;
  engine_config.eviction_samples = static_cast<int>(eviction_samples);
  memdb::engine::Engine engine(engine_config);

  memdb::net::RespServer server(&engine, config);
  const memdb::Status s = server.Start();
  if (!s.ok()) {
    std::fprintf(stderr, "memorydb-server: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf(
      "memorydb-server listening on %s:%u (maxclients=%zu, "
      "tcp-backlog=%d, io-threads=%d%s)\n",
      server.config().bind_address.c_str(), server.port(),
      server.config().maxclients, server.config().tcp_backlog,
      server.config().io_threads,
      !config.replica_of_log.empty()
          ? ", replica: log-fed"
          : (config.txlog_endpoints.empty()
                 ? ""
                 : ", durable: remote transaction log"));
  std::fflush(stdout);

  std::signal(SIGINT, OnSignal);
  std::signal(SIGTERM, OnSignal);
  std::signal(SIGPIPE, SIG_IGN);
  while (!g_stop) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  std::printf("memorydb-server: shutting down\n");
  server.Stop();
  return 0;
}
