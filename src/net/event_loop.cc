#include "net/event_loop.h"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace memdb::net {

namespace {

uint32_t ToEpoll(uint32_t events) {
  uint32_t out = 0;
  if (events & kReadable) out |= EPOLLIN;
  if (events & kWritable) out |= EPOLLOUT;
  return out;
}

uint32_t FromEpoll(uint32_t events) {
  uint32_t out = 0;
  if (events & (EPOLLIN | EPOLLPRI)) out |= kReadable;
  if (events & EPOLLOUT) out |= kWritable;
  if (events & (EPOLLHUP | EPOLLERR | EPOLLRDHUP)) out |= kClosed;
  return out;
}

}  // namespace

EventLoop::~EventLoop() {
  if (wake_fd_ >= 0) ::close(wake_fd_);
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
}

Status EventLoop::Init() {
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) {
    return Status::Internal(std::string("epoll_create1: ") +
                            std::strerror(errno));
  }
  wake_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (wake_fd_ < 0) {
    return Status::Internal(std::string("eventfd: ") + std::strerror(errno));
  }
  // The wakeup fd is registered with a null tag; Poll filters it out.
  return Add(wake_fd_, kReadable, nullptr);
}

Status EventLoop::Add(int fd, uint32_t events, void* tag) {
  struct epoll_event ev;
  std::memset(&ev, 0, sizeof(ev));
  ev.events = ToEpoll(events);
  ev.data.ptr = tag;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
    return Status::Internal(std::string("epoll_ctl(ADD): ") +
                            std::strerror(errno));
  }
  return Status::OK();
}

Status EventLoop::Modify(int fd, uint32_t events, void* tag) {
  struct epoll_event ev;
  std::memset(&ev, 0, sizeof(ev));
  ev.events = ToEpoll(events);
  ev.data.ptr = tag;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev) != 0) {
    return Status::Internal(std::string("epoll_ctl(MOD): ") +
                            std::strerror(errno));
  }
  return Status::OK();
}

void EventLoop::Remove(int fd) {
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
}

int EventLoop::Poll(int timeout_ms, std::vector<Event>* out) {
  struct epoll_event evs[128];
  int n;
  do {
    n = ::epoll_wait(epoll_fd_, evs, 128, timeout_ms);
  } while (n < 0 && errno == EINTR);
  if (n <= 0) return 0;
  out->clear();
  for (int i = 0; i < n; ++i) {
    if (evs[i].data.ptr == nullptr) {
      // Wakeup eventfd: drain the counter so it is level-clear again.
      uint64_t v;
      while (::read(wake_fd_, &v, sizeof(v)) > 0) {
      }
      continue;
    }
    out->push_back(Event{evs[i].data.ptr, FromEpoll(evs[i].events)});
  }
  return static_cast<int>(out->size());
}

void EventLoop::Wakeup() {
  const uint64_t one = 1;
  // A full eventfd counter still wakes the poller; ignore short writes.
  [[maybe_unused]] ssize_t n = ::write(wake_fd_, &one, sizeof(one));
}

}  // namespace memdb::net
