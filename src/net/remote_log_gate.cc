#include "net/remote_log_gate.h"

#include <chrono>
#include <utility>

#include "common/coding.h"
#include "common/crc.h"

namespace memdb::net {

namespace {
uint64_t NowUs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}
}  // namespace

RemoteLogGate::RemoteLogGate(Options options, MetricsRegistry* registry)
    : options_(std::move(options)),
      running_checksum_(options_.checksum_seed) {
  if (registry != nullptr) {
    appends_submitted_ = registry->GetCounter("txlog_gate_appends_total");
    appends_failed_ = registry->GetCounter("txlog_gate_append_failures_total");
    queue_depth_ = registry->GetGauge("txlog_gate_queue_depth");
    checksum_records_ = registry->GetCounter("txlog_checksum_records_total");
    log_consumers_ = registry->GetGauge("repl_log_consumers");
    tail_commit_ = registry->GetGauge("txlog_tail_commit_index");
  }
  // RemoteClient resolves its rpc_* instruments here too — before Start()
  // spawns the loop thread, so registry mutation stays single-threaded.
  txlog::RemoteClient::Options copt;
  copt.writer_id = options_.writer_id;
  copt.rpc_timeout_ms = options_.rpc_timeout_ms;
  copt.backoff_base_ms = options_.backoff_base_ms;
  copt.backoff_cap_ms = options_.backoff_cap_ms;
  copt.max_attempts = options_.max_attempts;
  copt.max_redirects = options_.max_redirects;
  copt.trace = options_.trace;
  client_ = std::make_unique<txlog::RemoteClient>(&loop_, options_.endpoints,
                                                  copt, registry);
}

RemoteLogGate::~RemoteLogGate() { Stop(); }

Status RemoteLogGate::Start(std::function<void()> on_complete) {
  if (options_.endpoints.empty()) {
    return Status::InvalidArgument("remote log gate needs endpoints");
  }
  on_complete_ = std::move(on_complete);
  loop_.Start();
  started_ = true;
  if (options_.tail_poll_ms > 0) {
    loop_.Post([this] { ScheduleTailPoll(); });
  }
  return Status::OK();
}

void RemoteLogGate::Stop() {
  if (!started_) return;
  started_ = false;
  stopping_.store(true, std::memory_order_release);
  client_->Shutdown();
  loop_.Stop();
}

uint64_t RemoteLogGate::SubmitAppend(std::string payload, uint64_t trace_id) {
  const uint64_t seq = next_seq_.fetch_add(1, std::memory_order_relaxed);
  submitted_.fetch_add(1, std::memory_order_acq_rel);
  if (appends_submitted_ != nullptr) appends_submitted_->Increment();
  loop_.Post([this, seq, trace_id, payload = std::move(payload)]() mutable {
    PendingAppend p;
    p.seq = seq;
    p.trace_id = trace_id;
    p.payload = std::move(payload);
    queue_.push_back(std::move(p));
    if (queue_depth_ != nullptr) {
      queue_depth_->Set(static_cast<int64_t>(queue_.size()));
    }
    Pump();
  });
  return seq;
}

std::vector<RemoteLogGate::Completion> RemoteLogGate::DrainCompletions() {
  std::vector<Completion> out;
  MutexLock lock(&done_mu_);
  out.swap(done_);
  return out;
}

void RemoteLogGate::Pump() {
  loop_.AssertOnLoopThread();
  if (append_inflight_ || queue_.empty()) return;
  PendingAppend p = std::move(queue_.front());
  queue_.pop_front();
  if (queue_depth_ != nullptr) {
    queue_depth_->Set(static_cast<int64_t>(queue_.size()));
  }
  append_inflight_ = true;

  txlog::LogRecord record;
  record.type = p.internal ? txlog::RecordType::kChecksum
                           : txlog::RecordType::kData;
  record.writer = options_.writer_id;
  record.request_id = 0;  // stamped by RemoteClient; stable across retries
  record.trace_id = p.trace_id;
  record.payload = std::move(p.payload);
  if (!p.internal) {
    // Advance the chain in submission order (== log order; serialized).
    running_checksum_ = Crc64(running_checksum_, Slice(record.payload));
    if (options_.checksum_every > 0 &&
        ++data_since_checksum_ >= options_.checksum_every) {
      data_since_checksum_ = 0;
      // The checksum record must land right after the data it covers:
      // front of the queue, behind only the append going out now.
      PendingAppend chk;
      chk.internal = true;
      PutFixed64(&chk.payload, running_checksum_);
      queue_.push_front(std::move(chk));
      if (checksum_records_ != nullptr) checksum_records_->Increment();
    }
  }
  const uint64_t seq = p.seq;
  const bool internal = p.internal;
  if (options_.trace != nullptr && record.trace_id != 0) {
    // The span between gate.submit and gate.append.issue is the gate's
    // serialization queue — the head-of-line wait group commit would batch.
    options_.trace->Record(record.trace_id, "gate.append.issue", NowUs(), seq);
  }
  client_->Append(txlog::wire::kUnconditional, std::move(record),
                  [this, seq, internal](const Status& status, uint64_t index) {
                    OnAppendDone(seq, internal, status, index);
                  });
}

void RemoteLogGate::OnAppendDone(uint64_t seq, bool internal,
                                 const Status& status, uint64_t index) {
  loop_.AssertOnLoopThread();
  append_inflight_ = false;
  if (internal) {
    // A failed checksum append just thins the chain; the value travels in
    // the payload, so consumers stay consistent either way.
    Pump();
    return;
  }
  if (!status.ok() && appends_failed_ != nullptr) appends_failed_->Increment();
  {
    MutexLock lock(&done_mu_);
    Completion c;
    c.seq = seq;
    c.status = status;
    c.index = index;
    done_.push_back(std::move(c));
  }
  completed_.fetch_add(1, std::memory_order_acq_rel);
  if (on_complete_) on_complete_();
  Pump();
}

void RemoteLogGate::ScheduleTailPoll() {
  loop_.AssertOnLoopThread();
  if (stopping_.load(std::memory_order_acquire)) return;
  loop_.After(options_.tail_poll_ms, [this] {
    if (stopping_.load(std::memory_order_acquire)) return;
    client_->Tail([this](const Status& status,
                         const txlog::wire::ClientTailResponse& resp) {
      if (status.ok()) {
        if (log_consumers_ != nullptr) {
          log_consumers_->Set(static_cast<int64_t>(resp.consumers));
        }
        if (tail_commit_ != nullptr) {
          tail_commit_->Set(static_cast<int64_t>(resp.commit_index));
        }
      }
      ScheduleTailPoll();
    });
  });
}

}  // namespace memdb::net
