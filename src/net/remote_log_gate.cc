#include "net/remote_log_gate.h"

#include <chrono>
#include <utility>

#include "common/coding.h"
#include "common/crc.h"

namespace memdb::net {

namespace {
uint64_t NowUs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}
}  // namespace

RemoteLogGate::RemoteLogGate(Options options, MetricsRegistry* registry)
    : options_(std::move(options)),
      running_checksum_(options_.checksum_seed) {
  if (registry != nullptr) {
    appends_submitted_ = registry->GetCounter("txlog_gate_appends_total");
    appends_failed_ = registry->GetCounter("txlog_gate_append_failures_total");
    queue_depth_ = registry->GetGauge("txlog_gate_queue_depth");
    checksum_records_ = registry->GetCounter("txlog_checksum_records_total");
    log_consumers_ = registry->GetGauge("repl_log_consumers");
    tail_commit_ = registry->GetGauge("txlog_tail_commit_index");
  }
  // RemoteClient resolves its rpc_* instruments here too — before Start()
  // spawns the loop thread, so registry mutation stays single-threaded.
  txlog::RemoteClient::Options copt;
  copt.writer_id = options_.writer_id;
  copt.rpc_timeout_ms = options_.rpc_timeout_ms;
  copt.backoff_base_ms = options_.backoff_base_ms;
  copt.backoff_cap_ms = options_.backoff_cap_ms;
  copt.max_attempts = options_.max_attempts;
  copt.max_redirects = options_.max_redirects;
  copt.trace = options_.trace;
  client_ = std::make_unique<txlog::RemoteClient>(&loop_, options_.endpoints,
                                                  copt, registry);
}

RemoteLogGate::~RemoteLogGate() { Stop(); }

Status RemoteLogGate::Start(std::function<void()> on_complete) {
  if (options_.endpoints.empty()) {
    return Status::InvalidArgument("remote log gate needs endpoints");
  }
  on_complete_ = std::move(on_complete);
  MEMDB_RETURN_IF_ERROR(loop_.Start());
  started_ = true;
  if (options_.fence) {
    // Learn the chain position before the first append. No gap scan: this
    // writer has appended nothing yet, and its claim to the tail is the
    // shard lease it acquired before the gate started (§4.1).
    loop_.Post([this] { ResolveChain(/*scan_gap=*/false,
                                     /*reissue_after=*/false); });
  }
  if (options_.tail_poll_ms > 0) {
    loop_.Post([this] { ScheduleTailPoll(); });
  }
  return Status::OK();
}

void RemoteLogGate::Stop() {
  if (!started_) return;
  started_ = false;
  stopping_.store(true, std::memory_order_release);
  client_->Shutdown();
  loop_.Stop();
}

uint64_t RemoteLogGate::SubmitAppend(std::string payload, uint64_t trace_id) {
  return SubmitTyped(txlog::RecordType::kData, std::move(payload), trace_id);
}

uint64_t RemoteLogGate::SubmitTyped(txlog::RecordType type,
                                    std::string payload, uint64_t trace_id) {
  const uint64_t seq = next_seq_.fetch_add(1, std::memory_order_relaxed);
  submitted_.fetch_add(1, std::memory_order_acq_rel);
  if (appends_submitted_ != nullptr) appends_submitted_->Increment();
  loop_.Post([this, seq, type, trace_id,
              payload = std::move(payload)]() mutable {
    PendingAppend p;
    p.seq = seq;
    p.trace_id = trace_id;
    p.payload = std::move(payload);
    p.type = type;
    queue_.push_back(std::move(p));
    if (queue_depth_ != nullptr) {
      queue_depth_->Set(static_cast<int64_t>(queue_.size()));
    }
    Pump();
  });
  return seq;
}

std::vector<RemoteLogGate::Completion> RemoteLogGate::DrainCompletions() {
  std::vector<Completion> out;
  MutexLock lock(&done_mu_);
  out.swap(done_);
  return out;
}

void RemoteLogGate::Pump() {
  loop_.AssertOnLoopThread();
  if (append_inflight_ || queue_.empty()) return;
  if (options_.fence) {
    if (fenced_.load(std::memory_order_acquire)) {
      EnterFenced();  // drains whatever queued after the fence landed
      return;
    }
    if (!prev_known_) return;  // ResolveChain() re-pumps once learned
  }
  PendingAppend p = std::move(queue_.front());
  queue_.pop_front();
  if (queue_depth_ != nullptr) {
    queue_depth_->Set(static_cast<int64_t>(queue_.size()));
  }
  append_inflight_ = true;

  txlog::LogRecord record;
  record.type = p.internal ? txlog::RecordType::kChecksum : p.type;
  record.writer = options_.writer_id;
  record.request_id = 0;  // stamped by RemoteClient; stable across retries
  record.trace_id = p.trace_id;
  record.payload = std::move(p.payload);
  if (!p.internal && p.type == txlog::RecordType::kData) {
    // Advance the chain in submission order (== log order; serialized).
    running_checksum_ = Crc64(running_checksum_, Slice(record.payload));
    if (options_.checksum_every > 0 &&
        ++data_since_checksum_ >= options_.checksum_every) {
      data_since_checksum_ = 0;
      // The checksum record must land right after the data it covers:
      // front of the queue, behind only the append going out now.
      PendingAppend chk;
      chk.internal = true;
      PutFixed64(&chk.payload, running_checksum_);
      queue_.push_front(std::move(chk));
      if (checksum_records_ != nullptr) checksum_records_->Increment();
    }
  }
  const uint64_t seq = p.seq;
  const bool internal = p.internal;
  if (options_.trace != nullptr && record.trace_id != 0) {
    // The span between gate.submit and gate.append.issue is the gate's
    // serialization queue — the head-of-line wait group commit would batch.
    options_.trace->Record(record.trace_id, "gate.append.issue", NowUs(), seq);
  }
  inflight_seq_ = seq;
  inflight_internal_ = internal;
  if (options_.fence) inflight_record_ = record;  // kept for re-issue
  const uint64_t prev =
      options_.fence ? prev_index_ : txlog::wire::kUnconditional;
  client_->Append(prev, std::move(record),
                  [this, seq, internal](const Status& status, uint64_t index) {
                    OnAppendDone(seq, internal, status, index);
                  });
}

void RemoteLogGate::CompleteAppend(uint64_t seq, bool internal,
                                   const Status& status, uint64_t index) {
  loop_.AssertOnLoopThread();
  if (internal) return;  // checksum records are invisible to completions
  if (!status.ok() && appends_failed_ != nullptr) appends_failed_->Increment();
  {
    MutexLock lock(&done_mu_);
    Completion c;
    c.seq = seq;
    c.status = status;
    c.index = index;
    done_.push_back(std::move(c));
  }
  completed_.fetch_add(1, std::memory_order_acq_rel);
  if (on_complete_) on_complete_();
}

void RemoteLogGate::OnAppendDone(uint64_t seq, bool internal,
                                 const Status& status, uint64_t index) {
  loop_.AssertOnLoopThread();
  if (options_.fence && !status.ok() &&
      !stopping_.load(std::memory_order_acquire)) {
    if (status.IsConditionFailed()) {
      // Determinate: nothing was appended — the tail moved past our chain
      // position. The gap decides: a foreign record fences us; benign
      // movement (kNoop barriers, our own lease renewals) re-chains and
      // re-issues this same append. append_inflight_ stays true throughout.
      ResolveChain(/*scan_gap=*/true, /*reissue_after=*/true);
      return;
    }
    // Indeterminate (timeout after retries) or unavailable: the record may
    // or may not have landed, so the chain position is lost. Report the
    // failure (the server fails that client), then re-learn the tail WITH
    // a gap scan — a foreign grant could hide in the unobserved window.
    append_inflight_ = false;
    prev_known_ = false;
    CompleteAppend(seq, internal, status, index);
    ResolveChain(/*scan_gap=*/true, /*reissue_after=*/false);
    return;
  }
  append_inflight_ = false;
  if (options_.fence && status.ok()) prev_index_ = index;
  if (internal) {
    // A failed checksum append just thins the chain; the value travels in
    // the payload, so consumers stay consistent either way.
    Pump();
    return;
  }
  CompleteAppend(seq, internal, status, index);
  Pump();
}

void RemoteLogGate::ReissueInflight() {
  loop_.AssertOnLoopThread();
  if (stopping_.load(std::memory_order_acquire)) return;
  // The rejected attempt determinately did not append; a fresh request id
  // keeps the dedup table clean. The running checksum must NOT re-advance —
  // this record's payload was folded in when it first left the queue.
  txlog::LogRecord record = inflight_record_;
  record.request_id = 0;
  const uint64_t seq = inflight_seq_;
  const bool internal = inflight_internal_;
  client_->Append(prev_index_, std::move(record),
                  [this, seq, internal](const Status& status, uint64_t index) {
                    OnAppendDone(seq, internal, status, index);
                  });
}

bool RemoteLogGate::ForeignRecord(const txlog::LogEntry& entry) const {
  const txlog::LogRecord& rec = entry.record;
  // txlogd's own barriers (kNoop) carry writer 0; everything a database
  // node wrote — data, checksum, lease records — carries its writer id.
  if (rec.writer == 0 || rec.writer == options_.writer_id) return false;
  if (rec.type == txlog::RecordType::kLease && !options_.shard_id.empty()) {
    txlog::rpcwire::LeaseGrant grant;
    if (txlog::rpcwire::LeaseGrant::Decode(Slice(rec.payload), &grant) &&
        grant.shard_id != options_.shard_id) {
      return false;  // another shard's lease traffic sharing the log
    }
  }
  return true;
}

void RemoteLogGate::ScanGap(uint64_t from, uint64_t tail,
                            std::function<void()> on_benign) {
  loop_.AssertOnLoopThread();
  if (stopping_.load(std::memory_order_acquire)) return;
  if (from > tail) {
    on_benign();
    return;
  }
  client_->Read(
      from, /*max_count=*/256, /*wait_ms=*/0,
      [this, from, tail, on_benign = std::move(on_benign)](
          const Status& status,
          const txlog::wire::ClientReadResponse& resp) mutable {
        if (stopping_.load(std::memory_order_acquire)) return;
        if (!status.ok()) {
          loop_.After(options_.backoff_base_ms,
                      [this, from, tail, on_benign = std::move(on_benign)]()
                          mutable { ScanGap(from, tail, std::move(on_benign)); });
          return;
        }
        uint64_t next = from;
        if (resp.entries.empty()) {
          if (resp.first_index > from) {
            // The gap prefix was trimmed behind a durable snapshot. Trim
            // only covers committed history old enough to be snapshotted,
            // which cannot include a fencing grant newer than our last
            // successful append: skip past it.
            next = resp.first_index;
          } else {
            // Committed (ResolveChain scans only after commit caught the
            // tail) yet unreadable: transient — retry.
            loop_.After(options_.backoff_base_ms,
                        [this, from, tail, on_benign = std::move(on_benign)]()
                            mutable {
                          ScanGap(from, tail, std::move(on_benign));
                        });
            return;
          }
        }
        for (const txlog::LogEntry& e : resp.entries) {
          if (e.index > tail) break;
          if (ForeignRecord(e)) {
            std::fprintf(stderr,
                         "remote-log-gate: foreign record (writer %llu, "
                         "type %u) at log index %llu — fenced\n",
                         static_cast<unsigned long long>(e.record.writer),
                         static_cast<unsigned>(e.record.type),
                         static_cast<unsigned long long>(e.index));
            fenced_by_.store(e.record.writer, std::memory_order_release);
            EnterFenced();
            return;
          }
          next = e.index + 1;
        }
        if (next > tail) {
          on_benign();
        } else {
          ScanGap(next, tail, std::move(on_benign));
        }
      });
}

void RemoteLogGate::ResolveChain(bool scan_gap, bool reissue_after) {
  loop_.AssertOnLoopThread();
  if (stopping_.load(std::memory_order_acquire)) return;
  if (fenced_.load(std::memory_order_acquire)) {
    EnterFenced();
    return;
  }
  client_->Tail([this, scan_gap, reissue_after](
                    const Status& status,
                    const txlog::wire::ClientTailResponse& resp) {
    if (stopping_.load(std::memory_order_acquire)) return;
    if (!status.ok()) {
      loop_.After(options_.backoff_base_ms, [this, scan_gap, reissue_after] {
        ResolveChain(scan_gap, reissue_after);
      });
      return;
    }
    if (scan_gap && resp.commit_index < resp.last_index) {
      // An uncommitted suffix could hide a foreign lease grant mid-commit.
      // Adopting the tail now would let a zombie append chain PAST that
      // grant — exactly the split-brain fencing must prevent. Wait until
      // the suffix resolves (commits, or is discarded by a leader change),
      // then scan a fully-readable gap.
      loop_.After(options_.backoff_base_ms, [this, scan_gap, reissue_after] {
        ResolveChain(scan_gap, reissue_after);
      });
      return;
    }
    const uint64_t tail = resp.last_index;
    const auto adopt = [this, tail, reissue_after] {
      prev_index_ = tail;
      prev_known_ = true;
      if (reissue_after) {
        ReissueInflight();
      } else {
        Pump();
      }
    };
    if (scan_gap && tail > prev_index_) {
      ScanGap(prev_index_ + 1, tail, adopt);
    } else {
      adopt();
    }
  });
}

void RemoteLogGate::EnterFenced() {
  loop_.AssertOnLoopThread();
  fenced_.store(true, std::memory_order_release);
  const Status fenced =
      Status::ConditionFailed("fenced: this writer lost the shard lease");
  if (append_inflight_) {
    append_inflight_ = false;
    CompleteAppend(inflight_seq_, inflight_internal_, fenced, 0);
  }
  while (!queue_.empty()) {
    PendingAppend p = std::move(queue_.front());
    queue_.pop_front();
    CompleteAppend(p.seq, p.internal, fenced, 0);
  }
  if (queue_depth_ != nullptr) queue_depth_->Set(0);
}

void RemoteLogGate::ScheduleTailPoll() {
  loop_.AssertOnLoopThread();
  if (stopping_.load(std::memory_order_acquire)) return;
  loop_.After(options_.tail_poll_ms, [this] {
    if (stopping_.load(std::memory_order_acquire)) return;
    client_->Tail([this](const Status& status,
                         const txlog::wire::ClientTailResponse& resp) {
      if (status.ok()) {
        if (log_consumers_ != nullptr) {
          log_consumers_->Set(static_cast<int64_t>(resp.consumers));
        }
        if (tail_commit_ != nullptr) {
          tail_commit_->Set(static_cast<int64_t>(resp.commit_index));
        }
      }
      ScheduleTailPoll();
    });
  });
}

}  // namespace memdb::net
