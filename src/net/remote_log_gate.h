// RemoteLogGate: connects the RESP front end to an out-of-process
// transaction-log group (memorydb-txlogd processes) — the real-socket
// version of the §3.1/§3.2 durability gate. The RespServer submits one
// append per write batch and parks the client's reply; the gate reports
// completions (commit or terminal failure) back to the server loop, which
// releases the parked replies in order.
//
// Ordering: appends are strictly serialized — one in flight at a time, in
// submission order — so the log's entry order equals local execution order
// and completions arrive in batch-seq order. Retries, leader redirects,
// and (writer, request_id) dedup live inside txlog::RemoteClient; the gate
// sees each append complete exactly once.
//
// Threading: SubmitAppend/DrainCompletions are called from the RespServer
// loop thread; the append machinery runs on the gate's own rpc::LoopThread;
// the completion queue is the mutex-protected bridge between them. The
// on_complete callback (RespServer's EventLoop::Wakeup) may be invoked from
// the gate thread.

#ifndef MEMDB_NET_REMOTE_LOG_GATE_H_
#define MEMDB_NET_REMOTE_LOG_GATE_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/status.h"
#include "common/sync.h"
#include "common/trace.h"
#include "rpc/loop.h"
#include "txlog/remote_client.h"

namespace memdb::net {

class RemoteLogGate {
 public:
  struct Options {
    std::vector<std::string> endpoints;  // host:port per txlogd replica
    uint64_t writer_id = 1;              // this database node's identity
    uint64_t rpc_timeout_ms = 300;
    uint64_t backoff_base_ms = 20;
    uint64_t backoff_cap_ms = 1000;
    int max_attempts = 8;
    int max_redirects = 4;
    // Inject a kChecksum record carrying the running CRC64 of all data
    // payloads after every N data appends (§7.2.1); 0 = off. Consumers
    // (replicas, the off-box snapshotter) verify the chain as they replay.
    uint64_t checksum_every = 0;
    // Chain basis, from the snapshot the primary restored from (0 = fresh).
    uint64_t checksum_seed = 0;
    // Poll txlog.Tail every N ms for commit index + observable consumer
    // count (repl_log_consumers / txlog_tail_commit_index gauges); 0 = off.
    uint64_t tail_poll_ms = 0;
    // Fenced appends (§4.1): chain every append on the previous one's index
    // (prev_index conditional) instead of kUnconditional. On a stale
    // precondition the gate reads the gap: benign tail movement (kNoop
    // election barriers, this writer's own lease renewals) re-chains and
    // retries; a foreign writer's record — another primary's data append or
    // a lease grant to a different owner — means this node lost the shard
    // lease, and the gate goes terminally fenced: the in-flight append and
    // everything queued fail with ConditionFailed, and the embedding server
    // demotes. Off (default) preserves the pre-failover unconditional path.
    bool fence = false;
    // With fence: kLease records for a different shard are benign (multi-
    // shard logs). Empty matches every shard (single-shard deployments).
    std::string shard_id;
    // Optional write-path tracing: the gate records gate.append.issue when
    // an append actually goes on the wire, and the RemoteClient's channels
    // record rpc.send/rpc.recv. Owned by the embedding RespServer.
    TraceLog* trace = nullptr;
  };

  struct Completion {
    uint64_t seq = 0;    // batch sequence handed out by SubmitAppend
    Status status;       // OK = committed at `index`; else terminal failure
    uint64_t index = 0;  // log index on success
  };

  // Instruments (rpc_* client metrics plus gate counters) are resolved from
  // `registry` at construction — before any loop thread exists.
  RemoteLogGate(Options options, MetricsRegistry* registry);
  ~RemoteLogGate();
  RemoteLogGate(const RemoteLogGate&) = delete;
  RemoteLogGate& operator=(const RemoteLogGate&) = delete;

  // on_complete fires (from the gate thread) whenever a completion is
  // queued; wire it to the RespServer's EventLoop::Wakeup.
  Status Start(std::function<void()> on_complete);
  void Stop();

  // Thread-safe. Queues one durable append carrying `payload` (an encoded
  // effect batch) and returns its batch seq (monotonic from 1). `trace_id`
  // rides the log record and the rpc frame (write-path tracing).
  uint64_t SubmitAppend(std::string payload, uint64_t trace_id);

  // Thread-safe. Like SubmitAppend but with an explicit record type — used
  // for kSlotOwnership flips (§5): the append rides the same serialized,
  // fenced chain as data, so a committed completion proves this writer
  // still held the shard lease when the flip landed. Non-data records do
  // not advance the §7.2.1 checksum chain (replicas skip them too).
  uint64_t SubmitTyped(txlog::RecordType type, std::string payload,
                       uint64_t trace_id);

  // Thread-safe; returns queued completions in batch-seq order.
  std::vector<Completion> DrainCompletions();

  // Appends submitted but not yet completed (thread-safe).
  uint64_t inflight() const {
    return submitted_.load(std::memory_order_acquire) -
           completed_.load(std::memory_order_acquire);
  }
  size_t replica_count() const { return options_.endpoints.size(); }

  // Fence mode only (thread-safe): true once a foreign record proved this
  // node lost the shard lease. Terminal — every subsequent append fails.
  bool fenced() const { return fenced_.load(std::memory_order_acquire); }
  // Writer id of the foreign record that fenced us (0 until fenced, or if
  // fencing came from a ConditionFailed append rather than a gap scan).
  uint64_t fenced_by() const {
    return fenced_by_.load(std::memory_order_acquire);
  }

  // Test access to the underlying client (backoff hook, sync reads).
  txlog::RemoteClient* client() { return client_.get(); }

 private:
  struct PendingAppend {
    uint64_t seq = 0;
    uint64_t trace_id = 0;
    std::string payload;
    txlog::RecordType type = txlog::RecordType::kData;
    // Gate-internal kChecksum record: invisible to SubmitAppend accounting
    // and never reported as a completion.
    bool internal = false;
  };

  // Gate-loop-thread only (loop_.AssertOnLoopThread() on entry).
  void Pump();
  void OnAppendDone(uint64_t seq, bool internal, const Status& status,
                    uint64_t index);
  void ScheduleTailPoll();
  // Fence machinery (gate-loop thread): (re)learn the chain position from
  // txlog.Tail; scan_gap additionally classifies (prev, tail] — required
  // whenever the tail moved while this writer wasn't looking (a stale
  // precondition, or an indeterminate append). Scans wait for the commit
  // index to catch the tail first, so a mid-commit foreign grant cannot be
  // chained past. reissue_after re-sends the still-in-flight record once
  // the chain is re-learned (ConditionFailed path); otherwise Pump resumes.
  void ResolveChain(bool scan_gap, bool reissue_after);
  // Classify [from, tail]; benign -> on_benign(), foreign -> EnterFenced().
  void ScanGap(uint64_t from, uint64_t tail, std::function<void()> on_benign);
  bool ForeignRecord(const txlog::LogEntry& entry) const;
  // Terminal: fail the in-flight append (if any) and everything queued.
  void EnterFenced();
  void CompleteAppend(uint64_t seq, bool internal, const Status& status,
                      uint64_t index);
  void ReissueInflight();

  Options options_;
  rpc::LoopThread loop_;
  std::unique_ptr<txlog::RemoteClient> client_;
  std::function<void()> on_complete_;
  bool started_ = false;

  Counter* appends_submitted_ = nullptr;
  Counter* appends_failed_ = nullptr;
  Gauge* queue_depth_ = nullptr;
  Counter* checksum_records_ = nullptr;
  Gauge* log_consumers_ = nullptr;
  Gauge* tail_commit_ = nullptr;

  // Gate-loop-thread state (thread-affine, no lock; see Pump/OnAppendDone).
  std::deque<PendingAppend> queue_;
  bool append_inflight_ = false;
  // --- fence-mode chain state (gate-loop thread) ---------------------------
  bool prev_known_ = false;    // chain position learned from txlog.Tail
  uint64_t prev_index_ = 0;    // last index this writer observed/appended
  // Copy of the record on the wire, for re-issue after a benign race.
  txlog::LogRecord inflight_record_;
  uint64_t inflight_seq_ = 0;
  bool inflight_internal_ = false;
  std::atomic<bool> fenced_{false};
  std::atomic<uint64_t> fenced_by_{0};
  // Running CRC64 over data payloads in submission order — which equals log
  // order, because appends are strictly serialized.
  uint64_t running_checksum_ = 0;
  uint64_t data_since_checksum_ = 0;
  std::atomic<bool> stopping_{false};

  std::atomic<uint64_t> next_seq_{1};
  std::atomic<uint64_t> submitted_{0};
  std::atomic<uint64_t> completed_{0};

  // Bridge between the gate loop (producer) and the RespServer loop
  // (consumer via DrainCompletions).
  memdb::Mutex done_mu_;
  std::vector<Completion> done_ GUARDED_BY(done_mu_);
};

}  // namespace memdb::net

#endif  // MEMDB_NET_REMOTE_LOG_GATE_H_
