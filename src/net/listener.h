// Listener: a non-blocking TCP accept socket. Binds, listens with a
// configurable backlog, and hands out already-non-blocking connection fds.

#ifndef MEMDB_NET_LISTENER_H_
#define MEMDB_NET_LISTENER_H_

#include <cstdint>
#include <string>

#include "common/status.h"

namespace memdb::net {

class Listener {
 public:
  Listener() = default;
  ~Listener() { Close(); }
  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;

  // Binds `addr:port` (IPv4 dotted quad; port 0 = kernel-assigned) and
  // starts listening. After success, port() reports the bound port.
  Status Open(const std::string& addr, uint16_t port, int backlog);

  // Accepts one pending connection as a non-blocking, TCP_NODELAY fd.
  // Returns -1 when no connection is pending (EAGAIN) or on a transient
  // accept error — callers just retry on the next readiness event.
  int Accept();

  void Close();

  int fd() const { return fd_; }
  uint16_t port() const { return port_; }

 private:
  int fd_ = -1;
  uint16_t port_ = 0;
};

}  // namespace memdb::net

#endif  // MEMDB_NET_LISTENER_H_
