#include "net/server.h"

#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <random>
#include <unordered_set>

#include "common/coding.h"
#include "common/crc.h"
#include "common/trace_export.h"
#include "engine/snapshot.h"
#include "replication/snapshot_store.h"
#include "shard/slot_wire.h"
#include "storage/fs_object_store.h"
#include "txlog/rpc_wire.h"

namespace memdb::net {

namespace {
// Rolling window for the client_recent_max_input_buffer gauge.
constexpr uint64_t kInputHwmWindowMs = 5000;
// Active-expiry cadence and per-cycle victim cap (Redis-like).
constexpr uint64_t kExpireEveryMs = 100;
constexpr size_t kExpirePerCycle = 20;
// Follower entries applied per loop iteration. Bounds how long replay can
// occupy the loop in one go: promotion-scale backlogs apply across many
// iterations (with a zero poll timeout) instead of one monolithic stall
// that would starve reads and lease upkeep (ROADMAP 2a).
constexpr size_t kFollowerApplyChunk = 4096;

// Same wire format as Node::EncodeEffectBatch, so log consumers decode
// either producer: engine version, then per-effect argc + argv.
std::string EncodeEffectBatch(const std::string& engine_version,
                              const std::vector<engine::Argv>& effects) {
  std::string out;
  PutLengthPrefixed(&out, engine_version);
  for (const engine::Argv& argv : effects) {
    PutVarint64(&out, argv.size());
    for (const std::string& a : argv) PutLengthPrefixed(&out, a);
  }
  return out;
}

// Random hex run id (INFO # Server), fresh per process start.
std::string MakeRunId() {
  std::random_device rd;
  static const char kHex[] = "0123456789abcdef";
  std::string id;
  id.reserve(32);
  for (int i = 0; i < 8; ++i) {
    uint32_t w = rd();
    for (int j = 0; j < 4; ++j) {
      id.push_back(kHex[w & 0xF]);
      w >>= 4;
    }
  }
  return id;
}

// SLOWLOG keeps a bounded copy of the command: at most 8 args, each capped
// at 64 bytes (the Redis convention, minus the "... (N more)" marker).
std::vector<std::string> SlowlogArgv(const std::vector<std::string>& argv) {
  std::vector<std::string> out;
  const size_t n = std::min<size_t>(argv.size(), 8);
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    out.push_back(argv[i].size() <= 64 ? argv[i]
                                       : argv[i].substr(0, 61) + "...");
  }
  return out;
}
}  // namespace

#ifndef MEMDB_BUILD_SHA
#define MEMDB_BUILD_SHA "unknown"
#endif

RespServer::RespServer(engine::Engine* engine, ServerConfig config)
    : engine_(engine),
      config_(std::move(config)),
      sampler_(config_.trace_sample_rate) {
  engine_->set_metrics(&metrics_);
  server_info_.pid = static_cast<uint64_t>(::getpid());
  server_info_.run_id = MakeRunId();
  server_info_.start_unix_ms = NowMs();
  server_info_.build_sha = MEMDB_BUILD_SHA;
  connected_clients_ = metrics_.GetGauge("net_connected_clients");
  blocked_clients_ = metrics_.GetGauge("net_blocked_clients");
  recent_max_input_ =
      metrics_.GetGauge("net_client_recent_max_input_buffer");
  maxclients_gauge_ = metrics_.GetGauge("net_maxclients");
  maxclients_gauge_->Set(static_cast<int64_t>(config_.maxclients));
  bytes_in_ = metrics_.GetCounter("net_input_bytes_total");
  bytes_out_ = metrics_.GetCounter("net_output_bytes_total");
  accepted_ = metrics_.GetCounter("net_connections_accepted_total");
  closed_ = metrics_.GetCounter("net_connections_closed_total");
  evicted_ = metrics_.GetCounter("net_evicted_clients_total");
  rejected_ = metrics_.GetCounter("net_rejected_connections_total");
  protocol_errors_ = metrics_.GetCounter("net_protocol_errors_total");
  log_blocked_replies_ = metrics_.GetCounter("txlog_blocked_replies_total");
  batch_commands_ = metrics_.GetHistogram("net_batch_commands");
  durable_ack_us_ = metrics_.GetHistogram("txlog_durable_ack_us");
  repl_applied_gauge_ = metrics_.GetGauge("repl_applied_index");
  repl_entries_applied_ = metrics_.GetCounter("repl_entries_applied_total");
  repl_bytes_applied_ = metrics_.GetCounter("repl_bytes_applied_total");
  repl_checksum_failures_ =
      metrics_.GetCounter("repl_checksum_failures_total");
  if (!config_.replica_of_log.empty()) server_info_.role = "replica";
  server_info_.shard_id = config_.shard_id;
  if (config_.cluster) {
    server_info_.cluster_enabled = true;
    metrics_.SetHelp("cluster_enabled", "1 when hash-slot routing is active");
    metrics_.GetGauge("cluster_enabled")->Set(1);
    metrics_.SetHelp("cluster_slots_owned",
                     "Hash slots this shard currently serves");
    cluster_slots_owned_ = metrics_.GetGauge("cluster_slots_owned");
    metrics_.SetHelp("cluster_slots_migrating",
                     "Slots streaming out to an importing peer");
    cluster_slots_migrating_ = metrics_.GetGauge("cluster_slots_migrating");
    metrics_.SetHelp("cluster_slots_importing",
                     "Slots streaming in from their current owner");
    cluster_slots_importing_ = metrics_.GetGauge("cluster_slots_importing");
    metrics_.SetHelp("cluster_redirects_total",
                     "Keyed commands answered with -MOVED or -ASK");
    cluster_redirects_total_ = metrics_.GetCounter("cluster_redirects_total");
    cluster_redirects_moved_ =
        metrics_.GetCounter("cluster_redirects_total", {{"kind", "moved"}});
    cluster_redirects_ask_ =
        metrics_.GetCounter("cluster_redirects_total", {{"kind", "ask"}});
  }
}

RespServer::~RespServer() { Stop(); }

uint64_t RespServer::NowMs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

uint64_t RespServer::NowUs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

Status RespServer::Start() {
  MEMDB_RETURN_IF_ERROR(loop_.Init());
  if (!config_.replica_of_log.empty() && !config_.txlog_endpoints.empty()) {
    return Status::InvalidArgument(
        "replica_of_log and txlog_endpoints are mutually exclusive");
  }
  if (config_.restore) {
    if (config_.store_dir.empty()) {
      return Status::InvalidArgument("restore requires store_dir");
    }
    replication::RestoreResult rr;
    MEMDB_RETURN_IF_ERROR(RestoreAtStartup(&rr));
    server_info_.applied_index = rr.applied_index;
    repl_running_checksum_ = rr.running_checksum;
    repl_applied_gauge_->Set(static_cast<int64_t>(rr.applied_index));
    std::fprintf(
        stderr,
        "memorydb-server: restored snapshot position %llu, replayed %llu "
        "log entries (%llu checksum records verified), applied index %llu\n",
        static_cast<unsigned long long>(rr.snapshot_position),
        static_cast<unsigned long long>(rr.entries_replayed),
        static_cast<unsigned long long>(rr.checksum_records_verified),
        static_cast<unsigned long long>(rr.applied_index));
  }
  role_ = config_.replica_of_log.empty() ? ServerRole::kPrimary
                                         : ServerRole::kReplica;
  if (config_.failover) {
    if (config_.txlog_endpoints.empty() && config_.replica_of_log.empty()) {
      return Status::InvalidArgument(
          "failover requires txlog_endpoints or replica_of_log");
    }
    failover::FailoverManager::Options mo;
    mo.endpoints = role_ == ServerRole::kReplica ? config_.replica_of_log
                                                 : config_.txlog_endpoints;
    mo.shard_id = config_.shard_id;
    mo.owner_id = config_.txlog_writer_id;
    mo.lease_duration_ms = config_.lease_duration_ms;
    mo.renew_interval_ms = config_.lease_renew_ms;
    mo.probe_interval_ms = config_.failover_probe_ms;
    mo.grace_ms = config_.failover_grace_ms;
    mo.rpc_timeout_ms = config_.txlog_rpc_timeout_ms;
    mo.trace = &trace_;
    failover_ =
        std::make_unique<failover::FailoverManager>(std::move(mo), &metrics_);
    // A primary blocks here until the shard lease is held: serving writes
    // without the lease would defeat the §4.1 fencing contract.
    MEMDB_RETURN_IF_ERROR(failover_->Start(role_ == ServerRole::kPrimary,
                                           [this] { loop_.Wakeup(); },
                                           config_.lease_acquire_wait_ms));
  }
  if (!config_.txlog_endpoints.empty()) {
    RemoteLogGate::Options gopt;
    gopt.endpoints = config_.txlog_endpoints;
    gopt.writer_id = config_.txlog_writer_id;
    gopt.rpc_timeout_ms = config_.txlog_rpc_timeout_ms;
    gopt.backoff_base_ms = config_.txlog_backoff_base_ms;
    gopt.backoff_cap_ms = config_.txlog_backoff_cap_ms;
    gopt.max_attempts = config_.txlog_max_attempts;
    gopt.checksum_every = config_.txlog_checksum_every;
    gopt.checksum_seed = repl_running_checksum_;
    gopt.tail_poll_ms = config_.txlog_tail_poll_ms;
    gopt.fence = config_.failover;
    gopt.shard_id = config_.shard_id;
    gopt.trace = &trace_;
    // Instruments resolve into metrics_ here, before the loop thread exists.
    gate_ = std::make_unique<RemoteLogGate>(std::move(gopt), &metrics_);
    gate_for_drain_.store(gate_.get(), std::memory_order_release);
    MEMDB_RETURN_IF_ERROR(gate_->Start([this] { loop_.Wakeup(); }));
  }
  if (!config_.replica_of_log.empty()) {
    replication::LogFollower::Options fopt;
    fopt.endpoints = config_.replica_of_log;
    fopt.start_index = server_info_.applied_index + 1;
    fopt.poll_wait_ms = config_.replica_poll_wait_ms;
    fopt.rpc_timeout_ms = config_.txlog_rpc_timeout_ms;
    follower_ =
        std::make_unique<replication::LogFollower>(std::move(fopt), &metrics_);
    MEMDB_RETURN_IF_ERROR(follower_->Start([this] { loop_.Wakeup(); }));
  }
  MEMDB_RETURN_IF_ERROR(listener_.Open(config_.bind_address, config_.port,
                                       config_.tcp_backlog));
  MEMDB_RETURN_IF_ERROR(loop_.Add(listener_.fd(), kReadable, &listener_));
  if (config_.cluster) {
    // After the listener opens so a kernel-assigned port can be announced.
    const std::string announce =
        !config_.cluster_announce.empty()
            ? config_.cluster_announce
            : config_.bind_address + ":" + std::to_string(listener_.port());
    slot_table_ = std::make_unique<shard::SlotTable>();
    slot_table_->Init(config_.shard_id, announce);
    std::vector<uint16_t> slots;
    MEMDB_RETURN_IF_ERROR(shard::ParseSlotRanges(
        config_.cluster_slots.empty() ? "0-16383" : config_.cluster_slots,
        &slots));
    slot_table_->AssignLocal(slots);
    for (const ServerConfig::ClusterPeer& peer : config_.cluster_peers) {
      std::vector<uint16_t> peer_slots;
      MEMDB_RETURN_IF_ERROR(
          shard::ParseSlotRanges(peer.slots, &peer_slots));
      slot_table_->AssignRemote(peer_slots, peer.shard_id, peer.endpoint);
    }
    shard::SlotMigrator::Options mopt;
    mopt.batch_keys = config_.migration_batch_keys;
    migrator_ = std::make_unique<shard::SlotMigrator>(
        mopt, slot_table_.get(), static_cast<shard::MigrationHost*>(this),
        &metrics_);
    RefreshClusterGauges();
  }
  const int extra = config_.io_threads > 1 ? config_.io_threads - 1 : 0;
  pool_ = std::make_unique<IoThreadPool>(extra);
  input_hwm_window_start_ms_ = NowMs();
  started_ = true;
  loop_thread_ = std::thread([this] { LoopMain(); });
  return Status::OK();
}

void RespServer::Stop() {
  if (!started_) return;
  // gate_ itself mutates on the loop thread (promotion/demotion); the
  // atomic mirror is the only safe cross-thread view of it.
  RemoteLogGate* drain_gate =
      gate_for_drain_.load(std::memory_order_acquire);
  if (drain_gate != nullptr) {
    // Drain: leave the loop running until every in-flight append completed
    // and every parked reply was released (or the deadline passes — e.g.
    // the log group lost its quorum).
    const uint64_t deadline = NowMs() + config_.shutdown_drain_ms;
    while ((drain_gate->inflight() > 0 ||
            held_atomic_.load(std::memory_order_acquire) > 0) &&
           NowMs() < deadline) {
      loop_.Wakeup();
      // lint:allow-blocking — Stop() runs on the caller thread, not the loop.
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  }
  stop_requested_.store(true, std::memory_order_release);
  loop_.Wakeup();
  if (loop_thread_.joinable()) loop_thread_.join();
  started_ = false;
  // The loop has exited; joining the migration channel worker is safe.
  if (migrator_ != nullptr) migrator_->Shutdown();
  if (failover_ != nullptr) failover_->Stop();
  if (gate_ != nullptr) gate_->Stop();
  if (retired_gate_ != nullptr) retired_gate_->Stop();
  if (follower_ != nullptr) follower_->Stop();
  // The loop has exited: tear down every connection and the accept socket.
  for (auto& [ptr, owned] : connections_) owned->Close();
  connections_.clear();
  listener_.Close();
  pool_.reset();  // joins io threads
  connected_clients_->Set(0);
  if (!config_.trace_file.empty()) {
    // The loop is gone, so the span ring is quiescent; export every
    // surviving span for offline merging (tools/memorydb-trace).
    const std::string jsonl = ExportSpansJsonl(trace_, TraceProcLabel());
    std::FILE* f = std::fopen(config_.trace_file.c_str(), "w");
    if (f != nullptr) {
      std::fwrite(jsonl.data(), 1, jsonl.size(), f);
      std::fclose(f);
    } else {
      std::fprintf(stderr, "memorydb-server: cannot write trace file %s\n",
                   config_.trace_file.c_str());
    }
  }
}

Status RespServer::RestoreAtStartup(replication::RestoreResult* result) {
  // Startup thread; the loop thread does not exist yet, so driving the
  // engine and blocking on *Sync client calls here is safe.
  storage::FsObjectStore store(config_.store_dir);
  MEMDB_RETURN_IF_ERROR(store.Open());
  replication::SnapshotStore snapshots(&store, config_.shard_id);
  MEMDB_RETURN_IF_ERROR(
      replication::RestoreFromStore(&snapshots, engine_, result));
  const std::vector<std::string>& endpoints = !config_.replica_of_log.empty()
                                                  ? config_.replica_of_log
                                                  : config_.txlog_endpoints;
  if (endpoints.empty()) return Status::OK();  // snapshot-only restore
  // Replay the committed tail through a temporary client; the long-lived
  // follower/gate machinery starts after the engine is caught up.
  rpc::LoopThread loop;
  MEMDB_RETURN_IF_ERROR(loop.Start());
  Status replayed;
  {
    txlog::RemoteClient::Options copt;
    copt.rpc_timeout_ms = config_.txlog_rpc_timeout_ms;
    txlog::RemoteClient client(&loop, endpoints, copt, nullptr);
    replayed = replication::ReplayLogTail(&client, engine_, result,
                                          /*target_tail=*/0);
    client.Shutdown();
  }
  loop.Stop();
  return replayed;
}

void RespServer::ApplyFollowerEntries(uint64_t now_ms) {
  loop_affinity_.AssertHeldThread();
  if (follower_ == nullptr) return;
  if (follower_->log_trimmed() && !repl_trim_fatal_reported_) {
    repl_trim_fatal_reported_ = true;
    std::fprintf(stderr,
                 "memorydb-server: transaction log trimmed past applied "
                 "index %llu; restart with --restore to reseed from the "
                 "snapshot store\n",
                 static_cast<unsigned long long>(server_info_.applied_index));
  }
  {
    std::vector<txlog::LogEntry> drained = follower_->DrainEntries();
    for (txlog::LogEntry& e : drained) {
      follower_backlog_.push_back(std::move(e));
    }
  }
  if (follower_backlog_.empty()) return;
  // Apply a bounded chunk per iteration: a promotion-scale backlog must not
  // occupy the loop long enough to starve MaintainFailover (and with it the
  // renew-driven lease horizon checks) — LoopMain polls with a zero timeout
  // while the backlog is non-empty, so replay throughput is unchanged.
  std::vector<txlog::LogEntry> entries;
  const size_t chunk =
      std::min(follower_backlog_.size(), kFollowerApplyChunk);
  entries.reserve(chunk);
  for (size_t i = 0; i < chunk; ++i) {
    entries.push_back(std::move(follower_backlog_.front()));
    follower_backlog_.pop_front();
  }
  uint64_t bytes = 0;
  for (const txlog::LogEntry& e : entries) {
    if (e.record.type == txlog::RecordType::kData) {
      if (!replication::ApplyEffectBatch(engine_, Slice(e.record.payload),
                                         now_ms)) {
        std::fprintf(stderr,
                     "memorydb-server: malformed effect batch at log index "
                     "%llu (skipped)\n",
                     static_cast<unsigned long long>(e.index));
      }
      repl_running_checksum_ =
          Crc64(repl_running_checksum_, Slice(e.record.payload));
      bytes += e.record.payload.size();
      // The primary's trace id rides the log record: a replica's apply spans
      // join the same cross-process chain when trace files are merged.
      trace_.Record(e.record.trace_id, "replica.apply", NowUs(), e.index);
    } else if (e.record.type == txlog::RecordType::kChecksum) {
      Decoder dec(e.record.payload);
      uint64_t expected = 0;
      if (dec.GetFixed64(&expected) && expected != repl_running_checksum_) {
        repl_checksum_failures_->Increment();
        std::fprintf(stderr,
                     "memorydb-server: replication checksum chain mismatch "
                     "at log index %llu\n",
                     static_cast<unsigned long long>(e.index));
      }
    } else if (e.record.type == txlog::RecordType::kLease &&
               failover_ != nullptr) {
      // A committed lease grant/renewal is the holder's liveness heartbeat
      // riding the data plane (§4.2): refresh the monitor's deadline.
      txlog::rpcwire::LeaseGrant grant;
      if (txlog::rpcwire::LeaseGrant::Decode(Slice(e.record.payload),
                                             &grant) &&
          grant.shard_id == config_.shard_id) {
        failover_->NoteLeaseObserved(grant.owner, grant.duration_ms);
      }
    } else if (e.record.type == txlog::RecordType::kSlotOwnership &&
               slot_table_ != nullptr) {
      // A committed slot flip (§5). Epoch-guarded, so replay after restart
      // or out-of-order observation cannot roll the table backwards. Slot
      // records ride outside the §7.2.1 data checksum chain.
      shard::SlotOwnershipRecord rec;
      if (shard::SlotOwnershipRecord::Decode(Slice(e.record.payload), &rec)) {
        slot_table_->ApplyOwnership(rec.slot, rec.epoch, rec.to_shard,
                                    rec.to_endpoint);
        RefreshClusterGauges();
      }
    }
    server_info_.applied_index = e.index;
  }
  repl_entries_applied_->Increment(entries.size());
  repl_bytes_applied_->Increment(bytes);
  repl_applied_gauge_->Set(static_cast<int64_t>(server_info_.applied_index));
  follower_->NoteApplied(server_info_.applied_index);
}

void RespServer::MaintainFailover(uint64_t now_ms) {
  loop_affinity_.AssertHeldThread();
  (void)now_ms;
  if (failover_ == nullptr) return;
  const failover::FailoverState fs = failover_->state();
  switch (role_) {
    case ServerRole::kReplica:
      if (fs == failover::FailoverState::kReplaying) {
        role_ = ServerRole::kPromoting;
        std::fprintf(
            stderr,
            "memorydb-server: shard lease won at log index %llu; replaying "
            "the committed tail before serving writes\n",
            static_cast<unsigned long long>(failover_->replay_target()));
      }
      break;
    case ServerRole::kPromoting: {
      if (fs == failover::FailoverState::kMonitoring ||
          fs == failover::FailoverState::kElecting) {
        // Lost the lease again before replay finished: back to replica.
        role_ = ServerRole::kReplica;
        break;
      }
      if (fs != failover::FailoverState::kReplaying) break;
      // Promotion gates on the replay target: every append the old primary
      // could have acked committed strictly below our grant index, so once
      // applied_index reaches it, no acked write can be missing (§4.1).
      if (server_info_.applied_index >= failover_->replay_target()) {
        PromoteToPrimary();
      }
      break;
    }
    case ServerRole::kPrimary:
      // Either signal proves the lease is gone: a rejected renewal, or the
      // fenced gate hitting a foreign record in its append chain.
      if (fs == failover::FailoverState::kFenced ||
          (gate_ != nullptr && gate_->fenced())) {
        if (fs != failover::FailoverState::kFenced) {
          failover_->NoteExternallyFenced();
        }
        DemoteFenced();
      }
      break;
    case ServerRole::kFenced:
      break;
  }
}

void RespServer::PromoteToPrimary() {
  loop_affinity_.AssertHeldThread();
  failover_->NoteReplayReached();
  // Tear down the follower: entries past the replay target are only lease
  // renewals (no data record can commit above our grant — fencing), so
  // dropping the undrained feed loses nothing.
  // lint:allow-blocking — Stop joins the follower's loop thread; promotion
  // is a once-per-failover event and the stall is part of measured MTTR.
  follower_->Stop();
  follower_.reset();
  // Whatever the chunked applier still holds past the replay target can
  // only be lease renewals (no data record commits above our grant).
  follower_backlog_.clear();
  RemoteLogGate::Options gopt;
  gopt.endpoints = config_.replica_of_log;
  gopt.writer_id = config_.txlog_writer_id;
  gopt.rpc_timeout_ms = config_.txlog_rpc_timeout_ms;
  gopt.backoff_base_ms = config_.txlog_backoff_base_ms;
  gopt.backoff_cap_ms = config_.txlog_backoff_cap_ms;
  gopt.max_attempts = config_.txlog_max_attempts;
  gopt.checksum_every = config_.txlog_checksum_every;
  // The replica-side chain verified through applied_index seeds the
  // primary-side chain: the §7.2.1 checksum survives the failover.
  gopt.checksum_seed = repl_running_checksum_;
  gopt.tail_poll_ms = config_.txlog_tail_poll_ms;
  gopt.fence = true;
  gopt.shard_id = config_.shard_id;
  gopt.trace = &trace_;
  gate_ = std::make_unique<RemoteLogGate>(std::move(gopt), &metrics_);
  gate_for_drain_.store(gate_.get(), std::memory_order_release);
  const Status st = gate_->Start([this] { loop_.Wakeup(); });
  if (!st.ok()) {
    // Endpoints are non-empty (we were following them), so this is a local
    // resource failure; without a gate this node cannot serve writes.
    std::fprintf(stderr, "memorydb-server: promotion gate start failed: %s\n",
                 st.ToString().c_str());
    gate_for_drain_.store(nullptr, std::memory_order_release);
    gate_.reset();
    return;
  }
  role_ = ServerRole::kPrimary;
  server_info_.role = "master";
  failover_->ConfirmPromoted();
  std::fprintf(stderr,
               "memorydb-server: promoted to primary (applied index %llu)\n",
               static_cast<unsigned long long>(server_info_.applied_index));
}

void RespServer::DemoteFenced() {
  loop_affinity_.AssertHeldThread();
  role_ = ServerRole::kFenced;
  server_info_.role = "fenced";
  // Every parked reply waits on durability that can never be acknowledged
  // by this node again: fail them and hang up, Redis-style.
  for (auto& [c, q] : held_) {
    held_count_ -= q.size();
    q.clear();
    c->QueueOutput(
        "-READONLY Fenced: this node lost its primary lease; reconnect to "
        "the new primary.\r\n");
  }
  held_.clear();
  // Hang up on EVERY client, not just the parked ones: a client that saw
  // this node ack a write must not keep reading from it as if it were still
  // the primary — its next read here would be stale the moment the new
  // primary acks anything. Forcing a reconnect forces rediscovery.
  for (auto& [ptr, conn] : connections_) {
    ptr->set_state(Connection::State::kClosing);
  }
  held_atomic_.store(held_count_, std::memory_order_release);
  key_hazards_.clear();
  conn_last_write_seq_.clear();
  pending_writes_.clear();
  failed_.clear();
  // Retire the gate: stop its loop now (cuts background retries), destroy
  // it with the server. gate_ null makes every write path read-only.
  gate_for_drain_.store(nullptr, std::memory_order_release);
  if (gate_ != nullptr) {
    // lint:allow-blocking — joins the gate loop once, on the terminal
    // demotion path; the node is already read-only.
    gate_->Stop();
    retired_gate_ = std::move(gate_);
  }
  uint64_t holder = failover_->observed_holder();
  if (holder == 0 && retired_gate_ != nullptr) {
    holder = retired_gate_->fenced_by();
  }
  std::fprintf(stderr,
               "memorydb-server: fenced — shard lease lost to writer %llu; "
               "serving reads only\n",
               static_cast<unsigned long long>(holder));
}

void RespServer::AcceptPending() {
  loop_affinity_.AssertHeldThread();
  for (;;) {
    const int fd = listener_.Accept();
    if (fd < 0) return;
    if (connections_.size() >= config_.maxclients) {
      // Same shape Redis uses: tell the client why, then hang up.
      static const char kErr[] = "-ERR max number of clients reached\r\n";
      [[maybe_unused]] ssize_t n =
          ::send(fd, kErr, sizeof(kErr) - 1, MSG_NOSIGNAL);
      ::close(fd);
      rejected_->Increment();
      continue;
    }
    auto conn =
        std::make_unique<Connection>(fd, next_conn_id_++, config_.decode);
    Connection* raw = conn.get();
    if (!loop_.Add(fd, kReadable, raw).ok()) {
      continue;  // conn destructor closes the fd
    }
    connections_.emplace(raw, std::move(conn));
    accepted_->Increment();
    connected_clients_->Set(static_cast<int64_t>(connections_.size()));
  }
}

void RespServer::Hold(Connection* c, HeldReply reply) {
  loop_affinity_.AssertHeldThread();
  held_[c].push_back(std::move(reply));
  ++held_count_;
  held_atomic_.store(held_count_, std::memory_order_release);
  log_blocked_replies_->Increment();
}

uint64_t RespServer::HazardFor(const engine::CommandSpec* spec,
                               const std::vector<std::string>& argv) const {
  if (spec == nullptr || spec->key_step <= 0 || key_hazards_.empty()) {
    return 0;
  }
  const int argc = static_cast<int>(argv.size());
  int last = spec->last_key >= 0 ? spec->last_key : argc + spec->last_key;
  if (last >= argc) last = argc - 1;
  uint64_t hazard = 0;
  for (int i = spec->first_key; i > 0 && i <= last; i += spec->key_step) {
    const auto it = key_hazards_.find(argv[static_cast<size_t>(i)]);
    if (it != key_hazards_.end() && it->second > hazard) {
      hazard = it->second;
    }
  }
  return hazard;
}

void RespServer::ExecutePending(Connection* c, uint64_t now_ms) {
  // The engine is single-threaded by construction: only the loop thread may
  // dispatch into it.
  loop_affinity_.AssertHeldThread();
  engine::ExecContext ctx;
  ctx.now_ms = now_ms;
  ctx.role = role_ == ServerRole::kPrimary ? engine::Role::kPrimary
                                           : engine::Role::kReplicaRead;
  ctx.rng = &engine_->rng();
  ctx.server = &server_info_;
  std::string encoded;
  for (const std::vector<std::string>& argv : c->pending()) {
    if (c->state() != Connection::State::kOpen) break;
    const std::string name =
        argv.empty() ? std::string() : engine::Engine::Upper(argv[0]);
    if (name == "QUIT") {
      c->QueueOutput("+OK\r\n");
      c->set_state(Connection::State::kClosing);
      break;
    }
    // Admin-plane: answered from loop state, never parked behind the gate —
    // a scrape must not wait on quorum while diagnosing a stalled quorum.
    if (name == "TRACE") {
      HandleTraceCommand(c, argv);
      continue;
    }
    if (name == "SLOWLOG") {
      HandleSlowlogCommand(c, argv);
      continue;
    }
    if (name == "CLUSTER") {
      HandleClusterCommand(c, argv);
      continue;
    }
    if (name == "ASKING") {
      if (slot_table_ == nullptr) {
        c->QueueOutput("-ERR This instance has cluster support disabled\r\n");
      } else {
        c->asking = true;
        c->QueueOutput("+OK\r\n");
      }
      continue;
    }
    // One-shot: ASKING covers exactly the next command, used or not.
    const bool asking = c->asking;
    c->asking = false;
    if (slot_table_ != nullptr &&
        RouteClusterCommand(c, engine_->FindCommand(name), argv, asking)) {
      continue;
    }
    if (role_ != ServerRole::kPrimary) {
      if (name == "WAIT") {
        // Not the serving primary — there are no acks of ours to count.
        // Answer 0 (Redis replica semantics); after promotion completes the
        // gate path below reports the new primary's real quorum size, never
        // a stale replica answer.
        c->QueueOutput(":0\r\n");
        continue;
      }
      const engine::CommandSpec* wspec = engine_->FindCommand(name);
      if (wspec != nullptr && wspec->is_write) {
        // A promoting node must refuse writes until replay reaches the
        // fenced tail — acking before that could order a new write ahead
        // of an old acked one it hasn't applied yet.
        const char* msg =
            role_ == ServerRole::kPromoting
                ? "-READONLY Promotion in progress; the committed log tail "
                  "is still replaying.\r\n"
            : role_ == ServerRole::kFenced
                ? "-READONLY Fenced: this node lost its primary lease.\r\n"
                : "-READONLY You can't write against a read only replica.\r\n";
        c->QueueOutput(msg);
        continue;
      }
    } else if (failover_ != nullptr && !failover_->LeaseValidNow()) {
      // §4.2: a primary serves linearizable reads without a log round-trip
      // only while its lease is provably unexpired. With the horizon passed
      // (renewals stalled, or this process was frozen and resumed believing
      // it still holds the lease), a data read here could be stale the
      // moment a successor is granted the lease — refuse it. Writes stay
      // allowed: they are fenced by the conditional append chain itself.
      const engine::CommandSpec* rspec = engine_->FindCommand(name);
      if (rspec != nullptr && !rspec->is_write && rspec->first_key > 0) {
        c->QueueOutput(
            "-READONLY Lease expired; this node cannot serve linearizable "
            "reads until it renews.\r\n");
        continue;
      }
    }
    // The connection's place in the reply order: a reply can only be sent
    // directly if nothing older is still parked on this connection.
    const auto held_it = held_.find(c);
    const bool queue_behind =
        held_it != held_.end() && !held_it->second.empty();

    if (gate_ != nullptr && name == "WAIT") {
      // WAIT semantics over the remote log: by the time this reply is
      // released, every prior write of this connection has committed on a
      // majority of log replicas — report that quorum size (§3).
      encoded.clear();
      resp::Value::Integer(
          static_cast<int64_t>(gate_->replica_count() / 2 + 1))
          .EncodeTo(&encoded);
      const auto seq_it = conn_last_write_seq_.find(c);
      const uint64_t wait_seq =
          seq_it != conn_last_write_seq_.end() ? seq_it->second : 0;
      if (wait_seq > done_floor_ || queue_behind) {
        HeldReply h;
        h.seq = queue_behind ? std::max(wait_seq, held_it->second.back().seq)
                             : wait_seq;
        h.kind = HeldReply::Kind::kWait;
        h.encoded = encoded;
        Hold(c, std::move(h));
      } else {
        c->QueueOutput(encoded);
      }
      continue;
    }

    const engine::CommandSpec* spec =
        argv.empty() ? nullptr : engine_->FindCommand(argv[0]);
    const auto t0 = std::chrono::steady_clock::now();
    const resp::Value reply = engine_->Execute(argv, &ctx);
    if (spec != nullptr) {
      Histogram*& h = latency_cache_[spec];
      if (h == nullptr) {
        h = metrics_.GetHistogram("cmd_latency_us", {{"cmd", spec->name}});
      }
      h->Record(static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::microseconds>(
              std::chrono::steady_clock::now() - t0)
              .count()));
    }
    encoded.clear();
    reply.EncodeTo(&encoded);

    if (gate_ == nullptr) {
      // No transaction log attached; the effect stream is dropped and the
      // reply returns immediately (the pre-durable standalone server).
      c->QueueOutput(encoded);
    } else if (!ctx.effects.empty()) {
      // Durable write: append the effect batch to the remote log and park
      // the reply until a majority of AZ replicas persisted it (§3.1).
      const uint64_t receive_us = NowUs();
      const uint64_t trace_id =
          sampler_.Sample()
              ? MakeTraceId(config_.txlog_writer_id, next_trace_id_++)
              : 0;
      trace_.Record(trace_id, "cmd.receive", receive_us, c->id());
      const uint64_t seq = gate_->SubmitAppend(
          EncodeEffectBatch(server_info_.engine_version, ctx.effects),
          trace_id);
      const uint64_t submit_us = NowUs();
      trace_.Record(trace_id, "gate.submit", submit_us, seq);
      PendingWrite pw;
      pw.trace_id = trace_id;
      pw.receive_us = receive_us;
      pw.submit_us = submit_us;
      pw.argv = SlowlogArgv(argv);
      pending_writes_[seq] = std::move(pw);
      for (const std::string& key : ctx.dirty_keys) {
        key_hazards_[key] = seq;
      }
      conn_last_write_seq_[c] = seq;
      HeldReply h;
      h.seq = seq;
      h.kind = HeldReply::Kind::kWrite;
      h.encoded = encoded;
      Hold(c, std::move(h));
    } else {
      // Read (or effect-less write): §3.2 — the value may exist locally
      // but not yet be durable; park the reply behind the hazarding append
      // so no client observes a value that could still be lost.
      const uint64_t hazard = HazardFor(spec, argv);
      if (hazard > done_floor_ || queue_behind) {
        if (hazard > done_floor_) {
          // Attribute the read's wait to the hazarding write's trace: the
          // §3.2 consistency stall is part of that write's latency story.
          const auto hz = pending_writes_.find(hazard);
          if (hz != pending_writes_.end()) {
            trace_.Record(hz->second.trace_id, "hazard.defer", NowUs(),
                          c->id());
          }
        }
        HeldReply h;
        h.seq = queue_behind ? std::max(hazard, held_it->second.back().seq)
                             : hazard;
        h.kind = HeldReply::Kind::kRead;
        h.encoded = encoded;
        Hold(c, std::move(h));
      } else {
        c->QueueOutput(encoded);
      }
    }
    ctx.effects.clear();
    ctx.dirty_keys.clear();
    if (c->output_pending() > config_.output_hard_bytes) {
      break;  // hard limit: housekeeping evicts before any flush
    }
  }
  c->pending().clear();
}

void RespServer::ProcessLogCompletions(std::vector<Connection*>* released) {
  loop_affinity_.AssertHeldThread();
  if (gate_ == nullptr) return;
  const std::vector<RemoteLogGate::Completion> done =
      gate_->DrainCompletions();
  if (done.empty()) return;
  const uint64_t now_us = NowUs();
  for (const RemoteLogGate::Completion& comp : done) {
    done_floor_ = comp.seq;  // the gate completes appends in seq order
    if (migrator_ != nullptr &&
        migrator_->OnGateCompletion(comp.seq, comp.status.ok())) {
      continue;  // migration-internal append: no client reply parked on it
    }
    const auto pw = pending_writes_.find(comp.seq);
    if (pw != pending_writes_.end()) {
      trace_.Record(pw->second.trace_id,
                    comp.status.ok() ? "append.ack" : "append.fail", now_us,
                    comp.index);
      if (comp.status.ok()) {
        durable_ack_us_->Record(now_us - pw->second.submit_us);
      }
      // The entry stays until the reply releases: reply.release and the
      // SLOWLOG duration still need its stamps.
    }
    if (!comp.status.ok()) {
      failed_.insert(comp.seq);
      std::fprintf(stderr,
                   "memorydb-server: transaction log append %llu failed: %s\n",
                   static_cast<unsigned long long>(comp.seq),
                   comp.status.ToString().c_str());
    }
  }
  // Hazards at or below the floor are resolved.
  for (auto it = key_hazards_.begin(); it != key_hazards_.end();) {
    it = it->second <= done_floor_ ? key_hazards_.erase(it) : ++it;
  }
  // Release parked replies in per-connection order up to the floor.
  for (auto it = held_.begin(); it != held_.end();) {
    Connection* c = it->first;
    std::deque<HeldReply>& q = it->second;
    bool progressed = false;
    while (!q.empty() && q.front().seq <= done_floor_) {
      HeldReply h = std::move(q.front());
      q.pop_front();
      --held_count_;
      if (h.kind == HeldReply::Kind::kWrite && failed_.count(h.seq) > 0) {
        // The write is applied locally but not in the durable log: local
        // state has diverged. A production primary would demote and resync
        // from the log (§3.1); here the client learns its write was not
        // made durable and the connection is closed.
        c->QueueOutput("-ERR transaction log unavailable\r\n");
        c->set_state(Connection::State::kClosing);
        held_count_ -= q.size();
        q.clear();
      } else {
        c->QueueOutput(h.encoded);
        if (h.kind == HeldReply::Kind::kWrite) {
          const auto pw = pending_writes_.find(h.seq);
          if (pw != pending_writes_.end()) {
            const uint64_t release_us = NowUs();
            trace_.Record(pw->second.trace_id, "reply.release", release_us,
                          h.seq);
            const uint64_t duration_us = release_us - pw->second.receive_us;
            if (duration_us >= config_.slowlog_slower_than_us) {
              SlowlogEntry e;
              e.id = slowlog_next_id_++;
              e.unix_ts = NowMs() / 1000;
              e.duration_us = duration_us;
              e.argv = std::move(pw->second.argv);
              slowlog_.push_front(std::move(e));
              if (slowlog_.size() > config_.slowlog_max_len) {
                slowlog_.pop_back();
              }
            }
          }
        }
      }
      progressed = true;
    }
    if (progressed) released->push_back(c);
    it = q.empty() ? held_.erase(it) : ++it;
  }
  failed_.erase(failed_.begin(), failed_.upper_bound(done_floor_));
  // Writes at or below the floor have released (or failed) their replies.
  for (auto it = pending_writes_.begin(); it != pending_writes_.end();) {
    it = it->first <= done_floor_ ? pending_writes_.erase(it) : ++it;
  }
  held_atomic_.store(held_count_, std::memory_order_release);
}

void RespServer::DispatchBatch(const std::vector<Connection*>& readable,
                               uint64_t now_ms) {
  loop_affinity_.AssertHeldThread();
  size_t batch = 0;
  for (Connection* c : readable) {
    bytes_in_->Increment(c->TakeBytesIn());
    const size_t hwm = c->TakeMaxInputBuffered();
    if (hwm > input_hwm_cur_) input_hwm_cur_ = hwm;
    batch += c->pending().size();
  }
  if (batch > 0) batch_commands_->Record(static_cast<uint64_t>(batch));
  for (Connection* c : readable) {
    if (!c->pending().empty()) ExecutePending(c, now_ms);
    if (!c->protocol_error().empty() && !c->protocol_error_reported()) {
      c->QueueOutput("-ERR Protocol error: " + c->protocol_error() +
                     "\r\n");
      c->set_protocol_error_reported();
      c->set_state(Connection::State::kClosing);
      protocol_errors_->Increment();
    }
  }
}

void RespServer::Housekeeping(uint64_t now_ms) {
  loop_affinity_.AssertHeldThread();
  // Client-output-buffer limits, EPOLLOUT arming, and reaping. The scan
  // covers every connection because a stalled client never raises another
  // readiness event on its own.
  std::vector<Connection*> doomed;
  for (auto& [raw, owned] : connections_) {
    Connection* c = raw;
    if (c->state() == Connection::State::kClosed) {
      doomed.push_back(c);
      continue;
    }
    const size_t out = c->output_pending();
    if (out > config_.output_hard_bytes ||
        c->input_buffered() > config_.input_hard_bytes) {
      evicted_->Increment();
      doomed.push_back(c);
      continue;
    }
    if (out > config_.output_soft_bytes) {
      if (c->soft_over_since_ms == 0) {
        c->soft_over_since_ms = now_ms;
      } else if (now_ms - c->soft_over_since_ms >= config_.output_soft_ms) {
        evicted_->Increment();
        doomed.push_back(c);
        continue;
      }
    } else {
      c->soft_over_since_ms = 0;
    }
    // A connection with parked replies is not idle: keep it open until the
    // log catches up, even if nothing is buffered for output yet.
    const bool parked = held_.count(c) > 0;
    if (c->peer_closed() && out == 0) {
      doomed.push_back(c);
      continue;
    }
    if (c->state() == Connection::State::kClosing && out == 0 && !parked) {
      doomed.push_back(c);
      continue;
    }
    const bool want = out > 0;
    if (want != c->want_write) {
      c->want_write = want;
      Status mod = loop_.Modify(
          c->fd(), want ? (kReadable | kWritable) : kReadable, c);
      if (!mod.ok()) {
        // The kernel's interest set no longer matches want_write; this
        // connection would never see another EPOLLOUT and its output would
        // stall forever. Drop it instead of serving a wedged client.
        doomed.push_back(c);
      }
    }
  }
  for (Connection* c : doomed) CloseConnection(c);

  // client_recent_max_input_buffer: max over the current and previous
  // windows, so the gauge reflects "recent" peaks rather than all-time.
  if (now_ms - input_hwm_window_start_ms_ >= kInputHwmWindowMs) {
    input_hwm_prev_ = input_hwm_cur_;
    input_hwm_cur_ = 0;
    input_hwm_window_start_ms_ = now_ms;
  }
  recent_max_input_->Set(static_cast<int64_t>(
      input_hwm_cur_ > input_hwm_prev_ ? input_hwm_cur_ : input_hwm_prev_));
  // Clients whose replies are parked behind the durability gate (§3.2).
  blocked_clients_->Set(static_cast<int64_t>(held_.size()));

  // Replicas never expire keys themselves; they apply the primary's DEL
  // effects from the log (§2.1), keeping both sides bit-identical. Same
  // for promoting/fenced nodes: only the serving primary expires.
  if (role_ == ServerRole::kPrimary &&
      now_ms - last_expire_ms_ >= kExpireEveryMs) {
    last_expire_ms_ = now_ms;
    engine::ExecContext ctx;
    ctx.now_ms = now_ms;
    ctx.role = engine::Role::kPrimary;
    ctx.rng = &engine_->rng();
    engine_->ActiveExpire(&ctx, kExpirePerCycle);
    if (gate_ != nullptr && !ctx.effects.empty()) {
      // The cycle's DELs are themselves a logged write (§2.1): replicas
      // never self-expire, so without this append a log-fed replica or a
      // --restore node would keep every actively-expired key forever. No
      // reply is parked on it and no key hazard is taken — unlike an
      // unacknowledged SET, absence is reproducible from time alone.
      gate_->SubmitAppend(
          EncodeEffectBatch(server_info_.engine_version, ctx.effects),
          /*trace_id=*/0);
    }
  }
}

void RespServer::CloseConnection(Connection* c) {
  loop_affinity_.AssertHeldThread();
  const auto held_it = held_.find(c);
  if (held_it != held_.end()) {
    held_count_ -= held_it->second.size();
    held_.erase(held_it);
    held_atomic_.store(held_count_, std::memory_order_release);
  }
  conn_last_write_seq_.erase(c);
  loop_.Remove(c->fd());
  c->Close();
  connections_.erase(c);
  closed_->Increment();
  connected_clients_->Set(static_cast<int64_t>(connections_.size()));
}

void RespServer::LoopMain() {
  loop_affinity_.BindToCurrentThread();
  std::vector<Event> events;
  std::vector<Connection*> readable;
  std::vector<Connection*> flushable;
  std::vector<Connection*> released;
  std::unordered_set<Connection*> newly_flushable;
  while (!stop_requested_.load(std::memory_order_acquire)) {
    // A pending replay backlog means more work is already here: poll
    // without sleeping so the next chunk applies immediately.
    loop_.Poll(follower_backlog_.empty() ? config_.loop_timeout_ms : 0,
               &events);
    if (stop_requested_.load(std::memory_order_acquire)) break;

    readable.clear();
    flushable.clear();
    released.clear();
    newly_flushable.clear();
    bool accept_ready = false;
    for (const Event& ev : events) {
      if (ev.tag == &listener_) {
        accept_ready = true;
        continue;
      }
      Connection* c = static_cast<Connection*>(ev.tag);
      // kClosed surfaces through read() on the next drain; treat as read-
      // ready so the hangup is observed promptly.
      if (ev.events & (kReadable | kClosed)) readable.push_back(c);
      if (ev.events & kWritable) flushable.push_back(c);
    }
    events.clear();
    if (accept_ready) AcceptPending();

    // Stage 1 (io threads): drain sockets and decode commands.
    pool_->Run(readable.size(),
               [&](size_t i) { readable[i]->ReadAndParse(); });

    // Stage 2 (loop thread): replica mode first applies committed log
    // entries the follower fetched, so this cycle's reads see them; then
    // one batched dispatch into the engine.
    const uint64_t now_ms = NowMs();
    ApplyFollowerEntries(now_ms);
    MaintainFailover(now_ms);
    DispatchBatch(readable, now_ms);

    // Stage 3 (loop thread): release replies whose log appends committed.
    ProcessLogCompletions(&released);
    if (migrator_ != nullptr && migrator_->active()) {
      migrator_->Pump();
      RefreshClusterGauges();
    }

    // Stage 4 (io threads): flush whatever has output. Readable conns may
    // have just produced replies, released conns just gained them, and
    // EPOLLOUT-ready conns have leftovers. A connection must be flushed by
    // exactly one io thread, hence the dedup set (EPOLLOUT conns have
    // want_write set, so the !want_write check already excludes them).
    const auto consider = [&](Connection* c) {
      if (c->output_pending() > 0 &&
          c->output_pending() <= config_.output_hard_bytes &&
          !c->want_write && newly_flushable.insert(c).second) {
        flushable.push_back(c);
      }
    };
    for (Connection* c : readable) consider(c);
    for (Connection* c : released) consider(c);
    pool_->Run(flushable.size(),
               [&](size_t i) { flushable[i]->FlushWrites(); });
    for (Connection* c : flushable) {
      bytes_out_->Increment(c->TakeBytesOut());
    }

    Housekeeping(now_ms);
  }
}

std::string RespServer::TraceProcLabel() const {
  if (!config_.trace_proc.empty()) return config_.trace_proc;
  return role_ == ServerRole::kReplica || role_ == ServerRole::kPromoting
             ? "replica"
             : "server";
}

void RespServer::HandleTraceCommand(Connection* c,
                                    const std::vector<std::string>& argv) {
  loop_affinity_.AssertHeldThread();
  const std::string sub =
      argv.size() > 1 ? engine::Engine::Upper(argv[1]) : std::string();
  std::string encoded;
  if (sub == "DUMP" && argv.size() == 2) {
    // One JSONL line per span, same format as the --trace-file export, so
    // live scrapes and post-shutdown files merge interchangeably.
    resp::Value::Bulk(ExportSpansJsonl(trace_, TraceProcLabel()))
        .EncodeTo(&encoded);
  } else if (sub == "RESET" && argv.size() == 2) {
    trace_.Clear();
    encoded = "+OK\r\n";
  } else {
    encoded = "-ERR unknown TRACE subcommand; try TRACE DUMP | TRACE RESET\r\n";
  }
  c->QueueOutput(encoded);
}

void RespServer::HandleSlowlogCommand(Connection* c,
                                      const std::vector<std::string>& argv) {
  loop_affinity_.AssertHeldThread();
  const std::string sub =
      argv.size() > 1 ? engine::Engine::Upper(argv[1]) : std::string();
  std::string encoded;
  if (sub == "GET" && argv.size() <= 3) {
    size_t limit = 10;  // Redis default
    if (argv.size() == 3) {
      char* end = nullptr;
      const long long v = std::strtoll(argv[2].c_str(), &end, 10);
      if (end == argv[2].c_str() || *end != '\0') {
        c->QueueOutput("-ERR value is not an integer or out of range\r\n");
        return;
      }
      limit = v < 0 ? slowlog_.size() : static_cast<size_t>(v);
    }
    std::vector<resp::Value> entries;
    for (const SlowlogEntry& e : slowlog_) {
      if (entries.size() >= limit) break;
      std::vector<resp::Value> fields;
      fields.push_back(resp::Value::Integer(static_cast<int64_t>(e.id)));
      fields.push_back(resp::Value::Integer(static_cast<int64_t>(e.unix_ts)));
      fields.push_back(
          resp::Value::Integer(static_cast<int64_t>(e.duration_us)));
      std::vector<resp::Value> args;
      args.reserve(e.argv.size());
      for (const std::string& a : e.argv) args.push_back(resp::Value::Bulk(a));
      fields.push_back(resp::Value::Array(std::move(args)));
      entries.push_back(resp::Value::Array(std::move(fields)));
    }
    resp::Value::Array(std::move(entries)).EncodeTo(&encoded);
  } else if (sub == "LEN" && argv.size() == 2) {
    resp::Value::Integer(static_cast<int64_t>(slowlog_.size()))
        .EncodeTo(&encoded);
  } else if (sub == "RESET" && argv.size() == 2) {
    slowlog_.clear();
    encoded = "+OK\r\n";
  } else {
    encoded =
        "-ERR unknown SLOWLOG subcommand; try SLOWLOG GET [count] | "
        "SLOWLOG LEN | SLOWLOG RESET\r\n";
  }
  c->QueueOutput(encoded);
}

bool RespServer::RouteClusterCommand(Connection* c,
                                     const engine::CommandSpec* spec,
                                     const std::vector<std::string>& argv,
                                     bool asking) {
  loop_affinity_.AssertHeldThread();
  if (spec == nullptr || spec->first_key <= 0) return false;  // keyless
  const std::vector<std::string> keys =
      engine::Engine::CommandKeys(*spec, argv);
  if (keys.empty()) return false;
  const uint16_t slot = KeyHashSlot(Slice(keys[0]));
  for (size_t i = 1; i < keys.size(); ++i) {
    if (KeyHashSlot(Slice(keys[i])) != slot) {
      c->QueueOutput(
          "-CROSSSLOT Keys in request don't hash to the same slot\r\n");
      return true;
    }
  }
  const shard::SlotTable::Entry& entry = slot_table_->at(slot);
  switch (entry.state) {
    case shard::SlotState::kOwned:
      return false;
    case shard::SlotState::kRemote:
      c->QueueOutput("-" + slot_table_->MovedError(slot) + "\r\n");
      cluster_redirects_total_->Increment();
      cluster_redirects_moved_->Increment();
      return true;
    case shard::SlotState::kImporting:
      // Only ASKING-prefixed commands may touch an importing slot before
      // the owner commits the flip; everyone else is pointed at the owner.
      if (asking) return false;
      c->QueueOutput("-" + slot_table_->MovedError(slot) + "\r\n");
      cluster_redirects_total_->Increment();
      cluster_redirects_moved_->Increment();
      return true;
    case shard::SlotState::kMigrating: {
      const uint64_t now_ms = NowMs();
      size_t present = 0;
      bool in_flight = false;
      for (const std::string& k : keys) {
        if (migrator_ != nullptr && migrator_->KeyInFlight(k)) {
          in_flight = true;
        }
        if (engine_->keyspace().Find(k, now_ms) != nullptr) ++present;
      }
      if (in_flight && spec->is_write) {
        // The value is mid-transfer: a local write would be shadowed the
        // moment the streamed copy lands on the target.
        c->QueueOutput(
            "-TRYAGAIN Key is being migrated; retry the command\r\n");
        return true;
      }
      if (present == keys.size()) return false;  // still fully local
      if (present == 0) {
        c->QueueOutput("-" + slot_table_->AskError(slot) + "\r\n");
        cluster_redirects_total_->Increment();
        cluster_redirects_ask_->Increment();
        return true;
      }
      c->QueueOutput(
          "-TRYAGAIN Keys straddle a migrating slot; retry the command\r\n");
      return true;
    }
  }
  return false;
}

void RespServer::HandleClusterCommand(Connection* c,
                                      const std::vector<std::string>& argv) {
  loop_affinity_.AssertHeldThread();
  if (slot_table_ == nullptr) {
    c->QueueOutput("-ERR This instance has cluster support disabled\r\n");
    return;
  }
  const auto parse_slot = [](const std::string& s, uint16_t* out) {
    char* end = nullptr;
    const unsigned long v = std::strtoul(s.c_str(), &end, 10);
    if (end == s.c_str() || *end != '\0' ||
        v >= static_cast<unsigned long>(kNumSlots)) {
      return false;
    }
    *out = static_cast<uint16_t>(v);
    return true;
  };
  const std::string sub =
      argv.size() > 1 ? engine::Engine::Upper(argv[1]) : std::string();
  std::string encoded;
  uint16_t slot = 0;
  if (sub == "MYID" && argv.size() == 2) {
    resp::Value::Bulk(slot_table_->self_shard()).EncodeTo(&encoded);
  } else if (sub == "SLOTS" && argv.size() == 2) {
    slot_table_->SlotsReply().EncodeTo(&encoded);
  } else if (sub == "SHARDS" && argv.size() == 2) {
    slot_table_->ShardsReply().EncodeTo(&encoded);
  } else if (sub == "KEYSLOT" && argv.size() == 3) {
    resp::Value::Integer(KeyHashSlot(Slice(argv[2]))).EncodeTo(&encoded);
  } else if ((sub == "COUNTKEYSINSLOT" || sub == "GETKEYSINSLOT") &&
             argv.size() >= 3) {
    if (!parse_slot(argv[2], &slot)) {
      encoded = "-ERR Invalid slot\r\n";
    } else if (sub == "COUNTKEYSINSLOT" && argv.size() == 3) {
      resp::Value::Integer(static_cast<int64_t>(
                               engine_->keyspace().KeysInSlot(slot).size()))
          .EncodeTo(&encoded);
    } else if (sub == "GETKEYSINSLOT" && argv.size() == 4) {
      char* end = nullptr;
      const unsigned long count = std::strtoul(argv[3].c_str(), &end, 10);
      std::vector<resp::Value> out;
      for (const std::string& k : engine_->keyspace().KeysInSlot(slot)) {
        if (out.size() >= count) break;
        out.push_back(resp::Value::Bulk(k));
      }
      resp::Value::Array(std::move(out)).EncodeTo(&encoded);
    } else {
      encoded = "-ERR wrong number of arguments\r\n";
    }
  } else if (sub == "SETSLOT" && argv.size() >= 4) {
    if (!parse_slot(argv[2], &slot)) {
      c->QueueOutput("-ERR Invalid slot\r\n");
      return;
    }
    const std::string op = engine::Engine::Upper(argv[3]);
    if (op == "IMPORTING" && argv.size() == 6) {
      // Handshake from the migrating owner: argv[4]=its shard, [5]=endpoint.
      if (slot_table_->BeginImporting(slot, argv[4], argv[5])) {
        encoded = "+OK\r\n";
      } else {
        encoded = "-ERR slot " + std::to_string(slot) +
                  " is already served by this shard\r\n";
      }
    } else if (op == "MIGRATE" && argv.size() == 6) {
      // Admin trigger: stream the slot to shard argv[4] at argv[5] and
      // commit the flip through the fenced log. Runs asynchronously; +OK
      // means the migration started, progress is visible in INFO # Cluster.
      if (role_ != ServerRole::kPrimary) {
        encoded = "-ERR only the serving primary can migrate a slot\r\n";
      } else {
        const Status st = migrator_->StartMigration(slot, argv[4], argv[5]);
        encoded = st.ok() ? "+OK\r\n" : "-ERR " + st.ToString() + "\r\n";
      }
    } else if (op == "NODE" && (argv.size() == 6 || argv.size() == 7)) {
      uint64_t epoch = slot_table_->at(slot).epoch + 1;
      if (argv.size() == 7) {
        char* end = nullptr;
        epoch = std::strtoull(argv[6].c_str(), &end, 10);
      }
      if (argv[4] == slot_table_->self_shard()) {
        // The owner committed the flip to us: IMPORTING -> OWNED. Publish
        // the flip to our own shard's log too, so our replicas (and a
        // restarted us) learn it.
        if (slot_table_->CommitMigrationIn(slot, epoch)) {
          MigrationSubmitOwnership(slot, epoch, slot_table_->self_shard(),
                                   slot_table_->self_endpoint());
          encoded = "+OK\r\n";
        } else if (slot_table_->at(slot).state == shard::SlotState::kOwned) {
          encoded = "+OK\r\n";  // retried notification; already ours
        } else {
          encoded = "-ERR slot " + std::to_string(slot) +
                    " is not importing here\r\n";
        }
      } else {
        slot_table_->SetRemote(slot, argv[4], argv[5]);
        encoded = "+OK\r\n";
      }
    } else if (op == "STABLE" && argv.size() == 4) {
      encoded = slot_table_->CancelMigration(slot)
                    ? "+OK\r\n"
                    : "-ERR slot is not migrating or importing\r\n";
    } else {
      encoded =
          "-ERR unknown SETSLOT form; try IMPORTING <shard> <endpoint> | "
          "MIGRATE <shard> <endpoint> | NODE <shard> <endpoint> [epoch] | "
          "STABLE\r\n";
    }
    RefreshClusterGauges();
  } else {
    encoded =
        "-ERR unknown CLUSTER subcommand; try SLOTS | SHARDS | MYID | "
        "KEYSLOT | COUNTKEYSINSLOT | GETKEYSINSLOT | SETSLOT\r\n";
  }
  c->QueueOutput(encoded);
}

void RespServer::RefreshClusterGauges() {
  loop_affinity_.AssertHeldThread();
  if (slot_table_ == nullptr) return;
  size_t owned = 0, migrating = 0, importing = 0;
  for (int s = 0; s < kNumSlots; ++s) {
    switch (slot_table_->at(static_cast<uint16_t>(s)).state) {
      case shard::SlotState::kOwned: ++owned; break;
      case shard::SlotState::kMigrating: ++migrating; break;
      case shard::SlotState::kImporting: ++importing; break;
      case shard::SlotState::kRemote: break;
    }
  }
  // A migrating slot is still served here until the flip commits.
  cluster_slots_owned_->Set(static_cast<int64_t>(owned + migrating));
  cluster_slots_migrating_->Set(static_cast<int64_t>(migrating));
  cluster_slots_importing_->Set(static_cast<int64_t>(importing));
}

std::vector<std::string> RespServer::MigrationKeys(uint16_t slot,
                                                   size_t max) {
  loop_affinity_.AssertHeldThread();
  std::vector<std::string> out;
  const uint64_t now_ms = NowMs();
  for (const std::string& key : engine_->keyspace().KeysInSlot(slot)) {
    if (out.size() >= max) break;
    if (engine_->keyspace().Find(key, now_ms) != nullptr) {
      out.push_back(key);
    }
  }
  return out;
}

bool RespServer::MigrationDump(const std::string& key, uint64_t* expire_at_ms,
                               std::string* blob) {
  loop_affinity_.AssertHeldThread();
  const engine::Keyspace::Entry* e = engine_->keyspace().Find(key, NowMs());
  if (e == nullptr) return false;
  *expire_at_ms = e->expire_at_ms;
  blob->clear();
  engine::SerializeValue(e->value, blob);
  PutFixed64(blob, Crc64(0, blob->data(), blob->size()));
  return true;
}

uint64_t RespServer::MigrationDelete(const std::vector<std::string>& keys) {
  loop_affinity_.AssertHeldThread();
  engine::Argv del;
  del.reserve(keys.size() + 1);
  del.push_back("DEL");
  for (const std::string& k : keys) del.push_back(k);
  engine_->Apply(del, NowMs());
  if (gate_ == nullptr) return 0;
  // Replicates like any write; no client reply is parked on it, and no key
  // hazard is needed — once the key is locally absent, the migrating slot
  // answers -ASK and the target (which holds the durable copy) serves it.
  const std::vector<engine::Argv> effects{del};
  return gate_->SubmitAppend(
      EncodeEffectBatch(server_info_.engine_version, effects),
      /*trace_id=*/0);
}

uint64_t RespServer::MigrationSubmitOwnership(uint16_t slot, uint64_t epoch,
                                              const std::string& to_shard,
                                              const std::string& to_endpoint) {
  loop_affinity_.AssertHeldThread();
  if (gate_ == nullptr) return 0;
  shard::SlotOwnershipRecord rec;
  rec.slot = slot;
  rec.epoch = epoch;
  rec.from_shard = config_.shard_id;
  rec.to_shard = to_shard;
  rec.to_endpoint = to_endpoint;
  // The fencing argument (§5, same shape as DESIGN.md §11): this append is
  // conditional on the chain position of a gate that fences on any foreign
  // record. If this node lost its lease, the append fails and the flip
  // never commits — a stale owner can neither serve the slot nor give it
  // away.
  return gate_->SubmitTyped(txlog::RecordType::kSlotOwnership, rec.Encode(),
                            /*trace_id=*/0);
}

}  // namespace memdb::net
