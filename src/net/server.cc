#include "net/server.h"

#include <sys/socket.h>
#include <unistd.h>

#include <chrono>

namespace memdb::net {

namespace {
// Rolling window for the client_recent_max_input_buffer gauge.
constexpr uint64_t kInputHwmWindowMs = 5000;
// Active-expiry cadence and per-cycle victim cap (Redis-like).
constexpr uint64_t kExpireEveryMs = 100;
constexpr size_t kExpirePerCycle = 20;
}  // namespace

RespServer::RespServer(engine::Engine* engine, ServerConfig config)
    : engine_(engine), config_(std::move(config)) {
  engine_->set_metrics(&metrics_);
  connected_clients_ = metrics_.GetGauge("net_connected_clients");
  blocked_clients_ = metrics_.GetGauge("net_blocked_clients");
  recent_max_input_ =
      metrics_.GetGauge("net_client_recent_max_input_buffer");
  maxclients_gauge_ = metrics_.GetGauge("net_maxclients");
  maxclients_gauge_->Set(static_cast<int64_t>(config_.maxclients));
  bytes_in_ = metrics_.GetCounter("net_input_bytes_total");
  bytes_out_ = metrics_.GetCounter("net_output_bytes_total");
  accepted_ = metrics_.GetCounter("net_connections_accepted_total");
  closed_ = metrics_.GetCounter("net_connections_closed_total");
  evicted_ = metrics_.GetCounter("net_evicted_clients_total");
  rejected_ = metrics_.GetCounter("net_rejected_connections_total");
  protocol_errors_ = metrics_.GetCounter("net_protocol_errors_total");
  batch_commands_ = metrics_.GetHistogram("net_batch_commands");
}

RespServer::~RespServer() { Stop(); }

uint64_t RespServer::NowMs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

Status RespServer::Start() {
  MEMDB_RETURN_IF_ERROR(loop_.Init());
  MEMDB_RETURN_IF_ERROR(listener_.Open(config_.bind_address, config_.port,
                                       config_.tcp_backlog));
  MEMDB_RETURN_IF_ERROR(loop_.Add(listener_.fd(), kReadable, &listener_));
  const int extra = config_.io_threads > 1 ? config_.io_threads - 1 : 0;
  pool_ = std::make_unique<IoThreadPool>(extra);
  input_hwm_window_start_ms_ = NowMs();
  started_ = true;
  loop_thread_ = std::thread([this] { LoopMain(); });
  return Status::OK();
}

void RespServer::Stop() {
  if (!started_) return;
  stop_requested_.store(true, std::memory_order_release);
  loop_.Wakeup();
  if (loop_thread_.joinable()) loop_thread_.join();
  started_ = false;
  // The loop has exited: tear down every connection and the accept socket.
  for (auto& [ptr, owned] : connections_) owned->Close();
  connections_.clear();
  listener_.Close();
  pool_.reset();  // joins io threads
  connected_clients_->Set(0);
}

void RespServer::AcceptPending() {
  for (;;) {
    const int fd = listener_.Accept();
    if (fd < 0) return;
    if (connections_.size() >= config_.maxclients) {
      // Same shape Redis uses: tell the client why, then hang up.
      static const char kErr[] = "-ERR max number of clients reached\r\n";
      [[maybe_unused]] ssize_t n =
          ::send(fd, kErr, sizeof(kErr) - 1, MSG_NOSIGNAL);
      ::close(fd);
      rejected_->Increment();
      continue;
    }
    auto conn =
        std::make_unique<Connection>(fd, next_conn_id_++, config_.decode);
    Connection* raw = conn.get();
    if (!loop_.Add(fd, kReadable, raw).ok()) {
      continue;  // conn destructor closes the fd
    }
    connections_.emplace(raw, std::move(conn));
    accepted_->Increment();
    connected_clients_->Set(static_cast<int64_t>(connections_.size()));
  }
}

void RespServer::ExecutePending(Connection* c, uint64_t now_ms) {
  engine::ExecContext ctx;
  ctx.now_ms = now_ms;
  ctx.role = engine::Role::kPrimary;
  ctx.rng = &engine_->rng();
  ctx.server = &server_info_;
  std::string encoded;
  for (const std::vector<std::string>& argv : c->pending()) {
    if (c->state() != Connection::State::kOpen) break;
    if (!argv.empty() && engine::Engine::Upper(argv[0]) == "QUIT") {
      c->QueueOutput("+OK\r\n");
      c->set_state(Connection::State::kClosing);
      break;
    }
    const engine::CommandSpec* spec =
        argv.empty() ? nullptr : engine_->FindCommand(argv[0]);
    const auto t0 = std::chrono::steady_clock::now();
    const resp::Value reply = engine_->Execute(argv, &ctx);
    if (spec != nullptr) {
      Histogram*& h = latency_cache_[spec];
      if (h == nullptr) {
        h = metrics_.GetHistogram("cmd_latency_us", {{"cmd", spec->name}});
      }
      h->Record(static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::microseconds>(
              std::chrono::steady_clock::now() - t0)
              .count()));
    }
    // The standalone server has no transaction log attached; the effect
    // stream is dropped (a durable deployment redirects it, §3.1).
    ctx.effects.clear();
    ctx.dirty_keys.clear();
    encoded.clear();
    reply.EncodeTo(&encoded);
    c->QueueOutput(encoded);
    if (c->output_pending() > config_.output_hard_bytes) {
      break;  // hard limit: housekeeping evicts before any flush
    }
  }
  c->pending().clear();
}

void RespServer::DispatchBatch(const std::vector<Connection*>& readable,
                               uint64_t now_ms) {
  size_t batch = 0;
  for (Connection* c : readable) {
    bytes_in_->Increment(c->TakeBytesIn());
    const size_t hwm = c->TakeMaxInputBuffered();
    if (hwm > input_hwm_cur_) input_hwm_cur_ = hwm;
    batch += c->pending().size();
  }
  if (batch > 0) batch_commands_->Record(static_cast<uint64_t>(batch));
  for (Connection* c : readable) {
    if (!c->pending().empty()) ExecutePending(c, now_ms);
    if (!c->protocol_error().empty() && !c->protocol_error_reported()) {
      c->QueueOutput("-ERR Protocol error: " + c->protocol_error() +
                     "\r\n");
      c->set_protocol_error_reported();
      c->set_state(Connection::State::kClosing);
      protocol_errors_->Increment();
    }
  }
}

void RespServer::Housekeeping(uint64_t now_ms) {
  // Client-output-buffer limits, EPOLLOUT arming, and reaping. The scan
  // covers every connection because a stalled client never raises another
  // readiness event on its own.
  std::vector<Connection*> doomed;
  for (auto& [raw, owned] : connections_) {
    Connection* c = raw;
    if (c->state() == Connection::State::kClosed) {
      doomed.push_back(c);
      continue;
    }
    const size_t out = c->output_pending();
    if (out > config_.output_hard_bytes ||
        c->input_buffered() > config_.input_hard_bytes) {
      evicted_->Increment();
      doomed.push_back(c);
      continue;
    }
    if (out > config_.output_soft_bytes) {
      if (c->soft_over_since_ms == 0) {
        c->soft_over_since_ms = now_ms;
      } else if (now_ms - c->soft_over_since_ms >= config_.output_soft_ms) {
        evicted_->Increment();
        doomed.push_back(c);
        continue;
      }
    } else {
      c->soft_over_since_ms = 0;
    }
    if (c->peer_closed() && out == 0) {
      doomed.push_back(c);
      continue;
    }
    if (c->state() == Connection::State::kClosing && out == 0) {
      doomed.push_back(c);
      continue;
    }
    const bool want = out > 0;
    if (want != c->want_write) {
      c->want_write = want;
      loop_.Modify(c->fd(), want ? (kReadable | kWritable) : kReadable, c);
    }
  }
  for (Connection* c : doomed) CloseConnection(c);

  // client_recent_max_input_buffer: max over the current and previous
  // windows, so the gauge reflects "recent" peaks rather than all-time.
  if (now_ms - input_hwm_window_start_ms_ >= kInputHwmWindowMs) {
    input_hwm_prev_ = input_hwm_cur_;
    input_hwm_cur_ = 0;
    input_hwm_window_start_ms_ = now_ms;
  }
  recent_max_input_->Set(static_cast<int64_t>(
      input_hwm_cur_ > input_hwm_prev_ ? input_hwm_cur_ : input_hwm_prev_));
  blocked_clients_->Set(0);  // no blocking commands on the net path yet

  if (now_ms - last_expire_ms_ >= kExpireEveryMs) {
    last_expire_ms_ = now_ms;
    engine::ExecContext ctx;
    ctx.now_ms = now_ms;
    ctx.role = engine::Role::kPrimary;
    ctx.rng = &engine_->rng();
    engine_->ActiveExpire(&ctx, kExpirePerCycle);
  }
}

void RespServer::CloseConnection(Connection* c) {
  loop_.Remove(c->fd());
  c->Close();
  connections_.erase(c);
  closed_->Increment();
  connected_clients_->Set(static_cast<int64_t>(connections_.size()));
}

void RespServer::LoopMain() {
  std::vector<Event> events;
  std::vector<Connection*> readable;
  std::vector<Connection*> flushable;
  while (!stop_requested_.load(std::memory_order_acquire)) {
    loop_.Poll(config_.loop_timeout_ms, &events);
    if (stop_requested_.load(std::memory_order_acquire)) break;

    readable.clear();
    flushable.clear();
    bool accept_ready = false;
    for (const Event& ev : events) {
      if (ev.tag == &listener_) {
        accept_ready = true;
        continue;
      }
      Connection* c = static_cast<Connection*>(ev.tag);
      // kClosed surfaces through read() on the next drain; treat as read-
      // ready so the hangup is observed promptly.
      if (ev.events & (kReadable | kClosed)) readable.push_back(c);
      if (ev.events & kWritable) flushable.push_back(c);
    }
    events.clear();
    if (accept_ready) AcceptPending();

    // Stage 1 (io threads): drain sockets and decode commands.
    pool_->Run(readable.size(),
               [&](size_t i) { readable[i]->ReadAndParse(); });

    // Stage 2 (loop thread): one batched dispatch into the engine.
    const uint64_t now_ms = NowMs();
    DispatchBatch(readable, now_ms);

    // Stage 3 (io threads): flush whatever has output. Readable conns may
    // have just produced replies; EPOLLOUT-ready conns have leftovers.
    for (Connection* c : readable) {
      if (c->output_pending() > 0 &&
          c->output_pending() <= config_.output_hard_bytes &&
          !c->want_write) {
        flushable.push_back(c);
      }
    }
    pool_->Run(flushable.size(),
               [&](size_t i) { flushable[i]->FlushWrites(); });
    for (Connection* c : flushable) {
      bytes_out_->Increment(c->TakeBytesOut());
    }

    Housekeeping(now_ms);
  }
}

}  // namespace memdb::net
