// Connection: per-client state machine for the real I/O path. Owns the
// socket fd, an incremental RESP decoder over partial reads, the list of
// fully-decoded commands awaiting dispatch, and a bounded output buffer
// with client-output-buffer accounting (soft/hard limits enforced by the
// server's housekeeping pass).
//
// Threading contract: ReadAndParse() and FlushWrites() are designed to run
// on io threads — they touch only this connection's state and never the
// shared MetricsRegistry. Per-connection I/O totals are accumulated locally
// (TakeBytesIn/TakeBytesOut) and folded into the registry by the loop
// thread after the io barrier.

#ifndef MEMDB_NET_CONNECTION_H_
#define MEMDB_NET_CONNECTION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "resp/resp.h"

namespace memdb::net {

class Connection {
 public:
  enum class State : uint8_t {
    kOpen,     // reading commands, writing replies
    kClosing,  // no more reads; flush remaining output, then close
    kClosed,   // fd closed (or doomed); awaiting reap by the server
  };

  Connection(int fd, uint64_t id, const resp::DecodeLimits& limits);
  ~Connection();
  Connection(const Connection&) = delete;
  Connection& operator=(const Connection&) = delete;

  // Drains the socket (bounded per call; level-triggered epoll re-reports
  // leftovers) and decodes complete commands into pending(). On a protocol
  // error, stops reading and records the error for the server to report.
  void ReadAndParse();

  // Appends pre-encoded reply bytes to the output buffer.
  void QueueOutput(const std::string& encoded) {
    out_.append(encoded);
  }

  // Writes as much buffered output as the socket accepts right now.
  void FlushWrites();

  void Close();

  // Commands decoded but not yet dispatched; consumed by the batch step.
  std::vector<std::vector<std::string>>& pending() { return pending_; }

  State state() const { return state_; }
  void set_state(State s) { state_ = s; }
  int fd() const { return fd_; }
  uint64_t id() const { return id_; }

  bool peer_closed() const { return peer_closed_; }
  const std::string& protocol_error() const { return protocol_error_; }
  bool protocol_error_reported() const { return protocol_error_reported_; }
  void set_protocol_error_reported() { protocol_error_reported_ = true; }

  size_t output_pending() const { return out_.size() - out_sent_; }
  size_t input_buffered() const { return decoder_.buffered(); }
  // High-water mark of the input buffer since the last Take (loop thread).
  size_t TakeMaxInputBuffered() {
    size_t v = max_input_buffered_;
    max_input_buffered_ = 0;
    return v;
  }
  uint64_t TakeBytesIn() {
    uint64_t v = bytes_in_;
    bytes_in_ = 0;
    return v;
  }
  uint64_t TakeBytesOut() {
    uint64_t v = bytes_out_;
    bytes_out_ = 0;
    return v;
  }

  // Soft client-output-buffer-limit bookkeeping (loop thread only):
  // timestamp (ms) when the soft limit was first continuously exceeded,
  // 0 when currently under it.
  uint64_t soft_over_since_ms = 0;
  // One-shot ASKING flag (loop thread only): the next keyed command may
  // execute against an IMPORTING slot (§5 redirect protocol); consumed by
  // that command whether or not it needed it.
  bool asking = false;
  // Loop-thread bookkeeping: whether EPOLLOUT is currently armed.
  bool want_write = false;

 private:
  const int fd_;
  const uint64_t id_;
  State state_ = State::kOpen;

  resp::Decoder decoder_;
  std::vector<std::vector<std::string>> pending_;

  std::string out_;
  size_t out_sent_ = 0;

  bool peer_closed_ = false;
  std::string protocol_error_;
  bool protocol_error_reported_ = false;

  uint64_t bytes_in_ = 0;
  uint64_t bytes_out_ = 0;
  size_t max_input_buffered_ = 0;
};

}  // namespace memdb::net

#endif  // MEMDB_NET_CONNECTION_H_
