// RespServer: the real-socket front end for engine::Engine — the paper's
// "enhanced I/O multiplexing" layer. One event-loop thread owns an epoll
// instance, a TCP listener, and every Connection. Each loop iteration:
//
//   1. epoll_wait for readiness,
//   2. read+parse every ready connection (fanned out to io threads),
//   3. ONE batched dispatch of all decoded commands into the
//      single-threaded engine (replies encoded into per-connection
//      output buffers),
//   4. release replies whose transaction-log appends committed,
//   5. flush output buffers (fanned out to io threads),
//   6. housekeeping: client-output-buffer limits (soft over time / hard
//      immediate) with slow-client eviction, EPOLLOUT arming, reaping,
//      active expiry, gauge refresh.
//
// The engine runs exclusively on the loop thread; io threads only touch
// sockets and per-connection buffers, exactly like Redis io-threads and
// the multiplexing design in the MemoryDB paper.
//
// With txlog_endpoints configured, the server becomes a durable primary
// (§3.1/§3.2): every write's effect batch is appended to the out-of-process
// transaction log through a RemoteLogGate, the client's reply is parked
// until the append commits on a majority of log replicas, and reads that
// touch a not-yet-durable key are parked behind that write (the client
// blocking tracker, over real sockets).

#ifndef MEMDB_NET_SERVER_H_
#define MEMDB_NET_SERVER_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/metrics.h"
#include "common/status.h"
#include "common/sync.h"
#include "common/trace.h"
#include "engine/engine.h"
#include "failover/failover_manager.h"
#include "net/connection.h"
#include "net/event_loop.h"
#include "net/io_threads.h"
#include "net/listener.h"
#include "net/remote_log_gate.h"
#include "replication/log_follower.h"
#include "replication/recovery.h"
#include "shard/migration.h"
#include "shard/slot_table.h"

namespace memdb::net {

struct ServerConfig {
  std::string bind_address = "127.0.0.1";
  uint16_t port = 6379;  // 0 = kernel-assigned (tests); see RespServer::port
  int tcp_backlog = 511;
  size_t maxclients = 10000;
  // Total io threads including the loop thread (Redis io-threads semantics):
  // 1 = all socket I/O on the loop thread, N>1 spawns N-1 workers.
  int io_threads = 1;

  // Protocol guard rails applied per connection.
  resp::DecodeLimits decode;
  // Query buffer cap: a client whose unparsed input exceeds this is evicted.
  size_t input_hard_bytes = 1u << 30;

  // Client output buffer limits (Redis client-output-buffer-limit): a
  // client over the soft limit for soft_ms, or over the hard limit at all,
  // is evicted rather than allowed to stall memory.
  size_t output_soft_bytes = 8u << 20;
  uint64_t output_soft_ms = 1000;
  size_t output_hard_bytes = 32u << 20;

  // epoll_wait tick; bounds how stale housekeeping can get when idle.
  int loop_timeout_ms = 100;

  // Out-of-process transaction log (memorydb-txlogd endpoints, one per
  // simulated AZ). Empty = no durability gate: write effects are dropped
  // and replies return immediately (the pre-durable standalone server).
  std::vector<std::string> txlog_endpoints;
  uint64_t txlog_writer_id = 1;
  uint64_t txlog_rpc_timeout_ms = 300;
  uint64_t txlog_backoff_base_ms = 20;
  uint64_t txlog_backoff_cap_ms = 1000;
  int txlog_max_attempts = 8;
  // Stop() keeps the loop alive up to this long so in-flight appends can
  // commit and their parked replies can be flushed before teardown.
  uint64_t shutdown_drain_ms = 5000;

  // Primary checksum-chain injection: one kChecksum record per N data
  // appends (§7.2.1); 0 disables.
  uint64_t txlog_checksum_every = 64;
  // Primary-side txlog.Tail poll cadence for the repl_log_consumers /
  // txlog_tail_commit_index gauges; 0 disables.
  uint64_t txlog_tail_poll_ms = 1000;

  // Replica mode (§4.2.1): follow the committed log at these txlogd
  // endpoints instead of writing to one. Mutually exclusive with
  // txlog_endpoints. Writes answer -READONLY; WAIT answers 0.
  std::vector<std::string> replica_of_log;
  uint64_t replica_poll_wait_ms = 200;

  // Peer-less recovery (§4.2.1): before accepting traffic, load the latest
  // snapshot for `shard_id` from the FsObjectStore at `store_dir` and
  // replay the committed log tail past its position.
  bool restore = false;
  std::string store_dir;
  std::string shard_id = "shard-0";

  // --- automatic failover (§4.1/§4.2) -------------------------------------
  // On a primary: acquire the shard lease before serving and chain every
  // append on the previous index (fenced appends). On a replica: monitor the
  // holder through the follower feed and race AcquireLease when it dies —
  // winning flips this node to serving primary with no operator action.
  bool failover = false;
  uint64_t lease_duration_ms = 1500;
  uint64_t lease_renew_ms = 500;
  uint64_t failover_probe_ms = 300;
  uint64_t failover_grace_ms = 300;
  // Primary startup: how long Start() may block acquiring the initial lease
  // (a still-ticking foreign lease legitimately delays startup).
  uint64_t lease_acquire_wait_ms = 30000;

  // --- cluster data plane (§5) --------------------------------------------
  // Hash-slot routing: every keyed command checks the 16384-entry slot
  // table; slots owned elsewhere answer -MOVED, slots mid-migration follow
  // the MOVED/ASK protocol. Off (default) keeps the single-shard behaviour.
  bool cluster = false;
  // Slot ranges this shard serves at bootstrap ("0-8191,9000"); empty with
  // cluster on = all 16384 slots.
  std::string cluster_slots;
  // host:port advertised in redirects and CLUSTER SLOTS; empty = bind:port.
  std::string cluster_announce;
  // Static peer directory: other shards and the slots they serve at
  // bootstrap (live migrations update the table afterwards).
  struct ClusterPeer {
    std::string shard_id;
    std::string endpoint;  // host:port
    std::string slots;     // range spec
  };
  std::vector<ClusterPeer> cluster_peers;
  // Keys per migration-channel round-trip (CLUSTER SETSLOT ... MIGRATE).
  size_t migration_batch_keys = 64;

  // --- write-path tracing + slowlog ---------------------------------------
  // 1-in-N durable writes get a trace id (0 disables tracing, 1 = every
  // write). Unsampled writes carry trace id 0, which every downstream
  // Record() ignores — sampling costs one counter increment.
  uint64_t trace_sample_rate = 1;
  // JSONL span export at Stop() (common/trace_export.h line format);
  // empty = no file export (TRACE DUMP still serves live scrapes).
  std::string trace_file;
  // proc label stamped on exported spans; empty = "server" / "replica"
  // by role.
  std::string trace_proc;
  // Durable writes whose cmd.receive -> reply.release latency is at least
  // this land in SLOWLOG (backed by the same spans). 0 = log every write.
  uint64_t slowlog_slower_than_us = 10000;
  size_t slowlog_max_len = 128;
};

// What this node currently is on the data plane. Transitions happen on the
// loop thread only, driven by MaintainFailover():
//   kReplica -> kPromoting   (FailoverManager won the lease)
//   kPromoting -> kPrimary   (applied_index reached the replay target)
//   kPromoting -> kReplica   (lease lost again mid-replay)
//   kPrimary -> kFenced      (renewal rejected / gate hit a foreign record)
enum class ServerRole : uint8_t { kPrimary, kReplica, kPromoting, kFenced };

class RespServer : private shard::MigrationHost {
 public:
  // The server shares its metrics registry with the engine (set_metrics),
  // so one INFO/METRICS scrape covers engine and net series.
  RespServer(engine::Engine* engine, ServerConfig config);
  ~RespServer();
  RespServer(const RespServer&) = delete;
  RespServer& operator=(const RespServer&) = delete;

  // Binds, listens, and spawns the event-loop thread. After OK, port()
  // reports the bound port (meaningful when config.port == 0). When
  // txlog_endpoints is set, also starts the RemoteLogGate.
  Status Start();

  // Idempotent, thread-safe: drains in-flight log appends (bounded by
  // shutdown_drain_ms), wakes the loop, joins it, closes the listener and
  // every connection, and joins the io threads.
  void Stop();

  uint16_t port() const { return listener_.port(); }
  // Test access (loop-thread discipline applies once the loop runs).
  shard::SlotTable* slot_table() { return slot_table_.get(); }
  MetricsRegistry& metrics() { return metrics_; }
  const ServerConfig& config() const { return config_; }
  RemoteLogGate* gate() { return gate_.get(); }
  replication::LogFollower* follower() { return follower_.get(); }
  failover::FailoverManager* failover_manager() { return failover_.get(); }
  // Thread-safe: TraceLog::Snapshot tolerates concurrent recording from
  // the loop and gate threads (lock-free slot versioning).
  const TraceLog& trace_log() const { return trace_; }

 private:
  // A reply parked until the transaction log catches up to `seq`.
  struct HeldReply {
    enum class Kind : uint8_t {
      kWrite,  // this connection's own append; errors close the connection
      kRead,   // read behind another connection's key hazard
      kWait,   // WAIT: reply synthesized at release time
    };
    uint64_t seq = 0;
    Kind kind = Kind::kRead;
    std::string encoded;
  };

  // One durable write in flight between gate.submit and reply release,
  // keyed by gate seq. Carries the spans' trace id, the stamps that back
  // the durable-ack histogram and SLOWLOG, and the (truncated) argv for
  // SLOWLOG entries.
  struct PendingWrite {
    uint64_t trace_id = 0;
    uint64_t receive_us = 0;  // cmd.receive
    uint64_t submit_us = 0;   // gate.submit
    std::vector<std::string> argv;
  };

  // SLOWLOG entry (Redis reply shape: id, unix ts, duration, argv).
  struct SlowlogEntry {
    uint64_t id = 0;
    uint64_t unix_ts = 0;      // seconds
    uint64_t duration_us = 0;  // cmd.receive -> reply.release
    std::vector<std::string> argv;
  };

  void LoopMain();
  // Startup-thread, before the listener opens: snapshot-store restore +
  // log-tail replay into the engine (§4.2.1).
  Status RestoreAtStartup(replication::RestoreResult* result);
  // Loop thread, replica mode: drain the follower and apply committed
  // entries to the engine, maintaining/verifying the checksum chain.
  void ApplyFollowerEntries(uint64_t now_ms);
  // Loop thread, once per iteration when failover is on: advance the role
  // state machine against the FailoverManager's state (see ServerRole).
  void MaintainFailover(uint64_t now_ms);
  // Loop thread: the replay target is applied — tear down the follower,
  // start a fenced RemoteLogGate against the same txlogd group, and begin
  // serving writes as the new primary.
  void PromoteToPrimary();
  // Loop thread, terminal: this primary lost the shard lease. Fail every
  // parked reply, retire the gate, answer all further writes -READONLY.
  void DemoteFenced();
  void AcceptPending();
  // Executes every pending command of every readable connection as one
  // engine batch; encodes replies into connection output buffers (or parks
  // them behind the durability gate).
  void DispatchBatch(const std::vector<Connection*>& readable,
                     uint64_t now_ms);
  void ExecutePending(Connection* c, uint64_t now_ms);
  // Drains gate completions, releases parked replies in order, prunes key
  // hazards; connections that gained output are appended to *released.
  void ProcessLogCompletions(std::vector<Connection*>* released);
  void Hold(Connection* c, HeldReply reply);
  // Largest append seq hazarding any key this command touches (0 = none).
  uint64_t HazardFor(const engine::CommandSpec* spec,
                     const std::vector<std::string>& argv) const;
  void Housekeeping(uint64_t now_ms);
  void CloseConnection(Connection* c);
  // Admin-plane commands served directly from loop state (never parked
  // behind the durability gate).
  void HandleTraceCommand(Connection* c, const std::vector<std::string>& argv);
  void HandleSlowlogCommand(Connection* c,
                            const std::vector<std::string>& argv);
  // Cluster control plane: CLUSTER SLOTS/SHARDS/MYID/KEYSLOT/SETSLOT/....
  void HandleClusterCommand(Connection* c,
                            const std::vector<std::string>& argv);
  // Hash-slot routing (§5): true when the command was fully answered here
  // (-MOVED/-ASK/-CROSSSLOT/-TRYAGAIN/-CLUSTERDOWN); false = execute
  // locally. `asking` is the connection's consumed one-shot ASKING flag.
  bool RouteClusterCommand(Connection* c, const engine::CommandSpec* spec,
                           const std::vector<std::string>& argv, bool asking);
  // Refresh the cluster_slots_* gauges after any slot-table change.
  void RefreshClusterGauges();

  // shard::MigrationHost (loop thread, except MigrationWakeup).
  std::vector<std::string> MigrationKeys(uint16_t slot, size_t max) override;
  bool MigrationDump(const std::string& key, uint64_t* expire_at_ms,
                     std::string* blob) override;
  uint64_t MigrationDelete(const std::vector<std::string>& keys) override;
  uint64_t MigrationSubmitOwnership(uint16_t slot, uint64_t epoch,
                                    const std::string& to_shard,
                                    const std::string& to_endpoint) override;
  void MigrationWakeup() override { loop_.Wakeup(); }
  std::string TraceProcLabel() const;
  static uint64_t NowMs();
  static uint64_t NowUs();

  engine::Engine* const engine_;
  ServerConfig config_;
  MetricsRegistry metrics_;
  engine::ServerInfo server_info_;
  TraceLog trace_;

  EventLoop loop_;
  Listener listener_;
  std::unique_ptr<IoThreadPool> pool_;
  std::unique_ptr<RemoteLogGate> gate_;
  std::unique_ptr<replication::LogFollower> follower_;
  std::unique_ptr<failover::FailoverManager> failover_;
  // Demotion parks the old gate here (its loop is stopped, but completions
  // may still be referenced); destroyed with the server.
  std::unique_ptr<RemoteLogGate> retired_gate_;
  // gate_ mutates on the loop thread after promotion/demotion; Stop()'s
  // drain loop (caller thread) reads this mirror instead.
  std::atomic<RemoteLogGate*> gate_for_drain_{nullptr};
  std::unordered_map<Connection*, std::unique_ptr<Connection>> connections_;
  uint64_t next_conn_id_ = 1;

  std::thread loop_thread_;
  // Bound by LoopMain at startup; every loop-thread-only method asserts it,
  // so touching connection/gate state off the loop aborts instead of racing.
  ThreadAffinity loop_affinity_;
  std::atomic<bool> stop_requested_{false};
  bool started_ = false;

  // --- durability-gate state (loop thread) ---------------------------------
  std::unordered_map<Connection*, std::deque<HeldReply>> held_;
  std::unordered_map<Connection*, uint64_t> conn_last_write_seq_;
  std::unordered_map<std::string, uint64_t> key_hazards_;
  // Live from gate.submit until the reply releases (entries at or below
  // done_floor_ are pruned after each release pass).
  std::unordered_map<uint64_t, PendingWrite> pending_writes_;
  uint64_t done_floor_ = 0;      // completions arrive in seq order
  std::set<uint64_t> failed_;    // seqs whose append terminally failed
  size_t held_count_ = 0;
  uint64_t next_trace_id_ = 1;
  TraceSampler sampler_;

  // --- slowlog (loop thread) -----------------------------------------------
  std::deque<SlowlogEntry> slowlog_;  // newest at the front
  uint64_t slowlog_next_id_ = 0;

  // --- cluster data plane (loop thread) ------------------------------------
  // Non-null iff config_.cluster; the migrator streams slots out of this
  // node and the table answers every keyed command's routing question.
  std::unique_ptr<shard::SlotTable> slot_table_;
  std::unique_ptr<shard::SlotMigrator> migrator_;
  Counter* cluster_redirects_total_ = nullptr;
  Counter* cluster_redirects_moved_ = nullptr;
  Counter* cluster_redirects_ask_ = nullptr;
  Gauge* cluster_slots_owned_ = nullptr;
  Gauge* cluster_slots_migrating_ = nullptr;
  Gauge* cluster_slots_importing_ = nullptr;

  // --- replication state (loop thread, except the restore seed written
  // once on the startup thread before the loop exists) --------------------
  // Entries drained from the follower but not yet applied: promotion-scale
  // backlogs are applied in bounded chunks (one per loop iteration, with a
  // zero poll timeout while non-empty) so replay cannot starve the rest of
  // the loop — reads keep flowing and MaintainFailover keeps observing the
  // FailoverManager, whose renew timer meanwhile keeps the fresh lease
  // alive (ROADMAP 2a: the ~200k-entry renew-starvation self-fence).
  std::deque<txlog::LogEntry> follower_backlog_;
  // Running CRC64 over applied data payloads — a replica's follow-along
  // half of the §7.2.1 chain, verified against kChecksum records.
  uint64_t repl_running_checksum_ = 0;
  bool repl_trim_fatal_reported_ = false;
  // Data-plane role (loop thread; seeded in Start before the loop spawns).
  ServerRole role_ = ServerRole::kPrimary;
  // Mirror of held_count_ for the shutdown drain (written on loop thread).
  std::atomic<uint64_t> held_atomic_{0};

  // Instruments (all owned by metrics_, updated on the loop thread only).
  Gauge* connected_clients_;
  Gauge* blocked_clients_;
  Gauge* recent_max_input_;
  Gauge* maxclients_gauge_;
  Counter* bytes_in_;
  Counter* bytes_out_;
  Counter* accepted_;
  Counter* closed_;
  Counter* evicted_;
  Counter* rejected_;
  Counter* protocol_errors_;
  Counter* log_blocked_replies_;
  Histogram* batch_commands_;
  Histogram* durable_ack_us_;
  Gauge* repl_applied_gauge_;
  Counter* repl_entries_applied_;
  Counter* repl_bytes_applied_;
  Counter* repl_checksum_failures_;

  // Rolling two-window high-water mark for client_recent_max_input_buffer.
  size_t input_hwm_cur_ = 0;
  size_t input_hwm_prev_ = 0;
  uint64_t input_hwm_window_start_ms_ = 0;
  uint64_t last_expire_ms_ = 0;

  // Per-command latency histogram cache (same trick as the engine's
  // calls_cache_): avoids a registry map lookup per command on the hot path.
  std::map<const engine::CommandSpec*, Histogram*> latency_cache_;
};

}  // namespace memdb::net

#endif  // MEMDB_NET_SERVER_H_
