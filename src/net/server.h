// RespServer: the real-socket front end for engine::Engine — the paper's
// "enhanced I/O multiplexing" layer. One event-loop thread owns an epoll
// instance, a TCP listener, and every Connection. Each loop iteration:
//
//   1. epoll_wait for readiness,
//   2. read+parse every ready connection (fanned out to io threads),
//   3. ONE batched dispatch of all decoded commands into the
//      single-threaded engine (replies encoded into per-connection
//      output buffers),
//   4. flush output buffers (fanned out to io threads),
//   5. housekeeping: client-output-buffer limits (soft over time / hard
//      immediate) with slow-client eviction, EPOLLOUT arming, reaping,
//      active expiry, gauge refresh.
//
// The engine runs exclusively on the loop thread; io threads only touch
// sockets and per-connection buffers, exactly like Redis io-threads and
// the multiplexing design in the MemoryDB paper.

#ifndef MEMDB_NET_SERVER_H_
#define MEMDB_NET_SERVER_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/metrics.h"
#include "common/status.h"
#include "engine/engine.h"
#include "net/connection.h"
#include "net/event_loop.h"
#include "net/io_threads.h"
#include "net/listener.h"

namespace memdb::net {

struct ServerConfig {
  std::string bind_address = "127.0.0.1";
  uint16_t port = 6379;  // 0 = kernel-assigned (tests); see RespServer::port
  int tcp_backlog = 511;
  size_t maxclients = 10000;
  // Total io threads including the loop thread (Redis io-threads semantics):
  // 1 = all socket I/O on the loop thread, N>1 spawns N-1 workers.
  int io_threads = 1;

  // Protocol guard rails applied per connection.
  resp::DecodeLimits decode;
  // Query buffer cap: a client whose unparsed input exceeds this is evicted.
  size_t input_hard_bytes = 1u << 30;

  // Client output buffer limits (Redis client-output-buffer-limit): a
  // client over the soft limit for soft_ms, or over the hard limit at all,
  // is evicted rather than allowed to stall memory.
  size_t output_soft_bytes = 8u << 20;
  uint64_t output_soft_ms = 1000;
  size_t output_hard_bytes = 32u << 20;

  // epoll_wait tick; bounds how stale housekeeping can get when idle.
  int loop_timeout_ms = 100;
};

class RespServer {
 public:
  // The server shares its metrics registry with the engine (set_metrics),
  // so one INFO/METRICS scrape covers engine and net series.
  RespServer(engine::Engine* engine, ServerConfig config);
  ~RespServer();
  RespServer(const RespServer&) = delete;
  RespServer& operator=(const RespServer&) = delete;

  // Binds, listens, and spawns the event-loop thread. After OK, port()
  // reports the bound port (meaningful when config.port == 0).
  Status Start();

  // Idempotent, thread-safe: wakes the loop, joins it, closes the listener
  // and every connection, and joins the io threads.
  void Stop();

  uint16_t port() const { return listener_.port(); }
  MetricsRegistry& metrics() { return metrics_; }
  const ServerConfig& config() const { return config_; }

 private:
  void LoopMain();
  void AcceptPending();
  // Executes every pending command of every readable connection as one
  // engine batch; encodes replies into connection output buffers.
  void DispatchBatch(const std::vector<Connection*>& readable,
                     uint64_t now_ms);
  void ExecutePending(Connection* c, uint64_t now_ms);
  void Housekeeping(uint64_t now_ms);
  void CloseConnection(Connection* c);
  static uint64_t NowMs();

  engine::Engine* const engine_;
  ServerConfig config_;
  MetricsRegistry metrics_;
  engine::ServerInfo server_info_;

  EventLoop loop_;
  Listener listener_;
  std::unique_ptr<IoThreadPool> pool_;
  std::unordered_map<Connection*, std::unique_ptr<Connection>> connections_;
  uint64_t next_conn_id_ = 1;

  std::thread loop_thread_;
  std::atomic<bool> stop_requested_{false};
  bool started_ = false;

  // Instruments (all owned by metrics_, updated on the loop thread only).
  Gauge* connected_clients_;
  Gauge* blocked_clients_;
  Gauge* recent_max_input_;
  Gauge* maxclients_gauge_;
  Counter* bytes_in_;
  Counter* bytes_out_;
  Counter* accepted_;
  Counter* closed_;
  Counter* evicted_;
  Counter* rejected_;
  Counter* protocol_errors_;
  Histogram* batch_commands_;

  // Rolling two-window high-water mark for client_recent_max_input_buffer.
  size_t input_hwm_cur_ = 0;
  size_t input_hwm_prev_ = 0;
  uint64_t input_hwm_window_start_ms_ = 0;
  uint64_t last_expire_ms_ = 0;

  // Per-command latency histogram cache (same trick as the engine's
  // calls_cache_): avoids a registry map lookup per command on the hot path.
  std::map<const engine::CommandSpec*, Histogram*> latency_cache_;
};

}  // namespace memdb::net

#endif  // MEMDB_NET_SERVER_H_
