// IoThreadPool: the fork/join worker pool behind the server's io-threads
// mode (paper §Enhanced I/O Multiplexing; Redis' io-threads). The loop
// thread posts a batch of independent jobs (read+parse one connection,
// flush one connection); jobs are statically partitioned — worker w takes
// indices w+1, w+1+stride, ... and the caller takes 0, stride, ... — and
// Run() returns only after every job finished, a barrier that also
// publishes all connection state back to the caller. Static slices (rather
// than a shared claim cursor) make it impossible for a worker that wakes
// late to touch a later generation's jobs with a stale closure.
//
// With zero extra threads the pool degenerates to an inline loop, so the
// single-threaded configuration pays no synchronization cost.

#ifndef MEMDB_NET_IO_THREADS_H_
#define MEMDB_NET_IO_THREADS_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <thread>
#include <vector>

#include "common/sync.h"

namespace memdb::net {

class IoThreadPool {
 public:
  // `extra_threads` workers are spawned in addition to the calling thread.
  explicit IoThreadPool(int extra_threads);
  ~IoThreadPool();
  IoThreadPool(const IoThreadPool&) = delete;
  IoThreadPool& operator=(const IoThreadPool&) = delete;

  // Runs fn(0..jobs-1) across the workers plus the calling thread and
  // returns when all jobs completed. Only the loop thread may call this;
  // fn must not recurse into Run().
  void Run(size_t jobs, const std::function<void(size_t)>& fn);

  int threads() const { return static_cast<int>(workers_.size()) + 1; }

 private:
  void WorkerMain(size_t slice);

  const size_t stride_;  // workers + caller; fixed before threads spawn
  std::vector<std::thread> workers_;

  memdb::Mutex mu_;
  memdb::CondVar work_cv_;
  memdb::CondVar done_cv_;
  // bumped per Run(); workers run each gen once
  uint64_t generation_ GUARDED_BY(mu_) = 0;
  bool stop_ GUARDED_BY(mu_) = false;
  const std::function<void(size_t)>* fn_ GUARDED_BY(mu_) = nullptr;
  size_t jobs_ GUARDED_BY(mu_) = 0;
  size_t completed_ GUARDED_BY(mu_) = 0;
};

}  // namespace memdb::net

#endif  // MEMDB_NET_IO_THREADS_H_
