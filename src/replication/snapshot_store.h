// SnapshotStore: snapshot naming and manifest conventions over an
// FsObjectStore — the piece of §4.2 that says *where* snapshots live and
// how a recovering node finds the latest one without peer interaction.
//
// Layout per shard:
//   snap/<shard>/<%020u position>   snapshot blobs, zero-padded so the
//                                   lexicographically last key is the
//                                   newest snapshot
//   manifest/<shard>                small pointer blob naming the current
//                                   snapshot (written after the blob, so a
//                                   crash between the two leaves the old
//                                   manifest pointing at the old snapshot)
//
// GetLatest prefers the manifest and falls back to listing the snap/
// prefix (covers a store whose manifest write was lost), so recovery works
// from either.

#ifndef MEMDB_REPLICATION_SNAPSHOT_STORE_H_
#define MEMDB_REPLICATION_SNAPSHOT_STORE_H_

#include <cstdint>
#include <string>

#include "common/status.h"
#include "engine/snapshot.h"
#include "storage/fs_object_store.h"

namespace memdb::replication {

struct SnapshotManifest {
  std::string object_key;          // snap/<shard>/<position>
  uint64_t log_position = 0;       // last log entry the snapshot contains
  uint64_t log_running_checksum = 0;
  std::string engine_version;
  uint64_t created_at_ms = 0;

  std::string Encode() const;
  static bool Decode(Slice data, SnapshotManifest* out);
};

class SnapshotStore {
 public:
  SnapshotStore(storage::FsObjectStore* store, std::string shard_id);

  // Uploads `blob` (a SerializeSnapshot product) under its position key,
  // then atomically repoints the manifest at it.
  Status PutSnapshot(const std::string& blob, const engine::SnapshotMeta& meta);

  // Fetches the newest snapshot blob + manifest. NotFound when the store
  // holds no snapshot for this shard (fresh cluster — replay from index 1).
  Status GetLatest(std::string* blob, SnapshotManifest* manifest);

  const std::string& shard_id() const { return shard_id_; }

  static std::string SnapshotKey(const std::string& shard_id,
                                 uint64_t position);

 private:
  std::string ManifestKey() const { return "manifest/" + shard_id_; }

  storage::FsObjectStore* const store_;
  std::string shard_id_;
};

}  // namespace memdb::replication

#endif  // MEMDB_REPLICATION_SNAPSHOT_STORE_H_
