#include "replication/recovery.h"

#include <chrono>

#include "common/coding.h"
#include "common/crc.h"

namespace memdb::replication {

namespace {
uint64_t WallMs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}
}  // namespace

bool ApplyEffectBatch(engine::Engine* engine, Slice payload, uint64_t now_ms) {
  Decoder dec(payload);
  std::string version;
  if (!dec.GetLengthPrefixed(&version)) return false;
  while (!dec.Empty()) {
    uint64_t argc = 0;
    if (!dec.GetVarint64(&argc) || argc == 0) return false;
    engine::Argv argv(argc);
    for (uint64_t i = 0; i < argc; ++i) {
      if (!dec.GetLengthPrefixed(&argv[i])) return false;
    }
    engine->Apply(argv, now_ms);
  }
  return true;
}

Status RestoreFromStore(SnapshotStore* store, engine::Engine* engine,
                        RestoreResult* result) {
  *result = RestoreResult();
  std::string blob;
  SnapshotManifest manifest;
  Status s = store->GetLatest(&blob, &manifest);
  if (s.IsNotFound()) return Status::OK();  // cold start
  MEMDB_RETURN_IF_ERROR(s);
  engine::SnapshotMeta meta;
  MEMDB_RETURN_IF_ERROR(
      engine::DeserializeSnapshot(Slice(blob), &engine->keyspace(), &meta));
  result->snapshot_position = meta.log_position;
  result->applied_index = meta.log_position;
  result->running_checksum = meta.log_running_checksum;
  return Status::OK();
}

// lint:off-loop -- peer-less restore path: runs on the node's startup
// thread before any event loop exists; blocking sync reads are the point.
Status ReplayLogTail(txlog::RemoteClient* client, engine::Engine* engine,
                     RestoreResult* result, uint64_t target_tail) {
  uint64_t target = target_tail;
  if (target == 0) {
    // Reads may be served by a lagging follower whose commit index trails
    // the leader's — pinning the target to one of those would silently
    // stop recovery short of acked writes. Tail is leader-only (and
    // barrier-gated past elections), so it is the authoritative "everything
    // acked so far" mark.
    txlog::wire::ClientTailResponse tail;
    MEMDB_RETURN_IF_ERROR(client->TailSync(&tail));
    target = tail.commit_index;
  }
  // Empty reads tolerated while a lagging replica catches up to `target`;
  // commit never regresses, so exhausting these means the log group could
  // not serve its own committed tail for the whole window.
  int empty_reads_left = 100;
  for (;;) {
    if (result->applied_index >= target) return Status::OK();
    txlog::wire::ClientReadResponse resp;
    // wait_ms makes the read a long-poll when no entry is available yet;
    // a served read returns immediately regardless.
    MEMDB_RETURN_IF_ERROR(client->ReadSync(result->applied_index + 1,
                                           /*max_count=*/256,
                                           /*wait_ms=*/100, &resp));
    if (resp.first_index > result->applied_index + 1) {
      return Status::Corruption("log trimmed past snapshot position");
    }
    if (resp.entries.empty()) {
      if (--empty_reads_left <= 0) {
        return Status::TimedOut("log tail not served up to target");
      }
      continue;
    }
    const uint64_t now_ms = WallMs();
    for (const txlog::LogEntry& e : resp.entries) {
      if (e.index > target) break;
      if (e.record.type == txlog::RecordType::kData) {
        if (!ApplyEffectBatch(engine, Slice(e.record.payload), now_ms)) {
          return Status::Corruption("malformed effect batch at log index " +
                                    std::to_string(e.index));
        }
        result->running_checksum =
            Crc64(result->running_checksum, Slice(e.record.payload));
        ++result->data_records_replayed;
      } else if (e.record.type == txlog::RecordType::kChecksum) {
        Decoder dec(e.record.payload);
        uint64_t expected = 0;
        if (dec.GetFixed64(&expected) &&
            expected != result->running_checksum) {
          return Status::Corruption("log checksum chain mismatch at index " +
                                    std::to_string(e.index));
        }
        ++result->checksum_records_verified;
      }
      result->applied_index = e.index;
      ++result->entries_replayed;
    }
    if (result->applied_index >= target) return Status::OK();
  }
}

}  // namespace memdb::replication
