#include "replication/snapshot_store.h"

#include <cstdio>

#include "common/coding.h"

namespace memdb::replication {

std::string SnapshotManifest::Encode() const {
  std::string out;
  PutLengthPrefixed(&out, object_key);
  PutVarint64(&out, log_position);
  PutFixed64(&out, log_running_checksum);
  PutLengthPrefixed(&out, engine_version);
  PutVarint64(&out, created_at_ms);
  return out;
}

bool SnapshotManifest::Decode(Slice data, SnapshotManifest* out) {
  Decoder dec(data);
  return dec.GetLengthPrefixed(&out->object_key) &&
         dec.GetVarint64(&out->log_position) &&
         dec.GetFixed64(&out->log_running_checksum) &&
         dec.GetLengthPrefixed(&out->engine_version) &&
         dec.GetVarint64(&out->created_at_ms);
}

SnapshotStore::SnapshotStore(storage::FsObjectStore* store,
                             std::string shard_id)
    : store_(store), shard_id_(std::move(shard_id)) {}

std::string SnapshotStore::SnapshotKey(const std::string& shard_id,
                                       uint64_t position) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%020llu",
                static_cast<unsigned long long>(position));
  return "snap/" + shard_id + "/" + buf;
}

Status SnapshotStore::PutSnapshot(const std::string& blob,
                                  const engine::SnapshotMeta& meta) {
  SnapshotManifest manifest;
  manifest.object_key = SnapshotKey(shard_id_, meta.log_position);
  manifest.log_position = meta.log_position;
  manifest.log_running_checksum = meta.log_running_checksum;
  manifest.engine_version = meta.engine_version;
  manifest.created_at_ms = meta.created_at_ms;
  // Blob first, manifest second: readers either see the new manifest (blob
  // already durable) or the old one (new blob invisible but harmless).
  MEMDB_RETURN_IF_ERROR(store_->Put(manifest.object_key, Slice(blob)));
  return store_->Put(ManifestKey(), Slice(manifest.Encode()));
}

Status SnapshotStore::GetLatest(std::string* blob, SnapshotManifest* manifest) {
  std::string raw;
  Status s = store_->Get(ManifestKey(), &raw);
  if (s.ok() && SnapshotManifest::Decode(Slice(raw), manifest) &&
      store_->Get(manifest->object_key, blob).ok()) {
    return Status::OK();
  }
  // No (or stale/corrupt) manifest: fall back to the newest blob under the
  // snap/ prefix and reconstruct the manifest from its embedded meta.
  std::vector<std::string> keys;
  MEMDB_RETURN_IF_ERROR(store_->List("snap/" + shard_id_ + "/", &keys));
  while (!keys.empty()) {
    const std::string key = keys.back();
    keys.pop_back();
    if (!store_->Get(key, blob).ok()) continue;
    engine::SnapshotMeta meta;
    if (!engine::ReadSnapshotMeta(Slice(*blob), &meta).ok()) continue;
    manifest->object_key = key;
    manifest->log_position = meta.log_position;
    manifest->log_running_checksum = meta.log_running_checksum;
    manifest->engine_version = meta.engine_version;
    manifest->created_at_ms = meta.created_at_ms;
    return Status::OK();
  }
  return Status::NotFound("no snapshot for shard " + shard_id_);
}

}  // namespace memdb::replication
