// LogFollower: a replica's feed from the transaction log (§4.2.1 — replicas
// are log consumers, not primary peers). It owns an rpc::LoopThread running
// a txlog::RemoteClient that long-polls txlog.ReadStream for committed
// entries past the replica's applied index and hands them to the embedding
// server through a mutex-bridged queue — the mirror image of
// net::RemoteLogGate on the write side.
//
// Threading: the fetch machinery (long-poll issue, retry backoff, link
// state) runs on the follower's own LoopThread; the embedding RespServer
// loop calls DrainEntries()/NoteApplied() from its thread. on_entries (the
// server's EventLoop::Wakeup) may be invoked from the follower thread.
//
// Backpressure: when fetched-but-undrained entries exceed
// max_queued_bytes, the follower stops issuing reads until a drain brings
// the queue back under the cap — a slow replica lags (visible in the lag
// gauges) instead of buffering without bound.
//
// Failure surfaces:
//   * link_up() false while reads are erroring (log group unreachable /
//     quorum lost); polling continues with backoff and the flag recovers
//     on the next successful read.
//   * log_trimmed() true is terminal: the group trimmed past our applied
//     index, so the replica can never catch up by following and must be
//     restarted with --restore to reseed from the snapshot store.

#ifndef MEMDB_REPLICATION_LOG_FOLLOWER_H_
#define MEMDB_REPLICATION_LOG_FOLLOWER_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/status.h"
#include "common/sync.h"
#include "rpc/loop.h"
#include "txlog/record.h"
#include "txlog/remote_client.h"

namespace memdb::replication {

class LogFollower {
 public:
  struct Options {
    std::vector<std::string> endpoints;  // host:port per txlogd replica
    uint64_t start_index = 1;            // first log index to fetch
    uint64_t poll_wait_ms = 200;         // server-side long-poll window
    uint64_t max_batch = 256;            // entries per read
    size_t max_queued_bytes = 64u << 20;
    uint64_t rpc_timeout_ms = 300;
    uint64_t retry_backoff_ms = 100;     // delay after a failed read
  };

  // Instruments are resolved from `registry` at construction. The follower
  // registers: gauges repl_lag_records / repl_lag_bytes / repl_link_up /
  // repl_last_commit_index, counter repl_fetch_errors_total. (The applied-
  // index gauge belongs to the applier; see NoteApplied.)
  LogFollower(Options options, MetricsRegistry* registry);
  ~LogFollower();
  LogFollower(const LogFollower&) = delete;
  LogFollower& operator=(const LogFollower&) = delete;

  // on_entries fires (from the follower thread) whenever new entries are
  // queued; wire it to the embedding server's EventLoop::Wakeup.
  Status Start(std::function<void()> on_entries);
  void Stop();

  // Thread-safe; returns fetched entries in log order, at-most-once each.
  std::vector<txlog::LogEntry> DrainEntries();

  // The applier reports progress after applying drained entries; updates
  // the lag gauges. Thread-safe (called from the applier's thread).
  void NoteApplied(uint64_t applied_index);

  // Last commit index observed on the log group (acquire; 0 until the
  // first successful read).
  uint64_t last_commit_index() const {
    return last_commit_index_.load(std::memory_order_acquire);
  }
  bool link_up() const { return link_up_.load(std::memory_order_acquire); }
  bool log_trimmed() const {
    return log_trimmed_.load(std::memory_order_acquire);
  }

  txlog::RemoteClient* client() { return client_.get(); }

 private:
  // Follower-loop-thread only.
  void IssueRead();
  void OnReadDone(const Status& status,
                  const txlog::wire::ClientReadResponse& resp);

  Options options_;
  rpc::LoopThread loop_;
  std::unique_ptr<txlog::RemoteClient> client_;
  std::function<void()> on_entries_;
  bool started_ = false;

  Gauge* lag_records_ = nullptr;
  Gauge* lag_bytes_ = nullptr;
  Gauge* link_gauge_ = nullptr;
  Gauge* commit_gauge_ = nullptr;
  Counter* fetch_errors_ = nullptr;

  // Follower-loop-thread state.
  uint64_t next_index_ = 1;    // next log index to request
  bool read_inflight_ = false;
  bool paused_ = false;        // over the queued-bytes cap

  std::atomic<uint64_t> last_commit_index_{0};
  std::atomic<uint64_t> applied_index_{0};
  std::atomic<bool> link_up_{false};
  std::atomic<bool> log_trimmed_{false};
  std::atomic<bool> stopping_{false};

  // Bridge between the follower loop (producer) and the applier (consumer).
  memdb::Mutex mu_;
  std::deque<txlog::LogEntry> queue_ GUARDED_BY(mu_);
  size_t queued_bytes_ GUARDED_BY(mu_) = 0;
};

}  // namespace memdb::replication

#endif  // MEMDB_REPLICATION_LOG_FOLLOWER_H_
