#include "replication/log_follower.h"

#include <utility>

namespace memdb::replication {

namespace {
size_t EntryBytes(const txlog::LogEntry& e) {
  // Payload dominates; the fixed fields are noise for backpressure purposes.
  return e.record.payload.size() + 32;
}
}  // namespace

LogFollower::LogFollower(Options options, MetricsRegistry* registry)
    : options_(std::move(options)), next_index_(options_.start_index) {
  if (registry != nullptr) {
    lag_records_ = registry->GetGauge("repl_lag_records");
    lag_bytes_ = registry->GetGauge("repl_lag_bytes");
    link_gauge_ = registry->GetGauge("repl_link_up");
    commit_gauge_ = registry->GetGauge("repl_last_commit_index");
    fetch_errors_ = registry->GetCounter("repl_fetch_errors_total");
  }
  // RemoteClient resolves its rpc_* instruments before Start() spawns the
  // loop thread, so registry mutation stays single-threaded.
  txlog::RemoteClient::Options copt;
  copt.writer_id = 0;  // pure reader; never appends
  copt.rpc_timeout_ms = options_.rpc_timeout_ms;
  client_ = std::make_unique<txlog::RemoteClient>(&loop_, options_.endpoints,
                                                  copt, registry);
  applied_index_.store(
      options_.start_index > 0 ? options_.start_index - 1 : 0,
      std::memory_order_relaxed);
}

LogFollower::~LogFollower() { Stop(); }

Status LogFollower::Start(std::function<void()> on_entries) {
  if (options_.endpoints.empty()) {
    return Status::InvalidArgument("log follower needs endpoints");
  }
  on_entries_ = std::move(on_entries);
  MEMDB_RETURN_IF_ERROR(loop_.Start());
  started_ = true;
  loop_.Post([this] { IssueRead(); });
  return Status::OK();
}

void LogFollower::Stop() {
  if (!started_) return;
  started_ = false;
  stopping_.store(true, std::memory_order_release);
  client_->Shutdown();
  loop_.Stop();
}

std::vector<txlog::LogEntry> LogFollower::DrainEntries() {
  std::vector<txlog::LogEntry> out;
  bool resume = false;
  {
    MutexLock lock(&mu_);
    out.assign(std::make_move_iterator(queue_.begin()),
               std::make_move_iterator(queue_.end()));
    queue_.clear();
    resume = queued_bytes_ > options_.max_queued_bytes;
    queued_bytes_ = 0;
    if (lag_bytes_ != nullptr) lag_bytes_->Set(0);
  }
  if (resume && !stopping_.load(std::memory_order_acquire)) {
    // The fetch side paused at the cap; the drain made room.
    loop_.Post([this] {
      if (paused_) {
        paused_ = false;
        IssueRead();
      }
    });
  }
  return out;
}

void LogFollower::NoteApplied(uint64_t applied_index) {
  applied_index_.store(applied_index, std::memory_order_release);
  const uint64_t commit = last_commit_index_.load(std::memory_order_acquire);
  if (lag_records_ != nullptr) {
    lag_records_->Set(commit > applied_index
                          ? static_cast<int64_t>(commit - applied_index)
                          : 0);
  }
}

void LogFollower::IssueRead() {
  loop_.AssertOnLoopThread();
  if (read_inflight_ || paused_ ||
      stopping_.load(std::memory_order_acquire)) {
    return;
  }
  {
    MutexLock lock(&mu_);
    if (queued_bytes_ > options_.max_queued_bytes) {
      paused_ = true;  // DrainEntries resumes us
      return;
    }
  }
  read_inflight_ = true;
  client_->Read(next_index_, options_.max_batch, options_.poll_wait_ms,
                [this](const Status& s,
                       const txlog::wire::ClientReadResponse& resp) {
                  OnReadDone(s, resp);
                });
}

void LogFollower::OnReadDone(const Status& status,
                             const txlog::wire::ClientReadResponse& resp) {
  loop_.AssertOnLoopThread();
  read_inflight_ = false;
  if (stopping_.load(std::memory_order_acquire)) return;

  if (!status.ok()) {
    link_up_.store(false, std::memory_order_release);
    if (link_gauge_ != nullptr) link_gauge_->Set(0);
    if (fetch_errors_ != nullptr) fetch_errors_->Increment();
    loop_.After(options_.retry_backoff_ms, [this] { IssueRead(); });
    return;
  }

  link_up_.store(true, std::memory_order_release);
  if (link_gauge_ != nullptr) link_gauge_->Set(1);
  last_commit_index_.store(resp.commit_index, std::memory_order_release);
  if (commit_gauge_ != nullptr) {
    commit_gauge_->Set(static_cast<int64_t>(resp.commit_index));
  }

  if (resp.first_index > next_index_) {
    // The group trimmed history we still need; following cannot recover
    // from this — the process must restart with --restore.
    log_trimmed_.store(true, std::memory_order_release);
    link_up_.store(false, std::memory_order_release);
    if (link_gauge_ != nullptr) link_gauge_->Set(0);
    if (on_entries_) on_entries_();  // let the server notice and log
    return;
  }

  size_t added_bytes = 0;
  size_t added = 0;
  {
    MutexLock lock(&mu_);
    for (const txlog::LogEntry& e : resp.entries) {
      if (e.index < next_index_) continue;  // overlap from a retried read
      queue_.push_back(e);
      queued_bytes_ += EntryBytes(e);
      next_index_ = e.index + 1;
      ++added;
      added_bytes += e.record.payload.size();
    }
    if (lag_bytes_ != nullptr) {
      lag_bytes_->Set(static_cast<int64_t>(queued_bytes_));
    }
  }
  (void)added_bytes;
  // Refresh record lag against the commit index just observed (the applier
  // also refreshes on NoteApplied; both write the same monotonic inputs).
  NoteApplied(applied_index_.load(std::memory_order_acquire));
  if (added > 0 && on_entries_) on_entries_();
  IssueRead();
}

}  // namespace memdb::replication
