// memorydb-snapshotd: off-box snapshot daemon (paper §4.2.2) — builds
// snapshots from the transaction log and the snapshot store alone, so the
// serving primary never forks or stalls for persistence. Periodically (or
// once with --once) it runs the shadow-cluster cycle in
// replication::OffboxRunner: restore latest snapshot, replay the log tail
// with checksum-chain verification, dump, rehearse the restore, upload,
// and hint the log group to trim covered history.
//
//   memorydb-snapshotd --txlog HOST:PORT,HOST:PORT,... --store-dir PATH
//                      [--shard-id ID] [--interval-ms N] [--once]
//                      [--trim-slack N] [--no-trim] [--no-fsync]
//                      [--trace-file PATH] [--stats-port N]
//
// --stats-port serves svc.Metrics + svc.TraceDump over rpc (memorydb-stat
// scrapes it); --trace-file writes the cycle spans as JSONL at shutdown
// for offline merging with tools/memorydb-trace.
//
// Runs until SIGINT/SIGTERM (or one cycle with --once; exit status reflects
// that cycle's outcome).

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "common/trace_export.h"
#include "replication/offbox_runner.h"

namespace {

volatile std::sig_atomic_t g_stop = 0;

void OnSignal(int) { g_stop = 1; }

bool ParseUint(const char* s, uint64_t* out) {
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s, &end, 10);
  if (end == s || *end != '\0') return false;
  *out = v;
  return true;
}

std::vector<std::string> SplitList(const std::string& s) {
  std::vector<std::string> out;
  size_t start = 0;
  while (start <= s.size()) {
    const size_t comma = s.find(',', start);
    if (comma == std::string::npos) {
      if (start < s.size()) out.push_back(s.substr(start));
      break;
    }
    if (comma > start) out.push_back(s.substr(start, comma - start));
    start = comma + 1;
  }
  return out;
}

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --txlog HOST:PORT,HOST:PORT,... --store-dir PATH\n"
               "          [--shard-id ID] [--interval-ms N] [--once]\n"
               "          [--trim-slack N] [--no-trim] [--no-fsync]\n"
               "          [--trace-file PATH] [--stats-port N]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  memdb::replication::OffboxRunner::Options options;
  uint64_t interval_ms = 10000;
  bool once = false;
  std::string trace_file;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const bool has_value = i + 1 < argc;
    uint64_t v = 0;
    if (arg == "--txlog" && has_value) {
      options.endpoints = SplitList(argv[++i]);
    } else if (arg == "--store-dir" && has_value) {
      options.store_dir = argv[++i];
    } else if (arg == "--shard-id" && has_value) {
      options.shard_id = argv[++i];
    } else if (arg == "--interval-ms" && has_value && ParseUint(argv[++i], &v) &&
               v > 0) {
      interval_ms = v;
    } else if (arg == "--once") {
      once = true;
    } else if (arg == "--trim-slack" && has_value && ParseUint(argv[++i], &v)) {
      options.trim_slack = v;
    } else if (arg == "--no-trim") {
      options.issue_trim = false;
    } else if (arg == "--no-fsync") {
      options.fsync = false;
    } else if (arg == "--trace-file" && has_value) {
      trace_file = argv[++i];
    } else if (arg == "--stats-port" && has_value && ParseUint(argv[++i], &v) &&
               v <= 65535) {
      options.serve_stats = true;
      options.stats_port = static_cast<uint16_t>(v);
    } else {
      return Usage(argv[0]);
    }
  }
  if (options.endpoints.empty() || options.store_dir.empty()) {
    return Usage(argv[0]);
  }

  memdb::replication::OffboxRunner runner(options);
  const memdb::Status s = runner.Start();
  if (!s.ok()) {
    std::fprintf(stderr, "memorydb-snapshotd: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("memorydb-snapshotd shard %s: store=%s, %zu log endpoints%s\n",
              options.shard_id.c_str(), options.store_dir.c_str(),
              options.endpoints.size(), once ? ", single cycle" : "");
  if (options.serve_stats) {
    std::printf("memorydb-snapshotd: stats on %s:%u\n",
                options.stats_bind.c_str(), runner.stats_port());
  }
  std::fflush(stdout);

  std::signal(SIGINT, OnSignal);
  std::signal(SIGTERM, OnSignal);
  std::signal(SIGPIPE, SIG_IGN);

  int rc = 0;
  do {
    memdb::replication::OffboxRunner::CycleResult result;
    const memdb::Status cs = runner.RunCycle(&result);
    if (cs.ok()) {
      std::printf(
          "memorydb-snapshotd: cycle ok: position=%llu replayed=%llu "
          "bytes=%zu%s%s\n",
          static_cast<unsigned long long>(result.position),
          static_cast<unsigned long long>(result.entries_replayed),
          result.snapshot_bytes, result.uploaded ? " uploaded" : " (no-op)",
          result.trimmed_first_index > 0 ? " trimmed" : "");
      rc = 0;
    } else {
      std::fprintf(stderr, "memorydb-snapshotd: cycle failed: %s\n",
                   cs.ToString().c_str());
      rc = 1;
    }
    std::fflush(stdout);
    if (once) break;
    // Sleep in small slices so signals are honored promptly.
    for (uint64_t slept = 0; slept < interval_ms && !g_stop; slept += 50) {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
  } while (!g_stop);

  std::printf("memorydb-snapshotd: shutting down\n");
  runner.Stop();
  if (!trace_file.empty()) {
    const std::string jsonl =
        memdb::ExportSpansJsonl(runner.trace_log(), "snapshotd");
    std::FILE* f = std::fopen(trace_file.c_str(), "w");
    if (f != nullptr) {
      std::fwrite(jsonl.data(), 1, jsonl.size(), f);
      std::fclose(f);
    } else {
      std::fprintf(stderr, "memorydb-snapshotd: cannot write trace file %s\n",
                   trace_file.c_str());
    }
  }
  return once ? rc : 0;
}
