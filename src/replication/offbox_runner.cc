#include "replication/offbox_runner.h"

#include <chrono>
#include <utility>

#include "common/trace_export.h"
#include "engine/engine.h"
#include "replication/recovery.h"
#include "txlog/rpc_wire.h"

namespace memdb::replication {

namespace {
uint64_t WallMs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

uint64_t NowUs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// Trace-id origin for snapshot cycles — outside the writer-id space used by
// primaries, so merged trace files cannot collide.
constexpr uint64_t kSnapTraceOrigin = 0xA5;
}  // namespace

OffboxRunner::OffboxRunner(Options options, MetricsRegistry* registry)
    : options_(std::move(options)),
      store_(options_.store_dir,
             storage::FsObjectStore::Options{options_.fsync}),
      snapshots_(&store_, options_.shard_id) {
  registry_ = registry != nullptr ? registry : &own_metrics_;
  cycles_ = registry_->GetCounter("offbox_cycles_total");
  failures_ = registry_->GetCounter("offbox_cycle_failures_total");
  verification_failures_ =
      registry_->GetCounter("offbox_verification_failures_total");
  last_position_ = registry_->GetGauge("offbox_last_snapshot_position");
  txlog::RemoteClient::Options copt;
  copt.writer_id = 0;  // reader + trim hints only
  copt.rpc_timeout_ms = options_.rpc_timeout_ms;
  client_ = std::make_unique<txlog::RemoteClient>(&loop_, options_.endpoints,
                                                  copt, registry_);
  if (options_.serve_stats) {
    stats_server_ = std::make_unique<rpc::Server>(&loop_, options_.stats_bind,
                                                  options_.stats_port);
    stats_server_->RegisterHandler(
        txlog::rpcwire::kMetrics, [this](rpc::Server::Call&& call) {
          call.respond(rpc::Code::kOk, registry_->ExpositionText());
        });
    stats_server_->RegisterHandler(
        txlog::rpcwire::kTraceDump, [this](rpc::Server::Call&& call) {
          call.respond(rpc::Code::kOk, ExportSpansJsonl(trace_, "snapshotd"));
        });
  }
}

OffboxRunner::~OffboxRunner() { Stop(); }

Status OffboxRunner::Start() {
  if (options_.endpoints.empty()) {
    return Status::InvalidArgument("offbox runner needs txlog endpoints");
  }
  MEMDB_RETURN_IF_ERROR(store_.Open());
  MEMDB_RETURN_IF_ERROR(loop_.Start());
  if (stats_server_ != nullptr) {
    const Status s = stats_server_->Start();
    if (!s.ok()) {
      loop_.Stop();
      return s;
    }
  }
  started_ = true;
  return Status::OK();
}

void OffboxRunner::Stop() {
  if (!started_) return;
  started_ = false;
  if (stats_server_ != nullptr) stats_server_->Stop();
  client_->Shutdown();
  loop_.Stop();
}

uint16_t OffboxRunner::stats_port() const {
  return stats_server_ != nullptr ? stats_server_->port() : 0;
}

// lint:off-loop -- snapshot cycle runs on the offbox daemon's own thread
// (restore -> replay -> rehearse -> upload); blocking sync reads are the
// point of being off-box.
Status OffboxRunner::RunCycle(CycleResult* out) {
  *out = CycleResult();
  if (cycles_ != nullptr) cycles_->Increment();
  // One trace per cycle; the spans bound every §4.2.2 stage so a merged
  // trace shows where snapshot production spends its time.
  const uint64_t trace_id = MakeTraceId(kSnapTraceOrigin, ++cycle_seq_);
  trace_.Record(trace_id, "snap.cycle.begin", NowUs());
  Status s = [&]() -> Status {
    // 1. Pin the cycle target: everything committed as of now.
    txlog::wire::ClientTailResponse tail;
    MEMDB_RETURN_IF_ERROR(client_->TailSync(&tail));
    const uint64_t target = tail.commit_index;
    trace_.Record(trace_id, "snap.cycle.tail", NowUs(), target);

    // 2. Restore the prior snapshot into a private engine.
    engine::Engine engine;
    RestoreResult rr;
    Status restore = RestoreFromStore(&snapshots_, &engine, &rr);
    if (restore.IsCorruption() && verification_failures_ != nullptr) {
      verification_failures_->Increment();
    }
    MEMDB_RETURN_IF_ERROR(restore);
    out->restored_from_snapshot = rr.snapshot_position > 0;
    trace_.Record(trace_id, "snap.cycle.restore", NowUs(),
                  rr.snapshot_position);

    if (target <= rr.snapshot_position) {
      // Nothing committed past the snapshot we already have.
      out->position = rr.snapshot_position;
      out->running_checksum = rr.running_checksum;
      return Status::OK();
    }

    // 3. Replay the tail, verifying the checksum chain as we go.
    Status replay = ReplayLogTail(client_.get(), &engine, &rr, target);
    if (replay.IsCorruption() && verification_failures_ != nullptr) {
      verification_failures_->Increment();
    }
    MEMDB_RETURN_IF_ERROR(replay);
    out->entries_replayed = rr.entries_replayed;
    trace_.Record(trace_id, "snap.cycle.replay", NowUs(),
                  rr.entries_replayed);
    if (rr.data_records_replayed == 0) {
      // The tail moved but carried no data — election noop barriers and
      // checksum records don't change the keyspace, so re-uploading the
      // same state under a newer position would be a redundant snapshot.
      out->position = rr.applied_index;
      out->running_checksum = rr.running_checksum;
      return Status::OK();
    }

    // 4. Dump.
    engine::SnapshotMeta meta;
    meta.log_position = rr.applied_index;
    meta.log_running_checksum = rr.running_checksum;
    meta.created_at_ms = WallMs();
    const std::string blob = SerializeSnapshot(engine.keyspace(), meta);
    trace_.Record(trace_id, "snap.cycle.dump", NowUs(), blob.size());

    // 5. Rehearse the restore before anything depends on this blob.
    engine::Keyspace scratch;
    engine::SnapshotMeta rehearsed;
    Status rehearse = engine::DeserializeSnapshot(Slice(blob), &scratch,
                                                  &rehearsed);
    if (!rehearse.ok()) {
      if (verification_failures_ != nullptr) {
        verification_failures_->Increment();
      }
      return Status::Corruption("snapshot failed restore rehearsal: " +
                                rehearse.ToString());
    }
    trace_.Record(trace_id, "snap.cycle.rehearse", NowUs());

    // 6. Upload.
    MEMDB_RETURN_IF_ERROR(snapshots_.PutSnapshot(blob, meta));
    trace_.Record(trace_id, "snap.cycle.upload", NowUs(), blob.size());
    out->position = meta.log_position;
    out->running_checksum = meta.log_running_checksum;
    out->snapshot_bytes = blob.size();
    out->uploaded = true;
    if (last_position_ != nullptr) {
      last_position_->Set(static_cast<int64_t>(meta.log_position));
    }

    // 7. Trim hint — best-effort; a failed trim never fails the cycle.
    if (options_.issue_trim && meta.log_position > options_.trim_slack) {
      uint64_t first = 0;
      if (client_
              ->TrimSync(meta.log_position - options_.trim_slack, &first)
              .ok()) {
        out->trimmed_first_index = first;
      }
    }
    return Status::OK();
  }();
  trace_.Record(trace_id, s.ok() ? "snap.cycle.end" : "snap.cycle.fail",
                NowUs());
  if (!s.ok() && failures_ != nullptr) failures_->Increment();
  return s;
}

}  // namespace memdb::replication
