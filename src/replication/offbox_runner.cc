#include "replication/offbox_runner.h"

#include <chrono>
#include <utility>

#include "engine/engine.h"
#include "replication/recovery.h"

namespace memdb::replication {

namespace {
uint64_t WallMs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}
}  // namespace

OffboxRunner::OffboxRunner(Options options, MetricsRegistry* registry)
    : options_(std::move(options)),
      store_(options_.store_dir,
             storage::FsObjectStore::Options{options_.fsync}),
      snapshots_(&store_, options_.shard_id) {
  if (registry != nullptr) {
    cycles_ = registry->GetCounter("offbox_cycles_total");
    failures_ = registry->GetCounter("offbox_cycle_failures_total");
    verification_failures_ =
        registry->GetCounter("offbox_verification_failures_total");
    last_position_ = registry->GetGauge("offbox_last_snapshot_position");
  }
  txlog::RemoteClient::Options copt;
  copt.writer_id = 0;  // reader + trim hints only
  copt.rpc_timeout_ms = options_.rpc_timeout_ms;
  client_ = std::make_unique<txlog::RemoteClient>(&loop_, options_.endpoints,
                                                  copt, registry);
}

OffboxRunner::~OffboxRunner() { Stop(); }

Status OffboxRunner::Start() {
  if (options_.endpoints.empty()) {
    return Status::InvalidArgument("offbox runner needs txlog endpoints");
  }
  MEMDB_RETURN_IF_ERROR(store_.Open());
  MEMDB_RETURN_IF_ERROR(loop_.Start());
  started_ = true;
  return Status::OK();
}

void OffboxRunner::Stop() {
  if (!started_) return;
  started_ = false;
  client_->Shutdown();
  loop_.Stop();
}

Status OffboxRunner::RunCycle(CycleResult* out) {
  *out = CycleResult();
  if (cycles_ != nullptr) cycles_->Increment();
  Status s = [&]() -> Status {
    // 1. Pin the cycle target: everything committed as of now.
    txlog::wire::ClientTailResponse tail;
    MEMDB_RETURN_IF_ERROR(client_->TailSync(&tail));
    const uint64_t target = tail.commit_index;

    // 2. Restore the prior snapshot into a private engine.
    engine::Engine engine;
    RestoreResult rr;
    Status restore = RestoreFromStore(&snapshots_, &engine, &rr);
    if (restore.IsCorruption() && verification_failures_ != nullptr) {
      verification_failures_->Increment();
    }
    MEMDB_RETURN_IF_ERROR(restore);
    out->restored_from_snapshot = rr.snapshot_position > 0;

    if (target <= rr.snapshot_position) {
      // Nothing committed past the snapshot we already have.
      out->position = rr.snapshot_position;
      out->running_checksum = rr.running_checksum;
      return Status::OK();
    }

    // 3. Replay the tail, verifying the checksum chain as we go.
    Status replay = ReplayLogTail(client_.get(), &engine, &rr, target);
    if (replay.IsCorruption() && verification_failures_ != nullptr) {
      verification_failures_->Increment();
    }
    MEMDB_RETURN_IF_ERROR(replay);
    out->entries_replayed = rr.entries_replayed;
    if (rr.data_records_replayed == 0) {
      // The tail moved but carried no data — election noop barriers and
      // checksum records don't change the keyspace, so re-uploading the
      // same state under a newer position would be a redundant snapshot.
      out->position = rr.applied_index;
      out->running_checksum = rr.running_checksum;
      return Status::OK();
    }

    // 4. Dump.
    engine::SnapshotMeta meta;
    meta.log_position = rr.applied_index;
    meta.log_running_checksum = rr.running_checksum;
    meta.created_at_ms = WallMs();
    const std::string blob = SerializeSnapshot(engine.keyspace(), meta);

    // 5. Rehearse the restore before anything depends on this blob.
    engine::Keyspace scratch;
    engine::SnapshotMeta rehearsed;
    Status rehearse = engine::DeserializeSnapshot(Slice(blob), &scratch,
                                                  &rehearsed);
    if (!rehearse.ok()) {
      if (verification_failures_ != nullptr) {
        verification_failures_->Increment();
      }
      return Status::Corruption("snapshot failed restore rehearsal: " +
                                rehearse.ToString());
    }

    // 6. Upload.
    MEMDB_RETURN_IF_ERROR(snapshots_.PutSnapshot(blob, meta));
    out->position = meta.log_position;
    out->running_checksum = meta.log_running_checksum;
    out->snapshot_bytes = blob.size();
    out->uploaded = true;
    if (last_position_ != nullptr) {
      last_position_->Set(static_cast<int64_t>(meta.log_position));
    }

    // 7. Trim hint — best-effort; a failed trim never fails the cycle.
    if (options_.issue_trim && meta.log_position > options_.trim_slack) {
      uint64_t first = 0;
      if (client_
              ->TrimSync(meta.log_position - options_.trim_slack, &first)
              .ok()) {
        out->trimmed_first_index = first;
      }
    }
    return Status::OK();
  }();
  if (!s.ok() && failures_ != nullptr) failures_->Increment();
  return s;
}

}  // namespace memdb::replication
