// OffboxRunner: the off-box snapshotter's core (§4.2.2), run against real
// daemons by memorydb-snapshotd. One cycle is the paper's shadow-cluster
// dance, with no participation from the serving primary:
//
//   1. Tail the log group for the current commit index (the cycle target).
//   2. Restore the latest snapshot from the store into a private engine
//      (the snapshot's own data checksum validates on load, §7.2.1 step 1).
//   3. Replay the log tail past the snapshot position, recomputing the
//      running checksum and verifying every kChecksum record (step 2).
//   4. Serialize a new snapshot carrying (position, running checksum).
//   5. Rehearse-restore the fresh blob into a scratch keyspace — an
//      unrestorable snapshot is discarded, never uploaded (step 3).
//   6. Upload blob + manifest to the snapshot store.
//   7. Optionally hint the log group to trim history the snapshot now
//      covers, keeping trim_slack entries of margin for live followers
//      (§4.2.3); each log replica bounds the trim by its own commit.
//
// RunCycle blocks the calling thread (it drives *Sync client wrappers);
// the rpc machinery runs on the runner's own LoopThread. One runner, one
// caller thread — the daemon's main loop.

#ifndef MEMDB_REPLICATION_OFFBOX_RUNNER_H_
#define MEMDB_REPLICATION_OFFBOX_RUNNER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/status.h"
#include "common/trace.h"
#include "replication/snapshot_store.h"
#include "rpc/loop.h"
#include "rpc/server.h"
#include "storage/fs_object_store.h"
#include "txlog/remote_client.h"

namespace memdb::replication {

class OffboxRunner {
 public:
  struct Options {
    std::vector<std::string> endpoints;  // txlogd replicas
    std::string store_dir;               // FsObjectStore root
    std::string shard_id = "shard-0";
    // Entries kept behind the snapshot position when hinting a trim, so a
    // briefly-lagging follower does not get trimmed out from under itself.
    uint64_t trim_slack = 1024;
    bool issue_trim = true;
    bool fsync = true;  // store durability; tests turn it off
    uint64_t rpc_timeout_ms = 300;
    // Serve svc.Metrics + svc.TraceDump on this rpc port so memorydb-stat
    // can scrape the snapshotter like any other fleet member (0 = kernel
    // picks; port() reports it). Off unless serve_stats is set.
    bool serve_stats = false;
    uint16_t stats_port = 0;
    std::string stats_bind = "127.0.0.1";
  };

  struct CycleResult {
    uint64_t position = 0;          // log position of the produced snapshot
    uint64_t running_checksum = 0;
    uint64_t entries_replayed = 0;
    size_t snapshot_bytes = 0;
    bool restored_from_snapshot = false;  // cycle started from a prior blob
    bool uploaded = false;          // false when the log had nothing new
    uint64_t trimmed_first_index = 0;     // log's first index after the hint
  };

  OffboxRunner(Options options, MetricsRegistry* registry = nullptr);
  ~OffboxRunner();
  OffboxRunner(const OffboxRunner&) = delete;
  OffboxRunner& operator=(const OffboxRunner&) = delete;

  Status Start();
  void Stop();

  // One full snapshot cycle; blocking. Safe to call repeatedly.
  Status RunCycle(CycleResult* out);

  // Cycle-stage spans (snap.cycle.*), one trace id per cycle. Thread-safe
  // snapshots; recording happens on the RunCycle caller thread.
  const TraceLog& trace_log() const { return trace_; }
  // Stats listener port; meaningful after Start() when serve_stats is set.
  uint16_t stats_port() const;

 private:
  Options options_;
  rpc::LoopThread loop_;
  std::unique_ptr<txlog::RemoteClient> client_;
  storage::FsObjectStore store_;
  SnapshotStore snapshots_;
  bool started_ = false;

  // Shared registry when the caller passed one, else the runner's own —
  // either way the svc.Metrics scrape has something real to serialize.
  MetricsRegistry own_metrics_;
  MetricsRegistry* registry_ = nullptr;
  TraceLog trace_;
  uint64_t cycle_seq_ = 0;  // RunCycle caller thread only
  std::unique_ptr<rpc::Server> stats_server_;

  Counter* cycles_ = nullptr;
  Counter* failures_ = nullptr;
  Counter* verification_failures_ = nullptr;
  Gauge* last_position_ = nullptr;
};

}  // namespace memdb::replication

#endif  // MEMDB_REPLICATION_OFFBOX_RUNNER_H_
