// Peer-less recovery (§4.2.1): a starting node — primary, replica, or
// off-box snapshotter — rebuilds its state from the snapshot store plus the
// transaction log, never from another database node:
//
//   1. RestoreFromStore: load the newest snapshot (if any) into the engine;
//      it records the log position it reflects and the running checksum at
//      that position.
//   2. ReplayLogTail: read committed entries past that position from the
//      txlog group and apply their effect batches, recomputing the running
//      CRC64 chain and verifying every kChecksum record against it
//      (§7.2.1) — corrupted history fails recovery instead of serving.
//
// Both calls block the calling thread (they drive RemoteClient *Sync
// wrappers); run them during startup, before traffic is accepted.

#ifndef MEMDB_REPLICATION_RECOVERY_H_
#define MEMDB_REPLICATION_RECOVERY_H_

#include <cstdint>

#include "common/slice.h"
#include "common/status.h"
#include "engine/engine.h"
#include "replication/snapshot_store.h"
#include "txlog/remote_client.h"

namespace memdb::replication {

// Decodes one kData effect-batch payload (engine version, then per-effect
// argc + argv — the format both Node and RespServer produce) and applies
// every effect to the engine. False on a malformed payload; effects already
// applied stay applied (the payload is trusted once its frame CRC passed,
// so this only trips on version skew or producer bugs).
bool ApplyEffectBatch(engine::Engine* engine, Slice payload, uint64_t now_ms);

struct RestoreResult {
  // Log position of the loaded snapshot; 0 = cold start, no snapshot found.
  uint64_t snapshot_position = 0;
  // Last log entry whose effects are in the engine, and the running
  // checksum of the kData chain up to it — the seed for the primary's
  // continued checksum injection or a replica's follow-along verification.
  uint64_t applied_index = 0;
  uint64_t running_checksum = 0;
  uint64_t entries_replayed = 0;
  // kData entries among entries_replayed — noop barriers and checksum
  // records advance the log position without changing the keyspace, so
  // consumers that only care about "did state change" check this instead.
  uint64_t data_records_replayed = 0;
  uint64_t checksum_records_verified = 0;
};

// Loads the newest snapshot for the store's shard into `engine`, replacing
// its keyspace. A store with no snapshot yet is a cold start: OK with
// *result zeroed, not an error.
Status RestoreFromStore(SnapshotStore* store, engine::Engine* engine,
                        RestoreResult* result);

// Replays committed entries (result->applied_index, target_tail] into the
// engine. target_tail == 0 means "the commit index observed on the first
// read" — a recovery snapshot of the log, not a moving target. Corruption
// if the log was trimmed past the restore position (the snapshot is too
// old; fetch a newer one) or a checksum record disagrees with the
// recomputed chain.
Status ReplayLogTail(txlog::RemoteClient* client, engine::Engine* engine,
                     RestoreResult* result, uint64_t target_tail);

}  // namespace memdb::replication

#endif  // MEMDB_REPLICATION_RECOVERY_H_
