// Wire format between database clients and database nodes (MemoryDB nodes
// and the Redis baseline speak the same protocol, mirroring RESP semantics):
//
//   "db.command" — one command (argv) with a session-readonly flag.
//   "db.multi"   — a MULTI/EXEC transaction: all commands execute atomically
//                  and replicate as one unit.
//
// Responses carry a RESP-encoded value. Cluster redirects use standard
// Redis error shapes: "MOVED <slot> <node>" and "ASK <slot> <node>".

#ifndef MEMDB_CLIENT_DB_WIRE_H_
#define MEMDB_CLIENT_DB_WIRE_H_

#include <string>
#include <vector>

#include "common/coding.h"
#include "sim/types.h"

namespace memdb::client {

inline constexpr char kDbCommand[] = "db.command";
inline constexpr char kDbMulti[] = "db.multi";

struct DbRequest {
  std::vector<std::string> argv;
  // Client opted into replica reads (issued READONLY, §3.2).
  bool readonly = false;

  std::string Encode() const {
    std::string out;
    PutVarint64(&out, readonly ? 1 : 0);
    PutVarint64(&out, argv.size());
    for (const std::string& a : argv) PutLengthPrefixed(&out, a);
    return out;
  }
  static bool Decode(Slice data, DbRequest* out) {
    Decoder dec(data);
    uint64_t ro, argc;
    if (!dec.GetVarint64(&ro) || !dec.GetVarint64(&argc)) return false;
    out->readonly = ro != 0;
    out->argv.resize(argc);
    for (uint64_t i = 0; i < argc; ++i) {
      if (!dec.GetLengthPrefixed(&out->argv[i])) return false;
    }
    return true;
  }
};

struct DbMultiRequest {
  std::vector<std::vector<std::string>> commands;

  std::string Encode() const {
    std::string out;
    PutVarint64(&out, commands.size());
    for (const auto& argv : commands) {
      PutVarint64(&out, argv.size());
      for (const std::string& a : argv) PutLengthPrefixed(&out, a);
    }
    return out;
  }
  static bool Decode(Slice data, DbMultiRequest* out) {
    Decoder dec(data);
    uint64_t n;
    if (!dec.GetVarint64(&n)) return false;
    out->commands.resize(n);
    for (uint64_t i = 0; i < n; ++i) {
      uint64_t argc;
      if (!dec.GetVarint64(&argc)) return false;
      out->commands[i].resize(argc);
      for (uint64_t j = 0; j < argc; ++j) {
        if (!dec.GetLengthPrefixed(&out->commands[i][j])) return false;
      }
    }
    return true;
  }
};

// Parses "MOVED <slot> <node>" / "ASK <slot> <node>" error strings.
struct Redirect {
  bool is_ask = false;
  uint16_t slot = 0;
  sim::NodeId node = sim::kInvalidNode;
};

inline bool ParseRedirect(const std::string& err, Redirect* out) {
  size_t pos = 0;
  if (err.rfind("MOVED ", 0) == 0) {
    out->is_ask = false;
    pos = 6;
  } else if (err.rfind("ASK ", 0) == 0) {
    out->is_ask = true;
    pos = 4;
  } else {
    return false;
  }
  const size_t space = err.find(' ', pos);
  if (space == std::string::npos) return false;
  out->slot = static_cast<uint16_t>(std::stoul(err.substr(pos, space - pos)));
  out->node = static_cast<sim::NodeId>(std::stoul(err.substr(space + 1)));
  return true;
}

inline std::string MovedError(uint16_t slot, sim::NodeId node) {
  return "MOVED " + std::to_string(slot) + " " + std::to_string(node);
}
inline std::string AskError(uint16_t slot, sim::NodeId node) {
  return "ASK " + std::to_string(slot) + " " + std::to_string(node);
}

}  // namespace memdb::client

#endif  // MEMDB_CLIENT_DB_WIRE_H_
