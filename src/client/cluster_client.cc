#include "client/cluster_client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstdlib>
#include <cstring>
#include <thread>
#include <utility>

#include "common/crc.h"
#include "common/slice.h"

namespace memdb::client {

// One blocking socket per endpoint, kept open across commands.
struct ClusterClient::Conn {
  ~Conn() {
    if (fd >= 0) ::close(fd);
  }
  int fd = -1;
  resp::Decoder dec;
};

namespace {

bool ConnectTo(const std::string& endpoint, uint64_t timeout_ms, int* out_fd) {
  const size_t colon = endpoint.rfind(':');
  if (colon == std::string::npos) return false;
  const std::string host = endpoint.substr(0, colon);
  const int port = std::atoi(endpoint.c_str() + colon + 1);
  if (port <= 0 || port > 65535) return false;

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return false;
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(timeout_ms / 1000);
  tv.tv_usec = static_cast<suseconds_t>((timeout_ms % 1000) * 1000);
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, host == "localhost" ? "127.0.0.1" : host.c_str(),
                  &addr.sin_addr) != 1 ||
      ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return false;
  }
  *out_fd = fd;
  return true;
}

bool SendAll(int fd, const std::string& bytes) {
  size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n =
        ::send(fd, bytes.data() + off, bytes.size() - off, MSG_NOSIGNAL);
    if (n <= 0) return false;
    off += static_cast<size_t>(n);
  }
  return true;
}

bool ReadReply(int fd, resp::Decoder* dec, resp::Value* out) {
  for (;;) {
    const resp::DecodeStatus st = dec->Decode(out);
    if (st == resp::DecodeStatus::kOk) return true;
    if (st == resp::DecodeStatus::kError) return false;
    char buf[16 << 10];
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) return false;
    dec->Feed(Slice(buf, static_cast<size_t>(n)));
  }
}

bool ErrorHasPrefix(const resp::Value& v, const char* prefix) {
  return v.type == resp::Type::kError &&
         v.str.compare(0, std::strlen(prefix), prefix) == 0;
}

}  // namespace

ClusterClient::ClusterClient(std::vector<std::string> seeds, Options options)
    : seeds_(std::move(seeds)),
      options_(options),
      slot_owner_(static_cast<size_t>(kNumSlots)) {}

ClusterClient::ClusterClient(std::vector<std::string> seeds)
    : ClusterClient(std::move(seeds), Options()) {}

ClusterClient::~ClusterClient() = default;

ClusterClient::Conn* ClusterClient::GetConn(const std::string& endpoint) {
  auto it = conns_.find(endpoint);
  if (it != conns_.end()) return it->second.get();
  int fd = -1;
  if (!ConnectTo(endpoint, options_.recv_timeout_ms, &fd)) return nullptr;
  auto conn = std::make_unique<Conn>();
  conn->fd = fd;
  Conn* raw = conn.get();
  conns_.emplace(endpoint, std::move(conn));
  return raw;
}

void ClusterClient::DropConn(const std::string& endpoint) {
  conns_.erase(endpoint);
}

bool ClusterClient::RoundTrip(const std::string& endpoint,
                              const std::vector<std::string>& argv,
                              resp::Value* reply, bool asking) {
  Conn* conn = GetConn(endpoint);
  if (conn == nullptr) return false;
  // ASKING is pipelined with the command: one write, two replies. The
  // server consumes the one-shot flag on the very next command, so there is
  // no window for another command to steal it (one thread owns this
  // client).
  std::string frame;
  if (asking) frame += resp::EncodeCommand({"ASKING"});
  frame += resp::EncodeCommand(argv);
  if (!SendAll(conn->fd, frame)) {
    DropConn(endpoint);
    return false;
  }
  if (asking) {
    resp::Value ask_reply;
    if (!ReadReply(conn->fd, &conn->dec, &ask_reply)) {
      DropConn(endpoint);
      return false;
    }
  }
  if (!ReadReply(conn->fd, &conn->dec, reply)) {
    DropConn(endpoint);
    return false;
  }
  return true;
}

std::vector<std::string> ClusterClient::KnownEndpoints() const {
  std::vector<std::string> out;
  const auto push_unique = [&out](const std::string& ep) {
    if (ep.empty()) return;
    for (const std::string& have : out) {
      if (have == ep) return;
    }
    out.push_back(ep);
  };
  for (const std::string& ep : slot_owner_) push_unique(ep);
  for (const std::string& ep : seeds_) push_unique(ep);
  return out;
}

Status ClusterClient::RefreshSlotMap() {
  Status last = Status::Unavailable("no endpoints known");
  for (const std::string& ep : KnownEndpoints()) {
    last = RefreshSlotMapFrom(ep);
    if (last.ok()) return last;
  }
  return last;
}

Status ClusterClient::RefreshSlotMapFrom(const std::string& endpoint) {
  resp::Value reply;
  if (!RoundTrip(endpoint, {"CLUSTER", "SLOTS"}, &reply, false)) {
    return Status::Unavailable("CLUSTER SLOTS round trip to " + endpoint +
                               " failed");
  }
  if (reply.type != resp::Type::kArray) {
    return Status::InvalidArgument("unexpected CLUSTER SLOTS reply");
  }
  std::vector<std::string> fresh(static_cast<size_t>(kNumSlots));
  for (const resp::Value& range : reply.array) {
    // [start, end, [host, port, shard-id]]
    if (range.type != resp::Type::kArray || range.array.size() < 3 ||
        range.array[2].type != resp::Type::kArray ||
        range.array[2].array.size() < 2) {
      return Status::InvalidArgument("malformed CLUSTER SLOTS range");
    }
    const int64_t start = range.array[0].integer;
    const int64_t end = range.array[1].integer;
    if (start < 0 || end < start || end >= kNumSlots) {
      return Status::InvalidArgument("CLUSTER SLOTS range out of bounds");
    }
    const std::string ep = range.array[2].array[0].str + ":" +
                           std::to_string(range.array[2].array[1].integer);
    for (int64_t s = start; s <= end; ++s) {
      fresh[static_cast<size_t>(s)] = ep;
    }
  }
  slot_owner_ = std::move(fresh);
  ++map_refreshes_;
  return Status::OK();
}

std::string ClusterClient::EndpointForSlot(uint16_t slot) const {
  if (slot >= slot_owner_.size()) return std::string();
  return slot_owner_[slot];
}

bool ClusterClient::ParseRedirect(const std::string& error, const char* kind,
                                  uint16_t* slot, std::string* endpoint) {
  const size_t kind_len = std::strlen(kind);
  if (error.compare(0, kind_len, kind) != 0 || error.size() <= kind_len ||
      error[kind_len] != ' ') {
    return false;
  }
  const size_t slot_start = kind_len + 1;
  const size_t space = error.find(' ', slot_start);
  if (space == std::string::npos || space + 1 >= error.size()) return false;
  char* end = nullptr;
  const unsigned long v =
      std::strtoul(error.c_str() + slot_start, &end, 10);
  if (end != error.c_str() + space || v >= static_cast<unsigned long>(kNumSlots)) {
    return false;
  }
  *slot = static_cast<uint16_t>(v);
  *endpoint = error.substr(space + 1);
  return true;
}

Status ClusterClient::Execute(const std::vector<std::string>& argv,
                              resp::Value* reply) {
  if (argv.empty()) return Status::InvalidArgument("empty command");

  // Route by argv[1] (the near-universal key position; keyless commands go
  // anywhere). A wrong guess self-corrects via -MOVED.
  std::string target;
  if (argv.size() >= 2) {
    const uint16_t slot = KeyHashSlot(Slice(argv[1]));
    if (slot_owner_[slot].empty()) {
      // lint:allow-discard -- lazy warm-up; an empty owner falls through to
      // the any-node path and self-corrects via -MOVED.
      (void)RefreshSlotMap();
    }
    target = slot_owner_[slot];
  }

  int hops = 0;
  int tryagains = 0;
  int connect_failures = 0;
  bool asking = false;
  for (;;) {
    if (target.empty()) {
      // Unknown owner: probe anything reachable; MOVED will correct us.
      const std::vector<std::string> known = KnownEndpoints();
      if (known.empty()) return Status::Unavailable("no endpoints known");
      target = known[static_cast<size_t>(connect_failures) % known.size()];
    }
    if (!RoundTrip(target, argv, reply, asking)) {
      if (++connect_failures > static_cast<int>(KnownEndpoints().size()) + 1) {
        return Status::Unavailable("no cluster node reachable for command");
      }
      // The cached owner may be gone; rebuild the map from survivors and
      // let the retry pick a fresh target.
      // lint:allow-discard -- best-effort: a failed refresh leaves the stale
      // map and the retry loop probes/follows MOVED until the budget runs out.
      (void)RefreshSlotMap();
      target.clear();
      asking = false;
      continue;
    }
    if (reply->type != resp::Type::kError) return Status::OK();

    uint16_t slot = 0;
    std::string redirect_ep;
    if (ParseRedirect(reply->str, "MOVED", &slot, &redirect_ep)) {
      if (++hops > options_.max_hops) {
        return Status::Unavailable("redirect hop budget exhausted");
      }
      ++moved_redirects_;
      // Trust the redirect immediately, then refresh the whole map — one
      // MOVED usually means a whole range flipped.
      slot_owner_[slot] = redirect_ep;
      // lint:allow-discard -- best-effort: the redirect target above is
      // already trusted; a failed whole-map refresh just means more MOVEDs.
      (void)RefreshSlotMapFrom(redirect_ep);
      target = redirect_ep;
      asking = false;
      continue;
    }
    if (ParseRedirect(reply->str, "ASK", &slot, &redirect_ep)) {
      if (++hops > options_.max_hops) {
        return Status::Unavailable("redirect hop budget exhausted");
      }
      ++ask_redirects_;
      // One-shot detour; ownership has not changed, so no map update.
      target = redirect_ep;
      asking = true;
      continue;
    }
    if (ErrorHasPrefix(*reply, "TRYAGAIN")) {
      if (++tryagains > options_.max_tryagain) {
        return Status::Unavailable("TRYAGAIN budget exhausted");
      }
      ++tryagain_retries_;
      std::this_thread::sleep_for(
          std::chrono::milliseconds(options_.tryagain_backoff_ms));
      asking = false;
      continue;
    }
    // Any other error (-ERR, -READONLY, ...) is the command's real reply.
    return Status::OK();
  }
}

}  // namespace memdb::client
