// DbClient: cluster-aware client component, the moral equivalent of a Redis
// cluster client library. Owns the slot -> node routing table learned from
// MOVED/ASK redirects (§2.1: clients route requests themselves), retries
// around failovers, and supports the READONLY replica-read opt-in.

#ifndef MEMDB_CLIENT_DB_CLIENT_H_
#define MEMDB_CLIENT_DB_CLIENT_H_

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "client/db_wire.h"
#include "resp/resp.h"
#include "sim/actor.h"

namespace memdb::client {

class DbClient {
 public:
  using CommandCallback = std::function<void(const resp::Value&)>;

  struct Options {
    sim::Duration rpc_timeout = 300 * sim::kMs;
    sim::Duration retry_backoff = 25 * sim::kMs;
    int max_attempts = 30;
  };

  DbClient() = default;
  DbClient(sim::Actor* owner, std::vector<sim::NodeId> nodes);
  DbClient(sim::Actor* owner, std::vector<sim::NodeId> nodes, Options options);

  // Routes to the primary owning the command's key (argv[1] by convention);
  // retries through redirects and failovers. The callback receives the
  // final reply (an error Value if attempts are exhausted).
  void Command(std::vector<std::string> argv, CommandCallback cb);

  // Replica read: sends with the READONLY flag to a replica-eligible node
  // (round-robin across the cluster), falling back to the primary.
  void CommandReadonly(std::vector<std::string> argv, CommandCallback cb);

  // MULTI/EXEC transaction; all commands execute and replicate atomically.
  void Multi(std::vector<std::vector<std::string>> commands,
             CommandCallback cb);

  // Expands the node set (topology discovery during scaling).
  void AddNode(sim::NodeId node);

 private:
  void Attempt(std::string type, std::string payload, uint16_t slot,
               bool readonly, int attempts_left, CommandCallback cb,
               sim::NodeId forced_target);
  sim::NodeId TargetFor(uint16_t slot, bool readonly);
  static uint16_t SlotOf(const std::vector<std::string>& argv);

  sim::Actor* owner_ = nullptr;
  std::vector<sim::NodeId> nodes_;
  Options options_;
  std::map<uint16_t, sim::NodeId> slot_owner_;
  sim::NodeId default_primary_ = sim::kInvalidNode;
  size_t round_robin_ = 0;
};

}  // namespace memdb::client

#endif  // MEMDB_CLIENT_DB_CLIENT_H_
