#include "client/db_client.h"

#include <algorithm>

#include "common/crc.h"

namespace memdb::client {

using sim::NodeId;

DbClient::DbClient(sim::Actor* owner, std::vector<NodeId> nodes)
    : DbClient(owner, std::move(nodes), Options{}) {}

DbClient::DbClient(sim::Actor* owner, std::vector<NodeId> nodes,
                   Options options)
    : owner_(owner), nodes_(std::move(nodes)), options_(options) {}

void DbClient::AddNode(NodeId node) {
  if (std::find(nodes_.begin(), nodes_.end(), node) == nodes_.end()) {
    nodes_.push_back(node);
  }
}

uint16_t DbClient::SlotOf(const std::vector<std::string>& argv) {
  if (argv.size() < 2) return 0;
  return KeyHashSlot(argv[1]);
}

NodeId DbClient::TargetFor(uint16_t slot, bool readonly) {
  if (readonly) {
    round_robin_ = (round_robin_ + 1) % nodes_.size();
    return nodes_[round_robin_];
  }
  auto it = slot_owner_.find(slot);
  if (it != slot_owner_.end()) return it->second;
  if (default_primary_ != sim::kInvalidNode) return default_primary_;
  round_robin_ = (round_robin_ + 1) % nodes_.size();
  return nodes_[round_robin_];
}

void DbClient::Command(std::vector<std::string> argv, CommandCallback cb) {
  DbRequest req;
  const uint16_t slot = SlotOf(argv);
  req.argv = std::move(argv);
  Attempt(kDbCommand, req.Encode(), slot, /*readonly=*/false,
          options_.max_attempts, std::move(cb), sim::kInvalidNode);
}

void DbClient::CommandReadonly(std::vector<std::string> argv,
                               CommandCallback cb) {
  DbRequest req;
  const uint16_t slot = SlotOf(argv);
  req.argv = std::move(argv);
  req.readonly = true;
  Attempt(kDbCommand, req.Encode(), slot, /*readonly=*/true,
          options_.max_attempts, std::move(cb), sim::kInvalidNode);
}

void DbClient::Multi(std::vector<std::vector<std::string>> commands,
                     CommandCallback cb) {
  DbMultiRequest req;
  uint16_t slot = 0;
  if (!commands.empty()) slot = SlotOf(commands[0]);
  req.commands = std::move(commands);
  Attempt(kDbMulti, req.Encode(), slot, /*readonly=*/false,
          options_.max_attempts, std::move(cb), sim::kInvalidNode);
}

void DbClient::Attempt(std::string type, std::string payload, uint16_t slot,
                       bool readonly, int attempts_left, CommandCallback cb,
                       NodeId forced_target) {
  if (attempts_left <= 0) {
    cb(resp::Value::Error("ERR cluster unavailable (retries exhausted)"));
    return;
  }
  const NodeId target = forced_target != sim::kInvalidNode
                            ? forced_target
                            : TargetFor(slot, readonly);
  owner_->Rpc(
      target, type, payload, options_.rpc_timeout,
      [this, type, payload, slot, readonly, attempts_left, cb = std::move(cb),
       target](const Status& s, const std::string& body) mutable {
        if (!s.ok()) {
          // Node unreachable: forget any routing through it and retry
          // elsewhere after a backoff.
          if (default_primary_ == target) default_primary_ = sim::kInvalidNode;
          for (auto it = slot_owner_.begin(); it != slot_owner_.end();) {
            it = (it->second == target) ? slot_owner_.erase(it) : ++it;
          }
          owner_->After(options_.retry_backoff,
                        [this, type = std::move(type),
                         payload = std::move(payload), slot, readonly,
                         attempts_left, cb = std::move(cb)]() mutable {
                          Attempt(std::move(type), std::move(payload), slot,
                                  readonly, attempts_left - 1, std::move(cb),
                                  sim::kInvalidNode);
                        });
          return;
        }
        resp::Decoder dec;
        dec.Feed(body);
        resp::Value value;
        if (dec.Decode(&value) != resp::DecodeStatus::kOk) {
          cb(resp::Value::Error("ERR bad reply encoding"));
          return;
        }
        if (value.IsError()) {
          Redirect redirect;
          if (ParseRedirect(value.str, &redirect)) {
            AddNode(redirect.node);
            if (!redirect.is_ask) {
              slot_owner_[redirect.slot] = redirect.node;
              slot_owner_[slot] = redirect.node;  // the slot we actually asked
              default_primary_ = redirect.node;
            }
            // Small backoff: during a failover window replicas may point at
            // a primary-elect that has not finished promoting.
            owner_->After(
                5 * sim::kMs,
                [this, type = std::move(type), payload = std::move(payload),
                 slot, readonly, attempts_left, cb = std::move(cb),
                 redirect]() mutable {
                  Attempt(std::move(type), std::move(payload), slot, readonly,
                          attempts_left - 1, std::move(cb),
                          redirect.is_ask ? redirect.node : sim::kInvalidNode);
                });
            return;
          }
          if (value.str.rfind("LOADING", 0) == 0 ||
              value.str.rfind("UNAVAILABLE", 0) == 0 ||
              value.str.rfind("CLUSTERDOWN", 0) == 0) {
            owner_->After(options_.retry_backoff,
                          [this, type = std::move(type),
                           payload = std::move(payload), slot, readonly,
                           attempts_left, cb = std::move(cb)]() mutable {
                            Attempt(std::move(type), std::move(payload), slot,
                                    readonly, attempts_left - 1, std::move(cb),
                                    sim::kInvalidNode);
                          });
            return;
          }
        } else if (!readonly) {
          // Success through this node: remember it as the slot owner.
          slot_owner_[slot] = target;
          default_primary_ = target;
        }
        cb(value);
      });
}

}  // namespace memdb::client
