// ClusterClient: real-socket cluster-aware client — the wire counterpart of
// the simulated DbClient. Learns the slot -> endpoint map from CLUSTER
// SLOTS, caches it, routes each keyed command by CRC16 hash slot (§2.1:
// clients route requests themselves), and follows the redirect protocol:
//
//   -MOVED <slot> <endpoint>   ownership changed: update the cached map,
//                              refresh it from the new owner, retry there.
//   -ASK <slot> <endpoint>     slot is mid-migration and this key already
//                              moved: retry once at the target, prefixed
//                              with ASKING; the map is NOT updated.
//   -TRYAGAIN ...              key is in transit this instant: back off and
//                              retry at the same node.
//
// Redirect-following is bounded (Options::max_hops / max_tryagain) so a
// stale or disagreeing topology degrades into an error, never a spin.
//
// Threading: an instance is owned by one thread (bench worker, test body).
// Blocking sockets throughout — this is client-side code, never an event
// loop.

#ifndef MEMDB_CLIENT_CLUSTER_CLIENT_H_
#define MEMDB_CLIENT_CLUSTER_CLIENT_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "resp/resp.h"

namespace memdb::client {

class ClusterClient {
 public:
  struct Options {
    uint64_t recv_timeout_ms = 2000;  // per-reply deadline
    int max_hops = 8;                 // MOVED/ASK redirects per command
    int max_tryagain = 40;            // TRYAGAIN retries per command
    uint64_t tryagain_backoff_ms = 5;
  };

  // `seeds`: "host:port" endpoints used for the initial slot-map fetch and
  // as fallbacks when the cached owner of a slot is unreachable.
  explicit ClusterClient(std::vector<std::string> seeds, Options options);
  explicit ClusterClient(std::vector<std::string> seeds);
  ~ClusterClient();
  ClusterClient(const ClusterClient&) = delete;
  ClusterClient& operator=(const ClusterClient&) = delete;

  // Fetches CLUSTER SLOTS from the first reachable known endpoint and
  // replaces the cached map. Called lazily by Execute when the map is
  // empty; callable directly to warm up.
  Status RefreshSlotMap();

  // Executes one command, routing by the hash slot of argv[1] (keyless
  // commands go to any reachable node). Follows redirects per the table
  // above. A non-OK status means the budget was exhausted or no node was
  // reachable; redirect errors themselves are never surfaced.
  Status Execute(const std::vector<std::string>& argv, resp::Value* reply);

  // Cached owner endpoint for a slot ("" when unknown). Tests use this to
  // observe map updates; it never triggers I/O.
  std::string EndpointForSlot(uint16_t slot) const;

  // "MOVED 42 127.0.0.1:7001" -> (42, "127.0.0.1:7001"); false when the
  // error is not a well-formed redirect of the given kind ("MOVED"/"ASK").
  static bool ParseRedirect(const std::string& error, const char* kind,
                            uint16_t* slot, std::string* endpoint);

  // Redirect / retry observability for tests and benches.
  uint64_t moved_redirects() const { return moved_redirects_; }
  uint64_t ask_redirects() const { return ask_redirects_; }
  uint64_t tryagain_retries() const { return tryagain_retries_; }
  uint64_t map_refreshes() const { return map_refreshes_; }

 private:
  struct Conn;  // one blocking socket + decoder per endpoint

  Conn* GetConn(const std::string& endpoint);
  void DropConn(const std::string& endpoint);
  // False on connect/send/recv/protocol failure; the connection is dropped.
  bool RoundTrip(const std::string& endpoint,
                 const std::vector<std::string>& argv, resp::Value* reply,
                 bool asking);
  // All endpoints worth probing: cached owners, then seeds.
  std::vector<std::string> KnownEndpoints() const;
  Status RefreshSlotMapFrom(const std::string& endpoint);

  const std::vector<std::string> seeds_;
  const Options options_;
  std::map<std::string, std::unique_ptr<Conn>> conns_;
  std::vector<std::string> slot_owner_;  // 16384 entries, "" = unknown

  uint64_t moved_redirects_ = 0;
  uint64_t ask_redirects_ = 0;
  uint64_t tryagain_retries_ = 0;
  uint64_t map_refreshes_ = 0;
};

}  // namespace memdb::client

#endif  // MEMDB_CLIENT_CLUSTER_CLIENT_H_
