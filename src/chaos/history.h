// HistoryRecorder: collects a wire-level concurrent history — invocation
// and response timestamps against the real sockets — in the exact shape
// src/check's Wing–Gong checker consumes (§7.2.2.2).
//
// The recording discipline is what makes the check sound:
//   * BeginOp stamps the invocation BEFORE the first byte is sent.
//   * EndOp stamps the response AFTER the full reply is decoded.
//   * An op whose outcome is unknowable (timeout, connection death after
//     the command may have reached the server) ends indeterminate: the
//     checker may linearize it anywhere after its invocation, including
//     never. Marking a completed op indeterminate is always sound; the
//     reverse is not, so every classification here errs indeterminate.
//   * Drop removes an op that provably never executed (the server refused
//     it with -READONLY, or the command never fully left this process).
//
// Thread-safe: workload client threads record concurrently.

#ifndef MEMDB_CHAOS_HISTORY_H_
#define MEMDB_CHAOS_HISTORY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "check/linearizability.h"
#include "common/sync.h"
#include "resp/resp.h"

namespace memdb::chaos {

class HistoryRecorder {
 public:
  // Stamps the invocation time; returns the op's id.
  uint64_t BeginOp(int client, std::vector<std::string> argv);

  // Determinate completion: stamps the return time and the observed reply.
  void EndOp(uint64_t id, resp::Value output);

  // The command was sent (or may have been) but no reply was observed.
  void EndOpIndeterminate(uint64_t id);

  // The command provably never executed; remove it from the history.
  void Drop(uint64_t id);

  // Snapshot for the checker. Ops still open (neither ended nor dropped)
  // are included as indeterminate — a workload stopped mid-flight must not
  // silently lose constraints.
  std::vector<check::Operation> TakeHistory();

  size_t size();

  // One JSON object per line (debugging aid; written on check failure).
  static std::string ToJsonl(const std::vector<check::Operation>& history);

 private:
  struct Rec {
    check::Operation op;
    bool open = false;
    bool dropped = false;
  };
  static uint64_t NowUs();

  memdb::Mutex mu_;
  std::vector<Rec> ops_ GUARDED_BY(mu_);
};

}  // namespace memdb::chaos

#endif  // MEMDB_CHAOS_HISTORY_H_
