// ChildProcess: fork/exec wrapper for the chaos harness — spawns the real
// memorydb binaries (txlogd, server) and injects the faults the failover
// machinery must survive: SIGKILL (crash), SIGSTOP/SIGCONT (a zombie
// primary that comes back believing it still holds the lease), and plain
// termination. Used by the chaos e2e test and the failover MTTR bench.
//
// Threading: each ChildProcess is owned by one driver thread; the class is
// not internally synchronized.

#ifndef MEMDB_CHAOS_PROCESS_H_
#define MEMDB_CHAOS_PROCESS_H_

#include <sys/types.h>

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace memdb::chaos {

class ChildProcess {
 public:
  ChildProcess() = default;
  ~ChildProcess();
  ChildProcess(const ChildProcess&) = delete;
  ChildProcess& operator=(const ChildProcess&) = delete;
  ChildProcess(ChildProcess&& other) noexcept;
  ChildProcess& operator=(ChildProcess&& other) noexcept;

  // argv[0] is the binary path. The child's stdout/stderr pass through
  // (interleaved test output is part of the chaos aesthetic).
  Status Spawn(std::vector<std::string> argv);

  // True while the child exists and has not been reaped.
  bool running();

  // Deliver `sig` without reaping (the process keeps existing — SIGSTOP /
  // SIGCONT zombie rounds).
  void Signal(int sig);
  void Pause() { Signal(/*SIGSTOP=*/19); }
  void Resume() { Signal(/*SIGCONT=*/18); }

  // Deliver `sig` (default SIGKILL) and reap the child. Safe to call when
  // not running (no-op). A paused child is resumed first so the kill lands.
  void Kill(int sig = 9);

  // Wait up to timeout_ms for the child to exit on its own; reaps and
  // returns true if it did.
  bool WaitExit(uint64_t timeout_ms);

  pid_t pid() const { return pid_; }

 private:
  pid_t pid_ = -1;
};

// Binds port 0 on 127.0.0.1, reads the kernel's pick, and releases it.
// Rebinding races are possible but harmless at test scale.
uint16_t PickFreePort();

// True once a TCP connect to 127.0.0.1:port succeeds within timeout_ms.
bool WaitForPort(uint16_t port, uint64_t timeout_ms);

}  // namespace memdb::chaos

#endif  // MEMDB_CHAOS_PROCESS_H_
