#include "chaos/history.h"

#include <chrono>
#include <cstdio>

namespace memdb::chaos {

namespace {
void AppendJsonString(std::string* out, const std::string& s) {
  out->push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\n': *out += "\\n"; break;
      case '\r': *out += "\\r"; break;
      case '\t': *out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned char>(c));
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}
}  // namespace

uint64_t HistoryRecorder::NowUs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

uint64_t HistoryRecorder::BeginOp(int client, std::vector<std::string> argv) {
  MutexLock lock(&mu_);
  const uint64_t id = ops_.size();
  Rec rec;
  rec.op.client = client;
  rec.op.input = std::move(argv);
  rec.op.invoke_time = NowUs();
  rec.op.return_time = check::kNeverReturned;
  rec.open = true;
  ops_.push_back(std::move(rec));
  return id;
}

void HistoryRecorder::EndOp(uint64_t id, resp::Value output) {
  MutexLock lock(&mu_);
  Rec& rec = ops_.at(id);
  rec.op.output = std::move(output);
  rec.op.return_time = NowUs();
  rec.open = false;
}

void HistoryRecorder::EndOpIndeterminate(uint64_t id) {
  MutexLock lock(&mu_);
  Rec& rec = ops_.at(id);
  rec.op.return_time = check::kNeverReturned;
  rec.open = false;
}

void HistoryRecorder::Drop(uint64_t id) {
  MutexLock lock(&mu_);
  ops_.at(id).dropped = true;
  ops_.at(id).open = false;
}

std::vector<check::Operation> HistoryRecorder::TakeHistory() {
  MutexLock lock(&mu_);
  std::vector<check::Operation> out;
  out.reserve(ops_.size());
  for (const Rec& rec : ops_) {
    if (!rec.dropped) out.push_back(rec.op);
  }
  return out;
}

size_t HistoryRecorder::size() {
  MutexLock lock(&mu_);
  return ops_.size();
}

std::string HistoryRecorder::ToJsonl(
    const std::vector<check::Operation>& history) {
  std::string out;
  for (const check::Operation& op : history) {
    out += "{\"client\":" + std::to_string(op.client) + ",\"argv\":[";
    for (size_t i = 0; i < op.input.size(); ++i) {
      if (i > 0) out.push_back(',');
      AppendJsonString(&out, op.input[i]);
    }
    out += "],\"invoke_us\":" + std::to_string(op.invoke_time);
    if (op.return_time == check::kNeverReturned) {
      out += ",\"indeterminate\":true";
    } else {
      out += ",\"return_us\":" + std::to_string(op.return_time);
      std::string reply;
      op.output.EncodeTo(&reply);
      out += ",\"reply\":";
      AppendJsonString(&out, reply);
    }
    out += "}\n";
  }
  return out;
}

}  // namespace memdb::chaos
