#include "chaos/process.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

namespace memdb::chaos {

ChildProcess::~ChildProcess() { Kill(); }

ChildProcess::ChildProcess(ChildProcess&& other) noexcept : pid_(other.pid_) {
  other.pid_ = -1;
}

ChildProcess& ChildProcess::operator=(ChildProcess&& other) noexcept {
  if (this != &other) {
    Kill();
    pid_ = other.pid_;
    other.pid_ = -1;
  }
  return *this;
}

Status ChildProcess::Spawn(std::vector<std::string> argv) {
  if (pid_ >= 0) return Status::InvalidArgument("child already spawned");
  if (argv.empty()) return Status::InvalidArgument("empty argv");
  std::vector<char*> cargv;
  cargv.reserve(argv.size() + 1);
  for (std::string& a : argv) cargv.push_back(a.data());
  cargv.push_back(nullptr);
  const pid_t pid = ::fork();
  if (pid < 0) {
    return Status::Internal(std::string("fork: ") + std::strerror(errno));
  }
  if (pid == 0) {
    ::execv(cargv[0], cargv.data());
    // exec failed; die loudly without running the parent's atexit chain.
    std::perror("chaos: execv");
    ::_exit(127);
  }
  pid_ = pid;
  return Status::OK();
}

bool ChildProcess::running() {
  if (pid_ < 0) return false;
  int status = 0;
  const pid_t r = ::waitpid(pid_, &status, WNOHANG);
  if (r == pid_) {
    pid_ = -1;  // exited and reaped
    return false;
  }
  return r == 0;  // still alive (or stopped)
}

void ChildProcess::Signal(int sig) {
  if (pid_ >= 0) ::kill(pid_, sig);
}

void ChildProcess::Kill(int sig) {
  if (pid_ < 0) return;
  // A SIGSTOPped child does not die from a pending SIGKILL until resumed.
  ::kill(pid_, SIGCONT);
  ::kill(pid_, sig);
  int status = 0;
  ::waitpid(pid_, &status, 0);
  pid_ = -1;
}

bool ChildProcess::WaitExit(uint64_t timeout_ms) {
  if (pid_ < 0) return true;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
  for (;;) {
    int status = 0;
    const pid_t r = ::waitpid(pid_, &status, WNOHANG);
    if (r == pid_) {
      pid_ = -1;
      return true;
    }
    if (std::chrono::steady_clock::now() >= deadline) return false;
    // lint:allow-blocking — chaos driver thread, never an event loop.
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
}

uint16_t PickFreePort() {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return 0;
  struct sockaddr_in sa;
  std::memset(&sa, 0, sizeof(sa));
  sa.sin_family = AF_INET;
  sa.sin_port = 0;
  ::inet_pton(AF_INET, "127.0.0.1", &sa.sin_addr);
  uint16_t port = 0;
  if (::bind(fd, reinterpret_cast<struct sockaddr*>(&sa), sizeof(sa)) == 0) {
    socklen_t len = sizeof(sa);
    if (::getsockname(fd, reinterpret_cast<struct sockaddr*>(&sa), &len) ==
        0) {
      port = ntohs(sa.sin_port);
    }
  }
  ::close(fd);
  return port;
}

bool WaitForPort(uint16_t port, uint64_t timeout_ms) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
  for (;;) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd >= 0) {
      struct sockaddr_in sa;
      std::memset(&sa, 0, sizeof(sa));
      sa.sin_family = AF_INET;
      sa.sin_port = htons(port);
      ::inet_pton(AF_INET, "127.0.0.1", &sa.sin_addr);
      // lint:allow-blocking — chaos driver thread, never an event loop.
      const int rc =
          ::connect(fd, reinterpret_cast<struct sockaddr*>(&sa), sizeof(sa));
      ::close(fd);
      if (rc == 0) return true;
    }
    if (std::chrono::steady_clock::now() >= deadline) return false;
    // lint:allow-blocking — chaos driver thread, never an event loop.
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
}

}  // namespace memdb::chaos
