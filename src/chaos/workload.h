// WireWorkload: client threads driving real RESP traffic at a set of
// server ports while the fault orchestrator kills/pauses nodes under them.
// Every operation is recorded in a HistoryRecorder with the classification
// rules that keep the linearizability check sound (see history.h):
//
//   outcome                      | write (SET)          | read (GET)
//   -----------------------------+----------------------+------------------
//   reply observed               | determinate          | determinate
//   -READONLY (replica/fenced)   | dropped + rotate     | n/a
//   other -ERR reply             | indeterminate        | dropped
//   timeout / connection died    | indeterminate        | dropped
//   command never fully sent     | dropped              | dropped
//
// Writes use globally unique values ("c<client>-<seq>"), so a value read
// back identifies exactly one SET — the membership check PossibleValues()
// enables is meaningful, and the checker's register model discriminates
// every write.
//
// Clients rotate to the next port when a target refuses or dies, which is
// how traffic finds the newly promoted primary with no orchestration.

#ifndef MEMDB_CHAOS_WORKLOAD_H_
#define MEMDB_CHAOS_WORKLOAD_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "chaos/history.h"
#include "common/sync.h"
#include "resp/resp.h"

namespace memdb::chaos {

// Minimal blocking RESP client over one TCP socket (chaos driver threads
// only; never an event loop).
class RespSocket {
 public:
  RespSocket() = default;
  ~RespSocket() { Close(); }
  RespSocket(const RespSocket&) = delete;
  RespSocket& operator=(const RespSocket&) = delete;

  bool Connect(uint16_t port, uint64_t recv_timeout_ms);
  void Close();
  bool connected() const { return fd_ >= 0; }

  // True only when the full frame reached the kernel send buffer.
  bool SendCommand(const std::vector<std::string>& argv);
  // False on timeout, EOF, reset, or protocol garbage.
  bool ReadReply(resp::Value* out);
  bool RoundTrip(const std::vector<std::string>& argv, resp::Value* out);

 private:
  int fd_ = -1;
  resp::Decoder dec_;
};

class WireWorkload {
 public:
  struct Options {
    std::vector<uint16_t> ports;  // candidate servers, any order
    int clients = 4;
    int keys = 8;
    uint64_t op_gap_ms = 1;           // pacing between ops per client
    uint64_t recv_timeout_ms = 2000;  // per-reply deadline
    uint64_t reconnect_backoff_ms = 50;
  };

  WireWorkload(Options options, HistoryRecorder* recorder);
  ~WireWorkload();

  void Start();
  void Stop();  // joins the client threads

  // Writes acknowledged with a determinate reply, across all clients.
  uint64_t acked_writes() const {
    return acked_writes_.load(std::memory_order_acquire);
  }

  // Thread-safe; lets respawned nodes join the rotation mid-run.
  void AddPort(uint16_t port);

  // Every value per key whose SET was acked or left indeterminate — the
  // complete set a correct register may hold. A final read outside this
  // set is a fabricated value (and the checker will reject it too).
  std::map<std::string, std::vector<std::string>> PossibleValues();

  // One determinate GET per key against `port`, recorded into `recorder`.
  // Run after Stop() with the cluster stable: pins down the final state so
  // a lost acked write has nowhere to hide. False if any read failed.
  bool FinalReads(uint16_t port, HistoryRecorder* recorder);

  static std::string KeyName(int i) { return "chaos:k" + std::to_string(i); }

 private:
  void ClientMain(int client_idx);
  std::vector<uint16_t> SnapshotPorts();
  void NotePossibleValue(const std::string& key, const std::string& value);

  Options options_;
  HistoryRecorder* const recorder_;
  std::vector<std::thread> threads_;
  std::atomic<bool> stop_{false};
  std::atomic<uint64_t> acked_writes_{0};

  memdb::Mutex mu_;
  std::vector<uint16_t> ports_ GUARDED_BY(mu_);
  std::map<std::string, std::vector<std::string>> possible_ GUARDED_BY(mu_);
};

}  // namespace memdb::chaos

#endif  // MEMDB_CHAOS_WORKLOAD_H_
