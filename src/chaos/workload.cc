#include "chaos/workload.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstring>

namespace memdb::chaos {

namespace {
void SleepMs(uint64_t ms) {
  // lint:allow-blocking — chaos driver thread, never an event loop.
  std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

bool IsReadonlyError(const resp::Value& v) {
  return v.IsError() && v.str.rfind("READONLY", 0) == 0;
}
}  // namespace

bool RespSocket::Connect(uint16_t port, uint64_t recv_timeout_ms) {
  Close();
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) return false;
  struct sockaddr_in sa;
  std::memset(&sa, 0, sizeof(sa));
  sa.sin_family = AF_INET;
  sa.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &sa.sin_addr);
  // lint:allow-blocking — chaos driver thread, never an event loop.
  if (::connect(fd_, reinterpret_cast<struct sockaddr*>(&sa), sizeof(sa)) !=
      0) {
    Close();
    return false;
  }
  struct timeval tv;
  tv.tv_sec = static_cast<time_t>(recv_timeout_ms / 1000);
  tv.tv_usec = static_cast<suseconds_t>((recv_timeout_ms % 1000) * 1000);
  ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  const int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  dec_ = resp::Decoder();  // no stale bytes from a previous connection
  return true;
}

void RespSocket::Close() {
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
}

bool RespSocket::SendCommand(const std::vector<std::string>& argv) {
  if (fd_ < 0) return false;
  const std::string bytes = resp::EncodeCommand(argv);
  size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n =
        ::send(fd_, bytes.data() + off, bytes.size() - off, MSG_NOSIGNAL);
    if (n <= 0) return false;
    off += static_cast<size_t>(n);
  }
  return true;
}

bool RespSocket::ReadReply(resp::Value* out) {
  if (fd_ < 0) return false;
  char buf[16 * 1024];
  for (;;) {
    const resp::DecodeStatus st = dec_.Decode(out);
    if (st == resp::DecodeStatus::kOk) return true;
    if (st == resp::DecodeStatus::kError) return false;
    const ssize_t r = ::recv(fd_, buf, sizeof(buf), 0);
    if (r <= 0) return false;  // EOF, reset, or SO_RCVTIMEO expiry
    dec_.Feed(Slice(buf, static_cast<size_t>(r)));
  }
}

bool RespSocket::RoundTrip(const std::vector<std::string>& argv,
                           resp::Value* out) {
  return SendCommand(argv) && ReadReply(out);
}

WireWorkload::WireWorkload(Options options, HistoryRecorder* recorder)
    : options_(std::move(options)), recorder_(recorder) {
  MutexLock lock(&mu_);
  ports_ = options_.ports;
}

WireWorkload::~WireWorkload() { Stop(); }

void WireWorkload::Start() {
  stop_.store(false, std::memory_order_release);
  threads_.reserve(static_cast<size_t>(options_.clients));
  for (int i = 0; i < options_.clients; ++i) {
    threads_.emplace_back([this, i] { ClientMain(i); });
  }
}

void WireWorkload::Stop() {
  stop_.store(true, std::memory_order_release);
  for (std::thread& t : threads_) {
    if (t.joinable()) t.join();
  }
  threads_.clear();
}

void WireWorkload::AddPort(uint16_t port) {
  MutexLock lock(&mu_);
  for (const uint16_t p : ports_) {
    if (p == port) return;
  }
  ports_.push_back(port);
}

std::vector<uint16_t> WireWorkload::SnapshotPorts() {
  MutexLock lock(&mu_);
  return ports_;
}

void WireWorkload::NotePossibleValue(const std::string& key,
                                     const std::string& value) {
  MutexLock lock(&mu_);
  possible_[key].push_back(value);
}

std::map<std::string, std::vector<std::string>>
WireWorkload::PossibleValues() {
  MutexLock lock(&mu_);
  return possible_;
}

void WireWorkload::ClientMain(int client_idx) {
  RespSocket sock;
  size_t target = static_cast<size_t>(client_idx);
  uint64_t seq = 0;
  // A connection is "verified" once a SET was acked on it: only the node
  // holding the shard lease acks writes (the fenced append chain), so a
  // verified connection is talking to the primary. GETs are issued ONLY on
  // verified connections — a GET answered by a replica (or a demoted
  // primary) would be a stale-but-determinate read, unsound to linearize.
  // The server closes every connection when it demotes, so verification
  // cannot silently outlive primaryship; the lease-validity read gate on
  // the server covers the remaining in-flight window.
  bool verified = false;
  while (!stop_.load(std::memory_order_acquire)) {
    if (!sock.connected()) {
      verified = false;
      const std::vector<uint16_t> ports = SnapshotPorts();
      if (ports.empty()) return;
      if (!sock.Connect(ports[target % ports.size()],
                        options_.recv_timeout_ms)) {
        ++target;
        SleepMs(options_.reconnect_backoff_ms);
        continue;
      }
    }
    const std::string key =
        KeyName((client_idx + static_cast<int>(seq)) % options_.keys);
    const bool is_write = !verified || (seq % 2) == 0;
    std::vector<std::string> argv;
    std::string value;
    if (is_write) {
      value = "c" + std::to_string(client_idx) + "-" + std::to_string(seq);
      argv = {"SET", key, value};
    } else {
      argv = {"GET", key};
    }
    ++seq;
    const uint64_t id = recorder_->BeginOp(client_idx, argv);
    if (!sock.SendCommand(argv)) {
      // The frame never fully left this process: the server cannot parse a
      // complete command, so the op provably did not execute.
      recorder_->Drop(id);
      sock.Close();
      ++target;
      continue;
    }
    resp::Value reply;
    if (!sock.ReadReply(&reply)) {
      // The command may have reached the server and executed; only the
      // reply is lost. Writes must stay in the history as indeterminate.
      if (is_write) {
        recorder_->EndOpIndeterminate(id);
        NotePossibleValue(key, value);
      } else {
        recorder_->Drop(id);
      }
      sock.Close();
      ++target;
      continue;
    }
    if (IsReadonlyError(reply)) {
      // Replica / promoting / fenced node: the write was refused before
      // executing. Rotate toward the (new) primary.
      recorder_->Drop(id);
      sock.Close();
      ++target;
      SleepMs(options_.reconnect_backoff_ms);
      continue;
    }
    if (reply.IsError()) {
      // E.g. "-ERR transaction log unavailable": applied locally but never
      // durable — whether it survives the failover is unknowable here.
      if (is_write) {
        recorder_->EndOpIndeterminate(id);
        NotePossibleValue(key, value);
      } else {
        recorder_->Drop(id);
      }
      sock.Close();
      ++target;
      continue;
    }
    recorder_->EndOp(id, reply);
    if (is_write) {
      acked_writes_.fetch_add(1, std::memory_order_acq_rel);
      NotePossibleValue(key, value);
      verified = true;
    }
    if (options_.op_gap_ms > 0) SleepMs(options_.op_gap_ms);
  }
}

bool WireWorkload::FinalReads(uint16_t port, HistoryRecorder* recorder) {
  RespSocket sock;
  if (!sock.Connect(port, options_.recv_timeout_ms)) return false;
  // The reader gets its own client id so the checker sees a distinct
  // sequential process.
  const int reader = options_.clients;
  {
    // Verify the connection the same way the workload clients do: an acked
    // SET proves this node holds the lease, so the GETs below are reads
    // against the primary, not a stale replica the caller mistook for one.
    const std::vector<std::string> probe = {"SET", "chaos:final-probe",
                                            "final"};
    const uint64_t id = recorder->BeginOp(reader, probe);
    resp::Value reply;
    if (!sock.RoundTrip(probe, &reply) || reply.IsError()) {
      recorder->Drop(id);
      return false;
    }
    recorder->EndOp(id, reply);
  }
  for (int i = 0; i < options_.keys; ++i) {
    const std::vector<std::string> argv = {"GET", KeyName(i)};
    const uint64_t id = recorder->BeginOp(reader, argv);
    resp::Value reply;
    if (!sock.RoundTrip(argv, &reply) || reply.IsError()) {
      recorder->Drop(id);
      return false;
    }
    recorder->EndOp(id, reply);
  }
  return true;
}

}  // namespace memdb::chaos
