// FailoverManager: the §4.1/§4.2 availability machinery, per database node.
// Every node — primary and replica alike — runs one, talking to the same
// txlogd group that carries the data plane:
//
//   * A primary acquires the shard's fenced lease before serving and renews
//     it on a timer. A renewal rejected with ConditionFailed means another
//     node owns the lease (or ours expired unobserved): the node is FENCED
//     and must stop acking writes — the embedding RespServer demotes.
//   * A replica monitors the holder: committed kLease records riding the
//     follower feed refresh the liveness deadline, and when the deadline
//     passes the replica races AcquireLease. Contention is the probe — while
//     the holder is alive the call is a harmless ConditionFailed carrying
//     holder + remaining_ms; the first caller after true expiry wins.
//   * The winner's grant record sits at log index L. Every old-primary
//     append that could have been acked committed strictly below L (acks
//     require quorum commit, and commit order is index order — our grant
//     committing implies everything below it did first), so replaying the
//     feed to L covers every acked write. The manager publishes L as the
//     replay target; the embedding server replays to it, flips to serving
//     primary, and confirms — at which point the manager switches to
//     renewal duty for the new primary.
//
// Threading: the manager owns an rpc::LoopThread running a
// txlog::RemoteClient; all lease traffic and timers live there. The
// embedding server reads state()/replay_target() and calls
// NoteLeaseObserved()/ConfirmPromoted() from its own loop thread — the
// bridge is acquire/release atomics plus an on_event wakeup.
//
// State machine (see DESIGN.md §11):
//
//           as_primary                    as replica
//   kAcquiring ──ok──► kHolding    kMonitoring ◄─deadline refreshed─┐
//        │                ▲              │ deadline passed          │
//        │                │              ▼                          │
//        │       ConfirmPromoted()   kElecting ──ConditionFailed────┘
//        │                │              │ kOk (lease won, index L)
//        │                │              ▼
//        │                └───────── kReplaying ──renew lost──► kMonitoring
//        │ renew ConditionFailed         (server replays to L, promotes)
//        ▼
//     kFenced  (terminal: restart the process to rejoin as a replica)

#ifndef MEMDB_FAILOVER_FAILOVER_MANAGER_H_
#define MEMDB_FAILOVER_FAILOVER_MANAGER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/status.h"
#include "common/trace.h"
#include "rpc/loop.h"
#include "txlog/remote_client.h"

namespace memdb::failover {

// Integer values are stable: INFO/METRICS expose failover_state as this
// enum and engine/commands_server.cc maps it back to a name.
enum class FailoverState : uint8_t {
  kIdle = 0,        // manager not started (failover disabled)
  kAcquiring = 1,   // primary startup: acquiring the initial lease
  kHolding = 2,     // lease held; renewing on a timer
  kMonitoring = 3,  // replica: holder believed alive
  kElecting = 4,    // replica: holder deadline passed; racing AcquireLease
  kReplaying = 5,   // lease won; waiting for the server to replay to L
  kFenced = 6,      // lease lost to another owner (terminal for a primary)
};

const char* FailoverStateName(FailoverState s);

class FailoverManager {
 public:
  struct Options {
    std::vector<std::string> endpoints;  // txlogd group (host:port each)
    std::string shard_id = "shard-0";
    uint64_t owner_id = 0;          // this node's writer id == lease owner
    uint64_t lease_duration_ms = 1500;
    uint64_t renew_interval_ms = 500;   // holder renews this often
    uint64_t probe_interval_ms = 300;   // replica liveness-check cadence
    // Slack added to every liveness deadline: absorbs renewal jitter and
    // the probe quantum so a healthy holder is never contested.
    uint64_t grace_ms = 300;
    uint64_t rpc_timeout_ms = 300;
    uint64_t retry_backoff_ms = 100;  // after Unavailable/TimedOut
    // Optional: failover.* spans land here (owned by the embedding server).
    TraceLog* trace = nullptr;
  };

  // Instruments resolve from `registry` at construction (with # HELP text),
  // before any loop thread exists.
  FailoverManager(Options options, MetricsRegistry* registry);
  ~FailoverManager();
  FailoverManager(const FailoverManager&) = delete;
  FailoverManager& operator=(const FailoverManager&) = delete;

  // as_primary: acquire the lease before returning OK (bounded by
  // acquire_wait_ms; a held foreign lease blocks startup until it expires,
  // which is exactly the fencing contract). as_primary false starts the
  // replica-side monitor and returns immediately. on_event fires (from the
  // manager thread) on every state transition; wire it to the embedding
  // server's EventLoop::Wakeup.
  Status Start(bool as_primary, std::function<void()> on_event,
               uint64_t acquire_wait_ms = 30000);
  void Stop();

  FailoverState state() const {
    return static_cast<FailoverState>(state_.load(std::memory_order_acquire));
  }
  // Valid once state() == kReplaying: log index of our lease grant — the
  // replay target that upper-bounds every possibly-acked old-primary write.
  uint64_t replay_target() const {
    return replay_target_.load(std::memory_order_acquire);
  }
  // Holder/remaining as of the last probe rejection (diagnostics).
  uint64_t observed_holder() const {
    return observed_holder_.load(std::memory_order_acquire);
  }

  // True while this node's lease is provably unexpired on the arbiter's
  // clock — the §4.2 condition for serving linearizable reads without a log
  // round-trip. Conservative: validity is stamped from the moment each
  // acquire/renew was SENT (the arbiter grants from its own, strictly
  // later, receive time), so a true answer here means no other owner can
  // have been granted the lease yet. A zombie resumed after SIGSTOP fails
  // this check immediately, before any renewal RPC gets the chance to
  // discover the loss.
  bool LeaseValidNow() const {
    return NowMs() < lease_valid_until_ms_.load(std::memory_order_acquire);
  }

  // Embedding-server thread: a committed kLease record for our shard was
  // applied from the follower feed — the holder proved liveness as of now.
  void NoteLeaseObserved(uint64_t owner, uint64_t duration_ms);

  // Embedding-server thread: applied_index reached the replay target;
  // promotion work (follower teardown, gate start) begins now. Stamps the
  // failover.replay span so replay and promote attribute separately.
  void NoteReplayReached();

  // Embedding-server thread: replay reached the target and the node now
  // serves writes. Records the failover.promote span, bumps
  // failovers_total / failover_last_*_ms, and switches to renewal duty.
  void ConfirmPromoted();

  // Embedding-server thread: the fenced gate hit a foreign record before a
  // renewal could learn the loss — force the terminal state so INFO/METRICS
  // agree with the gate.
  void NoteExternallyFenced();

  txlog::RemoteClient* client() { return client_.get(); }

 private:
  // Manager-loop-thread only.
  void AcquireTick();
  void RenewTick();
  // Arms the next RenewTick unless one is already armed. Renewals run on a
  // fixed cadence — the timer is re-armed when the tick FIRES, not when the
  // RPC's response lands — so a slow or lost renewal response cannot
  // stretch the renewal period past the lease (the ~200k-entry promotion
  // replay self-fence: replay held the response pump busy long enough that
  // response-chained renewals starved and the lease lapsed mid-replay).
  void ScheduleRenew(uint64_t delay_ms);
  void ProbeTick();
  void ScheduleProbe(uint64_t delay_ms);
  void EnterState(FailoverState next);
  uint64_t NowMs() const;

  Options options_;
  rpc::LoopThread loop_;
  std::unique_ptr<txlog::RemoteClient> client_;
  std::function<void()> on_event_;
  bool started_ = false;
  bool as_primary_ = false;

  Gauge* state_gauge_ = nullptr;
  Counter* failovers_total_ = nullptr;
  Counter* elections_total_ = nullptr;
  Counter* renewals_total_ = nullptr;
  Counter* lease_losses_total_ = nullptr;
  Gauge* last_duration_ = nullptr;
  Gauge* last_detect_ = nullptr;
  Gauge* last_lease_ = nullptr;
  Gauge* last_replay_ = nullptr;
  Gauge* last_promote_ = nullptr;

  std::atomic<uint8_t> state_{static_cast<uint8_t>(FailoverState::kIdle)};
  std::atomic<uint64_t> replay_target_{0};
  // Lease validity horizon: send-time of the last granted acquire/renew plus
  // the lease duration (see LeaseValidNow).
  std::atomic<uint64_t> lease_valid_until_ms_{0};
  std::atomic<uint64_t> observed_holder_{0};
  // Holder liveness deadline (steady ms). Written by NoteLeaseObserved
  // (server thread) and probe rejections (manager thread); monotonic
  // max keeps the later evidence.
  std::atomic<uint64_t> deadline_ms_{0};

  // Manager-loop-thread state: per-failover stage stamps (steady ms).
  uint64_t t_last_alive_ms_ = 0;   // last evidence the holder lived
  uint64_t t_detect_ms_ = 0;       // deadline declared passed
  uint64_t t_lease_won_ms_ = 0;    // AcquireLease returned kOk
  uint64_t replay_done_ms_ = 0;    // applied_index reached the target
  uint64_t failover_seq_ = 0;      // per-process ordinal, keys trace ids
  bool renew_timer_armed_ = false;  // a RenewTick timer is pending
  bool renew_inflight_ = false;     // a RenewLease RPC awaits its response
  std::atomic<bool> stopping_{false};
};

}  // namespace memdb::failover

#endif  // MEMDB_FAILOVER_FAILOVER_MANAGER_H_
