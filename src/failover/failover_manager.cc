#include "failover/failover_manager.h"

#include <chrono>
#include <cstdio>
#include <thread>
#include <utility>

namespace memdb::failover {

namespace {
uint64_t SteadyNowMs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// CAS-max: liveness evidence only ever pushes a deadline later.
void StoreMax(std::atomic<uint64_t>* target, uint64_t v) {
  uint64_t cur = target->load(std::memory_order_acquire);
  while (cur < v &&
         !target->compare_exchange_weak(cur, v, std::memory_order_acq_rel,
                                        std::memory_order_acquire)) {
  }
}
}  // namespace

const char* FailoverStateName(FailoverState s) {
  switch (s) {
    case FailoverState::kIdle:       return "none";
    case FailoverState::kAcquiring:  return "acquiring";
    case FailoverState::kHolding:    return "holding";
    case FailoverState::kMonitoring: return "monitoring";
    case FailoverState::kElecting:   return "electing";
    case FailoverState::kReplaying:  return "replaying";
    case FailoverState::kFenced:     return "fenced";
  }
  return "unknown";
}

FailoverManager::FailoverManager(Options options, MetricsRegistry* registry)
    : options_(std::move(options)) {
  if (registry != nullptr) {
    state_gauge_ = registry->GetGauge("failover_state");
    failovers_total_ = registry->GetCounter("failovers_total");
    elections_total_ = registry->GetCounter("failover_elections_total");
    renewals_total_ = registry->GetCounter("failover_lease_renewals_total");
    lease_losses_total_ =
        registry->GetCounter("failover_lease_losses_total");
    last_duration_ = registry->GetGauge("failover_last_duration_ms");
    last_detect_ = registry->GetGauge("failover_last_detect_ms");
    last_lease_ = registry->GetGauge("failover_last_lease_ms");
    last_replay_ = registry->GetGauge("failover_last_replay_ms");
    last_promote_ = registry->GetGauge("failover_last_promote_ms");
    registry->SetHelp("failover_state",
                      "Failover state machine position (0=none 1=acquiring "
                      "2=holding 3=monitoring 4=electing 5=replaying "
                      "6=fenced)");
    registry->SetHelp("failovers_total",
                      "Completed automatic promotions on this node");
    registry->SetHelp("failover_last_duration_ms",
                      "Last failover: holder-last-alive to serving writes");
    registry->SetHelp("failover_last_detect_ms",
                      "Last failover: liveness deadline expiry detection");
    registry->SetHelp("failover_last_lease_ms",
                      "Last failover: AcquireLease race until the grant");
    registry->SetHelp("failover_last_replay_ms",
                      "Last failover: log replay to the fenced tail");
    registry->SetHelp("failover_last_promote_ms",
                      "Last failover: follower teardown + gate start");
  }
  // RemoteClient resolves its rpc_* instruments here too — before Start()
  // spawns the loop thread, so registry mutation stays single-threaded.
  txlog::RemoteClient::Options copt;
  copt.writer_id = options_.owner_id;
  copt.rpc_timeout_ms = options_.rpc_timeout_ms;
  copt.trace = options_.trace;
  client_ = std::make_unique<txlog::RemoteClient>(&loop_, options_.endpoints,
                                                  copt, nullptr);
}

FailoverManager::~FailoverManager() { Stop(); }

uint64_t FailoverManager::NowMs() const { return SteadyNowMs(); }

Status FailoverManager::Start(bool as_primary, std::function<void()> on_event,
                              uint64_t acquire_wait_ms) {
  if (options_.endpoints.empty()) {
    return Status::InvalidArgument("failover manager needs txlog endpoints");
  }
  if (options_.owner_id == 0) {
    return Status::InvalidArgument("failover manager needs a nonzero owner");
  }
  on_event_ = std::move(on_event);
  as_primary_ = as_primary;
  MEMDB_RETURN_IF_ERROR(loop_.Start());
  started_ = true;
  if (as_primary) {
    loop_.Post([this] {
      EnterState(FailoverState::kAcquiring);
      AcquireTick();
    });
    // Startup thread, loop not yet observed by the server: block until the
    // lease is ours. A live foreign lease holds us at the gate until it
    // expires — that wait IS the fencing contract for a restarted primary.
    const uint64_t deadline = NowMs() + acquire_wait_ms;
    while (state() != FailoverState::kHolding) {
      if (NowMs() >= deadline) {
        Stop();
        return Status::TimedOut("could not acquire the shard lease");
      }
      // lint:allow-blocking — Start() runs on the caller thread, not the
      // manager loop; the poll quantum bounds startup latency only.
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  } else {
    loop_.Post([this] {
      // Until the first observation, assume the holder was alive "just
      // now": a replica joining a healthy cluster must not contest, and a
      // replica joining a dead one detects after duration + grace.
      StoreMax(&deadline_ms_,
               NowMs() + options_.lease_duration_ms + options_.grace_ms);
      t_last_alive_ms_ = NowMs();
      EnterState(FailoverState::kMonitoring);
      ScheduleProbe(options_.probe_interval_ms);
    });
  }
  return Status::OK();
}

void FailoverManager::Stop() {
  if (!started_) return;
  started_ = false;
  stopping_.store(true, std::memory_order_release);
  client_->Shutdown();
  loop_.Stop();
}

void FailoverManager::EnterState(FailoverState next) {
  loop_.AssertOnLoopThread();
  state_.store(static_cast<uint8_t>(next), std::memory_order_release);
  if (state_gauge_ != nullptr) {
    state_gauge_->Set(static_cast<int64_t>(next));
  }
  if (on_event_) on_event_();
}

void FailoverManager::AcquireTick() {
  loop_.AssertOnLoopThread();
  if (stopping_.load(std::memory_order_acquire)) return;
  // Validity is measured from BEFORE the request leaves: the arbiter's
  // grant clock starts strictly later, so this horizon is conservative.
  const uint64_t sent_ms = NowMs();
  client_->AcquireLease(
      options_.owner_id, options_.lease_duration_ms, options_.shard_id,
      [this, sent_ms](const Status& status,
                      const txlog::rpcwire::LeaseResponse& resp) {
        if (stopping_.load(std::memory_order_acquire)) return;
        if (status.ok()) {
          StoreMax(&lease_valid_until_ms_,
                   sent_ms + options_.lease_duration_ms);
          replay_target_.store(resp.index, std::memory_order_release);
          EnterState(FailoverState::kHolding);
          ScheduleRenew(options_.renew_interval_ms);
          return;
        }
        // Held by someone else (a not-yet-expired predecessor) or the log
        // group is electing: retry until our Start() deadline gives up.
        const uint64_t delay =
            status.IsConditionFailed()
                ? std::max<uint64_t>(
                      1, std::min(resp.remaining_ms,
                                  options_.probe_interval_ms))
                : options_.retry_backoff_ms;
        loop_.After(delay, [this] { AcquireTick(); });
      });
}

void FailoverManager::ScheduleRenew(uint64_t delay_ms) {
  loop_.AssertOnLoopThread();
  if (stopping_.load(std::memory_order_acquire)) return;
  if (renew_timer_armed_) return;
  renew_timer_armed_ = true;
  loop_.After(std::max<uint64_t>(1, delay_ms), [this] {
    renew_timer_armed_ = false;
    RenewTick();
  });
}

void FailoverManager::RenewTick() {
  loop_.AssertOnLoopThread();
  if (stopping_.load(std::memory_order_acquire)) return;
  const FailoverState s = state();
  // Renewal runs while holding AND while replaying: a promotion longer than
  // the lease must not lose the lease mid-replay.
  if (s != FailoverState::kHolding && s != FailoverState::kReplaying) return;
  // Fixed cadence: the next tick is armed before this one's RPC is even
  // issued, so renewal frequency is governed by the interval alone, never
  // by response latency (see ScheduleRenew).
  ScheduleRenew(options_.renew_interval_ms);
  if (renew_inflight_) return;  // previous renewal still awaiting a response
  renew_inflight_ = true;
  const uint64_t sent_ms = NowMs();
  client_->RenewLease(
      options_.owner_id, options_.lease_duration_ms, options_.shard_id,
      [this, sent_ms](const Status& status,
                      const txlog::rpcwire::LeaseResponse& resp) {
        renew_inflight_ = false;
        if (stopping_.load(std::memory_order_acquire)) return;
        const FailoverState cur = state();
        if (cur != FailoverState::kHolding &&
            cur != FailoverState::kReplaying) {
          return;
        }
        if (status.ok()) {
          StoreMax(&lease_valid_until_ms_,
                   sent_ms + options_.lease_duration_ms);
          if (renewals_total_ != nullptr) renewals_total_->Increment();
          return;
        }
        if (status.IsConditionFailed()) {
          // Determinate: the lease is not ours (expired, or another owner
          // took it). A serving primary is fenced — terminal; a replica
          // mid-replay steps back to monitoring and may race again.
          if (lease_losses_total_ != nullptr) {
            lease_losses_total_->Increment();
          }
          observed_holder_.store(resp.holder, std::memory_order_release);
          if (cur == FailoverState::kReplaying) {
            StoreMax(&deadline_ms_, NowMs() + resp.remaining_ms +
                                        options_.grace_ms);
            t_last_alive_ms_ = NowMs();
            EnterState(FailoverState::kMonitoring);
            ScheduleProbe(options_.probe_interval_ms);
          } else {
            std::fprintf(stderr,
                         "failover: lease for %s lost to owner %llu; "
                         "fencing\n",
                         options_.shard_id.c_str(),
                         static_cast<unsigned long long>(resp.holder));
            EnterState(FailoverState::kFenced);
          }
          return;
        }
        // Indeterminate (log group unreachable): keep trying on a tighter
        // cadence. If the lease truly lapsed, the next determinate answer
        // is ConditionFailed and we fence then. (No-op when the interval
        // timer is already armed to fire sooner.)
        ScheduleRenew(options_.retry_backoff_ms);
      });
}

void FailoverManager::ScheduleProbe(uint64_t delay_ms) {
  loop_.AssertOnLoopThread();
  if (stopping_.load(std::memory_order_acquire)) return;
  loop_.After(std::max<uint64_t>(1, delay_ms), [this] { ProbeTick(); });
}

void FailoverManager::ProbeTick() {
  loop_.AssertOnLoopThread();
  if (stopping_.load(std::memory_order_acquire)) return;
  const FailoverState s = state();
  if (s != FailoverState::kMonitoring && s != FailoverState::kElecting) {
    return;  // won a lease meanwhile; the renew timer owns the loop now
  }
  const uint64_t now = NowMs();
  const uint64_t deadline = deadline_ms_.load(std::memory_order_acquire);
  if (now < deadline) {
    // Holder believed alive; check again when the deadline could pass.
    t_last_alive_ms_ = now;
    if (s == FailoverState::kElecting) EnterState(FailoverState::kMonitoring);
    ScheduleProbe(std::min(options_.probe_interval_ms, deadline - now));
    return;
  }
  if (s == FailoverState::kMonitoring) {
    // Liveness deadline passed with no kLease observation and no probe
    // rejection: declare the holder dead and race for the lease. The
    // AcquireLease below IS the election — txlogd's leader arbitrates.
    t_detect_ms_ = now;
    ++failover_seq_;
    if (elections_total_ != nullptr) elections_total_->Increment();
    if (options_.trace != nullptr) {
      options_.trace->Record(
          MakeTraceId(options_.owner_id, 0xFA000 + failover_seq_),
          "failover.detect", now * 1000, now - t_last_alive_ms_);
    }
    EnterState(FailoverState::kElecting);
  }
  const uint64_t sent_ms = now;
  client_->AcquireLease(
      options_.owner_id, options_.lease_duration_ms, options_.shard_id,
      [this, sent_ms](const Status& status,
                      const txlog::rpcwire::LeaseResponse& resp) {
        if (stopping_.load(std::memory_order_acquire)) return;
        if (state() != FailoverState::kElecting) return;
        const uint64_t now = NowMs();
        if (status.ok()) {
          // We hold the lease; its grant record at resp.index is the fence.
          // Every append the old primary could have acked committed below
          // that index, so it upper-bounds the replay.
          StoreMax(&lease_valid_until_ms_,
                   sent_ms + options_.lease_duration_ms);
          t_lease_won_ms_ = now;
          replay_target_.store(resp.index, std::memory_order_release);
          if (options_.trace != nullptr) {
            options_.trace->Record(
                MakeTraceId(options_.owner_id, 0xFA000 + failover_seq_),
                "failover.lease", now * 1000, resp.index);
          }
          EnterState(FailoverState::kReplaying);
          ScheduleRenew(options_.renew_interval_ms);
          return;
        }
        if (status.IsConditionFailed()) {
          // Someone is alive after all (a late renewal, or another replica
          // beat us): fall back to monitoring the winner.
          observed_holder_.store(resp.holder, std::memory_order_release);
          StoreMax(&deadline_ms_,
                   now + resp.remaining_ms + options_.grace_ms);
          t_last_alive_ms_ = now;
          EnterState(FailoverState::kMonitoring);
          ScheduleProbe(options_.probe_interval_ms);
          return;
        }
        // txlogd quorum unavailable (likely electing its own leader):
        // retry — detection stands, the race just waits for the arbiter.
        ScheduleProbe(options_.retry_backoff_ms);
      });
}

void FailoverManager::NoteExternallyFenced() {
  loop_.Post([this] {
    const FailoverState s = state();
    if (s == FailoverState::kFenced || s == FailoverState::kIdle) return;
    if (lease_losses_total_ != nullptr) lease_losses_total_->Increment();
    EnterState(FailoverState::kFenced);
  });
}

void FailoverManager::NoteLeaseObserved(uint64_t owner, uint64_t duration_ms) {
  // Server loop thread: a committed kLease record is proof the holder was
  // alive when the grant/renewal committed — at most one feed delay ago.
  observed_holder_.store(owner, std::memory_order_release);
  StoreMax(&deadline_ms_, NowMs() + duration_ms + options_.grace_ms);
}

void FailoverManager::NoteReplayReached() {
  loop_.Post([this, now = NowMs()] {
    if (state() != FailoverState::kReplaying) return;
    if (last_replay_ != nullptr && now >= t_lease_won_ms_) {
      last_replay_->Set(static_cast<int64_t>(now - t_lease_won_ms_));
    }
    if (options_.trace != nullptr) {
      options_.trace->Record(
          MakeTraceId(options_.owner_id, 0xFA000 + failover_seq_),
          "failover.replay", now * 1000,
          replay_target_.load(std::memory_order_acquire));
    }
    // Stash the stamp in t_detect-relative terms via t_lease_won: promote
    // time is measured from here in ConfirmPromoted.
    t_lease_won_ms_ = t_lease_won_ms_ == 0 ? now : t_lease_won_ms_;
    replay_done_ms_ = now;
  });
}

void FailoverManager::ConfirmPromoted() {
  loop_.Post([this, now = NowMs()] {
    if (state() != FailoverState::kReplaying) return;
    if (failovers_total_ != nullptr) failovers_total_->Increment();
    if (last_duration_ != nullptr && t_last_alive_ms_ != 0) {
      last_duration_->Set(static_cast<int64_t>(now - t_last_alive_ms_));
    }
    if (last_detect_ != nullptr && t_detect_ms_ >= t_last_alive_ms_) {
      last_detect_->Set(static_cast<int64_t>(t_detect_ms_ - t_last_alive_ms_));
    }
    if (last_lease_ != nullptr && t_lease_won_ms_ >= t_detect_ms_) {
      last_lease_->Set(static_cast<int64_t>(t_lease_won_ms_ - t_detect_ms_));
    }
    const uint64_t replay_done =
        replay_done_ms_ != 0 ? replay_done_ms_ : now;
    if (last_promote_ != nullptr && now >= replay_done) {
      last_promote_->Set(static_cast<int64_t>(now - replay_done));
    }
    if (options_.trace != nullptr) {
      options_.trace->Record(
          MakeTraceId(options_.owner_id, 0xFA000 + failover_seq_),
          "failover.promote", now * 1000, now - t_last_alive_ms_);
    }
    replay_done_ms_ = 0;
    as_primary_ = true;
    EnterState(FailoverState::kHolding);
    // The renew timer armed at lease-won keeps running; nothing to start.
  });
}

}  // namespace memdb::failover
