// Shard: provisions one MemoryDB shard — the per-shard transaction log
// (3 replicas across AZs), the database nodes (primary + replicas placed in
// distinct AZs, §5.1), and optionally the off-box snapshotting machinery.

#ifndef MEMDB_MEMORYDB_SHARD_H_
#define MEMDB_MEMORYDB_SHARD_H_

#include <memory>
#include <string>
#include <vector>

#include "memorydb/node.h"
#include "memorydb/offbox.h"
#include "txlog/group.h"

namespace memdb::memorydb {

class Shard {
 public:
  struct Options {
    std::string shard_id = "shard-0";
    int num_replicas = 2;  // besides the primary
    sim::NodeId object_store = sim::kInvalidNode;
    NodeConfig node_template;       // shard/log/bootstrap fields overwritten
    txlog::RaftOptions raft_options;
    bool with_offbox = false;
    uint64_t offbox_synthetic_bytes = 0;  // see OffboxConfig
    SnapshotScheduler::Config scheduler_config;  // shard/log overwritten
  };

  Shard(sim::Simulation* sim, Options options);

  const std::string& id() const { return options_.shard_id; }
  txlog::LogGroup& log() { return *log_; }
  size_t num_nodes() const { return nodes_.size(); }
  Node* node(size_t i) { return nodes_[i].get(); }
  const std::vector<sim::NodeId>& node_ids() const { return node_ids_; }

  // The node currently acting as primary, or nullptr mid-failover.
  Node* Primary();
  // Any live replica, or nullptr.
  Node* AnyReplica();

  // Adds a replica node (replica scaling, §5.2); it restores from the
  // latest snapshot and replays the log before joining.
  Node* AddReplica();

  void CrashNode(size_t i);
  void RestartNode(size_t i);

  OffboxSnapshotter* offbox() { return offbox_.get(); }
  SnapshotScheduler* scheduler() { return scheduler_.get(); }

 private:
  NodeConfig MakeNodeConfig(bool bootstrap) const;

  sim::Simulation* sim_;
  Options options_;
  std::unique_ptr<txlog::LogGroup> log_;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::vector<sim::NodeId> node_ids_;
  std::unique_ptr<OffboxSnapshotter> offbox_;
  std::unique_ptr<SnapshotScheduler> scheduler_;
};

}  // namespace memdb::memorydb

#endif  // MEMDB_MEMORYDB_SHARD_H_
