#include "memorydb/node.h"

#include <algorithm>

#include "common/crc.h"

namespace memdb::memorydb {

using sim::Duration;
using sim::Message;
using sim::NodeId;
using resp::Value;

int CompareEngineVersions(const std::string& a, const std::string& b) {
  size_t ia = 0, ib = 0;
  while (ia < a.size() || ib < b.size()) {
    long na = 0, nb = 0;
    while (ia < a.size() && a[ia] != '.') na = na * 10 + (a[ia++] - '0');
    while (ib < b.size() && b[ib] != '.') nb = nb * 10 + (b[ib++] - '0');
    if (na != nb) return na < nb ? -1 : 1;
    if (ia < a.size()) ++ia;
    if (ib < b.size()) ++ib;
  }
  return 0;
}

Node::Node(sim::Simulation* sim, NodeId id, NodeConfig config)
    : Actor(sim, id),
      config_(std::move(config)),
      engine_([&] {
        engine::Engine::Config ec;
        ec.maxmemory_bytes = config_.maxmemory_bytes;
        ec.eviction_policy = config_.eviction_policy;
        ec.eviction_samples = config_.eviction_samples;
        ec.rng_seed = 0x9e3779b9 ^ id;
        return ec;
      }()),
      log_(this, config_.log_replicas),
      io_pool_(&sim->scheduler(), config_.io_threads),
      workloop_(&sim->scheduler(), 1) {
  if (config_.object_store != sim::kInvalidNode) {
    s3_ = storage::StorageClient(this, config_.object_store);
  }
  On(client::kDbCommand, [this](const Message& m) { HandleCommand(m); });
  On(client::kDbMulti, [this](const Message& m) { HandleMulti(m); });
  RegisterSlotHandlers();

  // One registry for the whole process: the engine shares it, so INFO
  // Commandstats/Latencystats and METRICS read node- and engine-level
  // series from the same place.
  engine_.set_metrics(&metrics_);
  server_info_.engine_version = config_.engine_version;
  server_info_.node_id = id;
  write_commit_hist_ = metrics_.GetHistogram("write_commit_latency_us");
  append_hist_ = metrics_.GetHistogram("append_latency_us");
  lease_renew_hist_ = metrics_.GetHistogram("lease_renew_latency_us");
  election_hist_ = metrics_.GetHistogram("election_latency_us");
  pipeline_depth_gauge_ = metrics_.GetGauge("node_pipeline_depth");
  tracker_keys_gauge_ = metrics_.GetGauge("node_tracker_keys");
  deferred_reads_gauge_ = metrics_.GetGauge("node_deferred_reads");
  role_gauge_ = metrics_.GetGauge("node_role");
  reads_deferred_counter_ = metrics_.GetCounter("node_reads_deferred_total");
  records_appended_counter_ =
      metrics_.GetCounter("node_records_appended_total");
  SyncRoleInfo();
  // Scrape endpoint for the monitoring service: refresh the point-in-time
  // gauges, then expose the registry.
  On("db.metrics", [this](const Message& m) {
    SyncRoleInfo();
    metrics_.GetGauge("node_applied_index")
        ->Set(static_cast<int64_t>(applied_index_));
    metrics_.GetGauge("node_caught_up")->Set(caught_up_ ? 1 : 0);
    SyncDepthGauges();
    Reply(m, metrics_.ExpositionText());
  });

  last_lease_observed_ = Now();
  StartLoops();
  // Every node starts life as a recovering replica (§4.2); the designated
  // bootstrap node then campaigns immediately without waiting out a backoff.
  StartRecovery();
}

void Node::StartLoops() {
  // Timers are incarnation-guarded, so these loops must be re-armed after
  // every restart.
  //
  // Replica log tailing.
  Periodic(config_.replica_poll_interval, [this] {
    if (role_ == DbRole::kReplica) PollLog();
  });
  // Lease renewal (primary).
  Periodic(config_.lease_renew_interval, [this] { RenewLease(); });
  // Lease expiry check — a primary that cannot renew voluntarily stops
  // serving at the end of its lease (§4.1.3).
  Periodic(50 * sim::kMs, [this] { CheckLease(); });
  // Election eligibility check (replicas).
  Periodic(100 * sim::kMs, [this] { MaybeCampaign(); });
  // Active expiry cycle (primary).
  Periodic(config_.active_expire_interval, [this] {
    if (role_ != DbRole::kPrimary) return;
    engine::ExecContext ctx = MakeContext(engine::Role::kPrimary);
    engine_.ActiveExpire(&ctx, 20);
    if (!ctx.effects.empty()) {
      PendingRecord rec;
      rec.batch_seq = next_batch_seq_++;
      rec.payload = EncodeEffectBatch(ctx.effects);
      for (const auto& k : ctx.dirty_keys) key_hazards_[k] = rec.batch_seq;
      EnqueueRecord(std::move(rec));
    }
  });
}

void Node::OnRestart() {
  Actor::OnRestart();
  ++epoch_;
  engine_.keyspace().Clear();
  role_ = DbRole::kReplica;
  known_primary_ = sim::kInvalidNode;
  applied_index_ = 0;
  predicted_tail_ = 0;
  caught_up_ = false;
  poll_in_flight_ = false;
  version_blocked_ = false;
  running_checksum_ = 0;
  data_records_seen_ = 0;
  checksum_violation_ = false;
  pipeline_.clear();
  append_in_flight_ = false;
  acked_batch_seq_ = next_batch_seq_;
  key_hazards_.clear();
  deferred_reads_.clear();
  lease_deadline_ = 0;
  last_lease_observed_ = Now();
  stepping_down_ = false;
  stats_ = Stats{};
  // A restarted process starts its observability state from zero; cached
  // instrument pointers stay valid because ResetAll zeroes in place.
  metrics_.ResetAll();
  trace_.Clear();
  campaign_started_at_ = 0;
  StartLoops();
  // A restarted process comes back as a recovering replica (§4.2): restore
  // from the latest snapshot, then replay the log.
  StartRecovery();
}

// ---------------------------------------------------------------- requests

void Node::ReplyValue(const Message& m, const Value& v) {
  Reply(m, v.Encode());
}

void Node::FinishCommand(const PendingReply& pr, const char* stage) {
  if (pr.trace.id != 0) {
    trace_.Record(pr.trace.id, stage, Now());
    FamilyHistogram(pr.trace.family)->Record(Now() - pr.trace.received_at);
  }
  ReplyValue(pr.request, pr.reply);
}

Histogram* Node::FamilyHistogram(const std::string& family) {
  auto it = family_hists_.find(family);
  if (it != family_hists_.end()) return it->second;
  Histogram* h = metrics_.GetHistogram("cmd_latency_us", {{"cmd", family}});
  family_hists_.emplace(family, h);
  return h;
}

void Node::SyncDepthGauges() {
  pipeline_depth_gauge_->Set(static_cast<int64_t>(pipeline_.size()));
  tracker_keys_gauge_->Set(static_cast<int64_t>(key_hazards_.size()));
  deferred_reads_gauge_->Set(static_cast<int64_t>(deferred_reads_.size()));
}

void Node::SyncRoleInfo() {
  switch (role_) {
    case DbRole::kPrimary:
      server_info_.role = "master";
      role_gauge_->Set(1);
      break;
    case DbRole::kReplica:
      server_info_.role = "replica";
      role_gauge_->Set(0);
      break;
    case DbRole::kRecovering:
      server_info_.role = "loading";
      role_gauge_->Set(2);
      break;
  }
  server_info_.applied_index = applied_index_;
}

engine::ExecContext Node::MakeContext(engine::Role role) {
  server_info_.applied_index = applied_index_;
  engine::ExecContext ctx;
  ctx.now_ms = Now() / 1000;
  ctx.role = role;
  ctx.rng = &engine_.rng();
  ctx.server = &server_info_;
  return ctx;
}

void Node::HandleCommand(const Message& m) {
  client::DbRequest req;
  if (!client::DbRequest::Decode(m.payload, &req) || req.argv.empty()) {
    ReplyValue(m, Value::Error("ERR protocol error"));
    return;
  }
  ++stats_.commands;
  const std::string name = engine::Engine::Upper(req.argv[0]);
  // Session/cluster commands answered without touching the engine thread.
  if (name == "READONLY" || name == "READWRITE") {
    ReplyValue(m, Value::Ok());
    return;
  }
  if (name == "WAIT") {
    // All acknowledged writes are already durable across AZs; WAIT is
    // trivially satisfied (§3).
    ReplyValue(m, Value::Integer(1));
    return;
  }

  const engine::CommandSpec* spec = engine_.FindCommand(name);
  if (spec == nullptr) {
    ReplyValue(m, Value::Error("ERR unknown command '" + req.argv[0] + "'"));
    return;
  }
  ReqTrace rt{NewTraceId(), Now(), name};
  trace_.Record(rt.id, "cmd.receive", Now());
  const bool is_write = spec->is_write;
  // Accumulate nanosecond costs into whole scheduler microseconds.
  io_cost_carry_ns_ += config_.io_op_cost_ns;
  const Duration io_cost = io_cost_carry_ns_ / 1000;
  io_cost_carry_ns_ %= 1000;
  engine_cost_carry_ns_ += is_write ? config_.engine_write_cost_ns
                                    : config_.engine_read_cost_ns;
  const Duration engine_cost = engine_cost_carry_ns_ / 1000;
  engine_cost_carry_ns_ %= 1000;

  const uint64_t epoch = epoch_;
  io_pool_.SubmitAnd(io_cost, [this, m, req = std::move(req), is_write,
                               engine_cost, epoch, rt]() mutable {
    if (!alive() || epoch != epoch_) return;
    workloop_.SubmitAnd(engine_cost, [this, m, req = std::move(req), is_write,
                                      epoch, rt = std::move(rt)]() mutable {
      if (!alive() || epoch != epoch_) return;
      switch (role_) {
        case DbRole::kPrimary:
          ExecuteOnPrimary(m, {req.argv}, /*multi=*/false, rt);
          return;
        case DbRole::kReplica:
          if (req.readonly && !is_write) {
            ExecuteReadOnReplica(m, req.argv, rt);
          } else {
            const sim::NodeId hint =
                known_primary_ != sim::kInvalidNode ? known_primary_ : id();
            const uint16_t slot =
                req.argv.size() > 1 ? KeyHashSlot(req.argv[1]) : 0;
            ReplyValue(m, Value::Error(client::MovedError(slot, hint)));
          }
          return;
        case DbRole::kRecovering:
          ReplyValue(m, Value::Error(
                            "LOADING MemoryDB is loading the dataset in "
                            "memory"));
          return;
      }
    });
  });
}

void Node::HandleMulti(const Message& m) {
  client::DbMultiRequest req;
  if (!client::DbMultiRequest::Decode(m.payload, &req) ||
      req.commands.empty()) {
    ReplyValue(m, Value::Error("ERR protocol error"));
    return;
  }
  ++stats_.commands;
  ReqTrace rt{NewTraceId(), Now(), "MULTI"};
  trace_.Record(rt.id, "cmd.receive", Now());
  const Duration engine_cost =
      std::max<Duration>(1, config_.engine_write_cost_ns / 1000) *
      req.commands.size();
  const uint64_t epoch = epoch_;
  io_pool_.SubmitAnd(std::max<Duration>(1, config_.io_op_cost_ns / 1000),
                     [this, m, req = std::move(req), engine_cost, epoch,
                      rt]() mutable {
                       if (!alive() || epoch != epoch_) return;
                       workloop_.SubmitAnd(
                           engine_cost,
                           [this, m, req = std::move(req), epoch,
                            rt = std::move(rt)]() mutable {
                             if (!alive() || epoch != epoch_) return;
                             if (role_ != DbRole::kPrimary) {
                               ReplyValue(
                                   m, Value::Error(client::MovedError(
                                          0, known_primary_ == sim::kInvalidNode
                                                 ? id()
                                                 : known_primary_)));
                               return;
                             }
                             ExecuteOnPrimary(m, req.commands, /*multi=*/true,
                                              rt);
                           });
                     });
}

void Node::ExecuteOnPrimary(const Message& m,
                            const std::vector<engine::Argv>& commands,
                            bool multi, const ReqTrace& rt) {
  std::vector<std::string> read_keys;
  uint16_t slot = 0;
  bool has_write = false;
  for (const engine::Argv& argv : commands) {
    const engine::CommandSpec* spec = engine_.FindCommand(argv[0]);
    if (spec != nullptr && spec->is_write) has_write = true;
  }
  Value verdict = CheckSlotAccess(commands, has_write, &read_keys, &slot);
  if (verdict.IsError()) {
    ReplyValue(m, verdict);
    return;
  }

  engine::ExecContext ctx = MakeContext(engine::Role::kPrimary);

  std::vector<Value> replies;
  for (const engine::Argv& argv : commands) {
    replies.push_back(engine_.Execute(argv, &ctx));
  }
  Value final_reply =
      multi ? Value::Array(std::move(replies)) : std::move(replies[0]);

  // Source side of a live migration: mutations of already-transferred keys
  // ride along to the target (§5.2 "replication stream mutations of keys
  // already transmitted").
  if (!ctx.effects.empty() && !read_keys.empty()) {
    auto it = slots_.find(slot);
    if (it != slots_.end() && it->second.state == SlotState::kMigrating) {
      ForwardEffects(slot, ctx.effects);
    }
  }

  if (!ctx.effects.empty()) {
    ++stats_.writes;
    // Chunk this command's effects into the record pipeline; the reply is
    // parked until the record is durable in a majority of AZs (§3.2).
    PendingRecord rec;
    rec.batch_seq = next_batch_seq_++;
    rec.payload = EncodeEffectBatch(ctx.effects);
    rec.trace_id = rt.id;
    rec.replies.push_back(PendingReply{m, std::move(final_reply), rt});
    for (const auto& k : ctx.dirty_keys) key_hazards_[k] = rec.batch_seq;
    trace_.Record(rt.id, "pipeline.enqueue", Now());
    EnqueueRecord(std::move(rec));
    return;
  }

  // Non-mutating (or no-op): consult the tracker for key-level hazards.
  const uint64_t hazard = HazardFor(read_keys);
  if (hazard > acked_batch_seq_) {
    ++stats_.reads_deferred_by_tracker;
    reads_deferred_counter_->Increment();
    trace_.Record(rt.id, "read.hazard_defer", Now(), hazard);
    deferred_reads_.emplace(hazard,
                            PendingReply{m, std::move(final_reply), rt});
    SyncDepthGauges();
    return;
  }
  FinishCommand(PendingReply{m, std::move(final_reply), rt}, "cmd.reply");
}

void Node::ExecuteReadOnReplica(const Message& m, const engine::Argv& argv,
                                const ReqTrace& rt) {
  engine::ExecContext ctx = MakeContext(engine::Role::kReplicaRead);
  // Replica reads never block: data is only visible once committed (§3.2).
  FinishCommand(PendingReply{m, engine_.Execute(argv, &ctx), rt}, "cmd.reply");
}

// ---------------------------------------------------------------- tracker

uint64_t Node::HazardFor(const std::vector<std::string>& keys) const {
  uint64_t hazard = 0;
  for (const std::string& k : keys) {
    auto it = key_hazards_.find(k);
    if (it != key_hazards_.end()) hazard = std::max(hazard, it->second);
  }
  return hazard;
}

void Node::ReleaseUpTo(uint64_t batch_seq) {
  while (!deferred_reads_.empty() &&
         deferred_reads_.begin()->first <= batch_seq) {
    FinishCommand(deferred_reads_.begin()->second, "read.release");
    deferred_reads_.erase(deferred_reads_.begin());
  }
  for (auto it = key_hazards_.begin(); it != key_hazards_.end();) {
    if (it->second <= batch_seq) {
      it = key_hazards_.erase(it);
    } else {
      ++it;
    }
  }
  SyncDepthGauges();
}

// ---------------------------------------------------------------- pipeline

std::string Node::EncodeEffectBatch(const std::vector<engine::Argv>& effects) {
  std::string out;
  PutLengthPrefixed(&out, config_.engine_version);
  for (const engine::Argv& argv : effects) {
    PutVarint64(&out, argv.size());
    for (const std::string& a : argv) PutLengthPrefixed(&out, a);
  }
  return out;
}

bool Node::DecodeEffectBatch(const std::string& payload, std::string* version,
                             std::vector<engine::Argv>* effects) {
  Decoder dec(payload);
  if (!dec.GetLengthPrefixed(version)) return false;
  while (!dec.Empty()) {
    uint64_t argc;
    if (!dec.GetVarint64(&argc) || argc == 0) return false;
    engine::Argv argv(argc);
    for (uint64_t i = 0; i < argc; ++i) {
      if (!dec.GetLengthPrefixed(&argv[i])) return false;
    }
    effects->push_back(std::move(argv));
  }
  return true;
}

void Node::EnqueueRecord(PendingRecord record) {
  if (record.enqueued_at == 0) record.enqueued_at = Now();
  // Group commit: coalesce into the last not-yet-in-flight data record.
  const bool front_in_flight = append_in_flight_;
  if (record.type == txlog::RecordType::kData && !pipeline_.empty()) {
    PendingRecord& back = pipeline_.back();
    const bool back_is_front = (pipeline_.size() == 1);
    if (back.type == txlog::RecordType::kData &&
        !(back_is_front && front_in_flight)) {
      // Strip the version header of the incoming batch before appending.
      Decoder dec(record.payload);
      std::string version;
      dec.GetLengthPrefixed(&version);
      back.payload.append(record.payload.substr(dec.Position()));
      back.data_records += record.data_records;
      back.batch_seq = std::max(back.batch_seq, record.batch_seq);
      for (auto& r : record.replies) back.replies.push_back(std::move(r));
      SyncDepthGauges();
      FlushPipeline();
      return;
    }
  }
  pipeline_.push_back(std::move(record));
  SyncDepthGauges();
  FlushPipeline();
}

void Node::FlushPipeline() {
  if (append_in_flight_ || pipeline_.empty() || role_ != DbRole::kPrimary) {
    return;
  }
  append_in_flight_ = true;
  PendingRecord& rec = pipeline_.front();
  if (rec.type == txlog::RecordType::kChecksum && rec.payload.empty()) {
    PutFixed64(&rec.payload, running_checksum_);
    PutVarint64(&rec.payload, data_records_seen_);
  }
  rec.issued_at = Now();
  trace_.Record(rec.trace_id, "append.issue", Now(), predicted_tail_);
  txlog::LogRecord r;
  r.type = rec.type;
  r.writer = id();
  r.request_id = next_request_id_++;
  // The trace id rides the wire so log replicas stamp spans under the same
  // id the node used; coalesced batches keep the first command's id.
  r.trace_id = rec.trace_id;
  r.payload = rec.payload;
  const uint64_t epoch = epoch_;
  log_.Append(predicted_tail_, std::move(r),
              [this, epoch](const Status& s, uint64_t index) {
                if (!alive() || epoch != epoch_) return;
                OnAppendResult(s, index);
              });
}

void Node::OnAppendResult(const Status& s, uint64_t index) {
  append_in_flight_ = false;
  if (s.ok()) {
    PendingRecord rec = std::move(pipeline_.front());
    pipeline_.pop_front();
    ++stats_.records_appended;
    records_appended_counter_->Increment();
    append_hist_->Record(Now() - rec.issued_at);
    trace_.Record(rec.trace_id, "append.ack", Now(), index);
    predicted_tail_ = index;
    applied_index_ = index;
    if (rec.type == txlog::RecordType::kData) {
      running_checksum_ = Crc64(running_checksum_, rec.payload);
      data_records_seen_ += 1;
      data_since_checksum_ += 1;
      if (data_since_checksum_ >= config_.checksum_every) {
        data_since_checksum_ = 0;
        PendingRecord csum;
        csum.type = txlog::RecordType::kChecksum;
        csum.batch_seq = next_batch_seq_++;
        csum.data_records = 0;
        // Payload is filled at flush time: by then every record ahead of it
        // in the pipeline has committed, so the running checksum matches
        // the record's position in the log.
        pipeline_.push_back(std::move(csum));
      }
    } else if (rec.type == txlog::RecordType::kLease) {
      if (rec.payload == "release") {
        // Collaborative handover (§5.2): the release is durable; replicas
        // observing it campaign immediately. Stop serving now.
        acked_batch_seq_ = std::max(acked_batch_seq_, rec.batch_seq);
        for (PendingReply& pr : rec.replies) {
          FinishCommand(pr, "cmd.release");
        }
        Demote("collaborative handover");
        return;
      }
      lease_renew_hist_->Record(Now() - rec.enqueued_at);
      lease_deadline_ = Now() + config_.lease_duration;
    }
    acked_batch_seq_ = std::max(acked_batch_seq_, rec.batch_seq);
    for (PendingReply& pr : rec.replies) {
      if (rec.type == txlog::RecordType::kData && pr.trace.id != 0) {
        write_commit_hist_->Record(Now() - pr.trace.received_at);
      }
      FinishCommand(pr, "cmd.release");
    }
    ReleaseUpTo(acked_batch_seq_);
    FlushPipeline();
    return;
  }
  if (s.IsConditionFailed()) {
    ResyncAfterConditionFailure();
    return;
  }
  // Log unreachable (Unavailable/TimedOut after retries): keep trying while
  // the lease lasts; CheckLease() demotes us if this goes on too long.
  After(30 * sim::kMs, [this] {
    if (role_ == DbRole::kPrimary) FlushPipeline();
  });
}

void Node::ResyncAfterConditionFailure() {
  const uint64_t epoch = epoch_;
  log_.Read(
      predicted_tail_ + 1, 256,
      [this, epoch](const Status& s, const txlog::wire::ClientReadResponse& r) {
        if (!alive() || epoch != epoch_ || role_ != DbRole::kPrimary) return;
        if (!s.ok()) {
          After(30 * sim::kMs, [this] {
            if (role_ == DbRole::kPrimary) ResyncAfterConditionFailure();
          });
          return;
        }
        for (const txlog::LogEntry& e : r.entries) {
          if ((e.record.type == txlog::RecordType::kLeadership ||
               e.record.type == txlog::RecordType::kData ||
               e.record.type == txlog::RecordType::kLease) &&
              e.record.writer != id()) {
            // A different node wrote to our log: we have been superseded.
            Demote("fenced by foreign log entry");
            return;
          }
          predicted_tail_ = e.index;
        }
        if (r.entries.empty()) {
          // Tail moved past our prediction but nothing committed yet
          // (log-service view change in progress). Wait and retry.
          After(20 * sim::kMs, [this] {
            if (role_ == DbRole::kPrimary) ResyncAfterConditionFailure();
          });
          return;
        }
        FlushPipeline();
      });
}

// ---------------------------------------------------------------- roles

void Node::RenewLease() {
  if (role_ != DbRole::kPrimary || stepping_down_) return;
  for (const PendingRecord& r : pipeline_) {
    if (r.type == txlog::RecordType::kLease) return;  // one at a time
  }
  PendingRecord rec;
  rec.type = txlog::RecordType::kLease;
  rec.batch_seq = next_batch_seq_++;
  rec.data_records = 0;
  EnqueueRecord(std::move(rec));
}

void Node::CheckLease() {
  if (role_ == DbRole::kPrimary && Now() > lease_deadline_) {
    Demote(stepping_down_ ? "stepped down" : "lease expired");
  }
}

void Node::BecomePrimary(uint64_t leadership_index) {
  ++epoch_;
  poll_in_flight_ = false;
  role_ = DbRole::kPrimary;
  known_primary_ = id();
  ++stats_.promotions;
  if (campaign_started_at_ != 0) {
    election_hist_->Record(Now() - campaign_started_at_);
    campaign_started_at_ = 0;
  }
  metrics_.GetCounter("node_promotions_total")->Increment();
  SyncRoleInfo();
  predicted_tail_ = leadership_index;
  applied_index_ = leadership_index;
  lease_deadline_ = Now() + config_.lease_duration;
  stepping_down_ = false;
  append_in_flight_ = false;
  RenewLease();
}

void Node::Demote(const std::string& reason) {
  ++epoch_;
  ++stats_.demotions;
  role_ = DbRole::kRecovering;
  append_in_flight_ = false;
  poll_in_flight_ = false;
  // Writes executed locally but never acknowledged must not become visible;
  // their clients get an error and the dataset is rebuilt from durable
  // state (§3.2: failed commits are never acknowledged).
  const Value err = Value::Error("UNAVAILABLE primary demoted (" + reason + ")");
  for (PendingRecord& rec : pipeline_) {
    for (PendingReply& pr : rec.replies) ReplyValue(pr.request, err);
  }
  pipeline_.clear();
  for (auto& [seq, pr] : deferred_reads_) ReplyValue(pr.request, err);
  deferred_reads_.clear();
  key_hazards_.clear();
  metrics_.GetCounter("node_demotions_total")->Increment();
  SyncDepthGauges();
  StartRecovery();
}

void Node::StepDown() {
  if (role_ != DbRole::kPrimary || stepping_down_) return;
  stepping_down_ = true;
  // Append a durable lease release; on commit we demote and any replica
  // observing it becomes immediately eligible to campaign.
  PendingRecord rec;
  rec.type = txlog::RecordType::kLease;
  rec.payload = "release";
  rec.batch_seq = next_batch_seq_++;
  rec.data_records = 0;
  EnqueueRecord(std::move(rec));
}

void Node::Campaign() {
  if (role_ != DbRole::kReplica || version_blocked_ || !caught_up_) return;
  campaign_started_at_ = Now();
  metrics_.GetCounter("node_campaigns_total")->Increment();
  const uint64_t epoch = epoch_;
  txlog::LogRecord r;
  r.type = txlog::RecordType::kLeadership;
  r.writer = id();
  r.request_id = next_request_id_++;
  log_.Append(applied_index_, std::move(r),
              [this, epoch](const Status& s, uint64_t index) {
                if (!alive() || epoch != epoch_ ||
                    role_ != DbRole::kReplica) {
                  return;
                }
                if (s.ok()) {
                  BecomePrimary(index);
                } else {
                  // Lost the race or not actually caught up; keep tailing.
                  last_lease_observed_ = Now();
                }
              });
}

void Node::MaybeCampaign() {
  if (role_ != DbRole::kReplica || version_blocked_) return;
  const bool bootstrap = config_.bootstrap_as_primary &&
                         !observed_any_lease_ && stats_.promotions == 0;
  const bool backoff_elapsed =
      Now() > last_lease_observed_ + config_.backoff_duration;
  if ((bootstrap || backoff_elapsed) && caught_up_) Campaign();
}

// ---------------------------------------------------------------- replica

void Node::PollLog() {
  if (poll_in_flight_ || version_blocked_) return;
  poll_in_flight_ = true;
  const uint64_t epoch = epoch_;
  log_.Read(
      applied_index_ + 1, 256,
      [this, epoch](const Status& s, const txlog::wire::ClientReadResponse& r) {
        if (!alive() || epoch != epoch_) return;
        poll_in_flight_ = false;
        if (role_ != DbRole::kReplica) return;
        if (!s.ok()) return;
        if (r.first_index > applied_index_ + 1) {
          // The log was trimmed past us; we must restore from a snapshot.
          StartRecovery();
          return;
        }
        size_t effects_applied = 0;
        for (const txlog::LogEntry& e : r.entries) {
          effects_applied += ApplyEntry(e);
          if (version_blocked_) break;
        }
        if (effects_applied > 0) {
          metrics_.GetCounter("node_effects_applied_total")
              ->Increment(effects_applied);
        }
        metrics_.GetGauge("node_replication_lag")
            ->Set(static_cast<int64_t>(
                r.commit_index > applied_index_
                    ? r.commit_index - applied_index_
                    : 0));
        caught_up_ = applied_index_ >= r.commit_index;
        if (!r.entries.empty() && !caught_up_) {
          // Replay burns replica CPU: throttle the next batch by the
          // engine cost of what was just applied.
          const sim::Duration replay_cost =
              effects_applied * config_.engine_write_cost_ns / 1000;
          After(replay_cost, [this] { PollLog(); });
        }
      });
}

size_t Node::ApplyEntry(const txlog::LogEntry& entry) {
  size_t effects_applied = 0;
  switch (entry.record.type) {
    case txlog::RecordType::kData: {
      std::string version;
      std::vector<engine::Argv> effects;
      if (!DecodeEffectBatch(entry.record.payload, &version, &effects)) {
        checksum_violation_ = true;
        break;
      }
      if (CompareEngineVersions(version, config_.engine_version) > 0) {
        // Replication stream produced by a newer engine: stop consuming
        // (§7.1 upgrade protection) — do not advance applied_index_.
        version_blocked_ = true;
        return 0;
      }
      for (const engine::Argv& argv : effects) {
        engine_.Apply(argv, Now() / 1000);
        ++effects_applied;
      }
      running_checksum_ = Crc64(running_checksum_, entry.record.payload);
      ++data_records_seen_;
      break;
    }
    case txlog::RecordType::kChecksum: {
      Decoder dec(entry.record.payload);
      uint64_t expected;
      if (dec.GetFixed64(&expected) && expected != running_checksum_) {
        checksum_violation_ = true;
      }
      break;
    }
    case txlog::RecordType::kLease:
      if (entry.record.payload == "release" &&
          entry.record.writer != id()) {
        // The primary handed leadership over; campaign as soon as caught
        // up. (The releaser itself waits out a normal backoff so it does
        // not immediately reclaim the lease it just gave up.)
        last_lease_observed_ =
            Now() > config_.backoff_duration ? Now() - config_.backoff_duration
                                             : 0;
        observed_any_lease_ = true;
        break;
      }
      [[fallthrough]];
    case txlog::RecordType::kLeadership:
      last_lease_observed_ = Now();
      observed_any_lease_ = true;
      known_primary_ = static_cast<NodeId>(entry.record.writer);
      break;
    case txlog::RecordType::kSlotOwnership:
      // 2PC progress is durable in the log (§5.2): replicas track it so a
      // promoted primary resumes the transfer protocol where it stopped.
      ApplySlotOwnershipRecord(entry.record);
      break;
    case txlog::RecordType::kNoop:
      break;
  }
  applied_index_ = entry.index;
  return effects_applied;
}

// ---------------------------------------------------------------- recovery

void Node::StartRecovery() {
  ++stats_.recoveries;
  role_ = DbRole::kRecovering;
  SyncRoleInfo();
  const uint64_t epoch = ++epoch_;
  engine_.keyspace().Clear();
  applied_index_ = 0;
  running_checksum_ = 0;
  data_records_seen_ = 0;
  caught_up_ = false;
  poll_in_flight_ = false;

  if (!s3_.valid()) {
    FinishRecovery();
    return;
  }
  // Fetch and load the latest snapshot, then replay the log from its
  // recorded position — a purely local process (§4.2.1).
  s3_.List("snap/" + config_.shard_id + "/",
           [this, epoch](const Status& s, const std::vector<std::string>& keys) {
             if (!alive() || epoch != epoch_) return;
             if (!s.ok() || keys.empty()) {
               FinishRecovery();  // no snapshot yet: replay from log start
               return;
             }
             s3_.Get(keys.back(), [this, epoch](const Status& gs,
                                                const std::string& blob) {
               if (!alive() || epoch != epoch_) return;
               if (gs.ok()) {
                 engine::SnapshotMeta meta;
                 if (DeserializeSnapshot(blob, &engine_.keyspace(), &meta)
                         .ok()) {
                   applied_index_ = meta.log_position;
                   running_checksum_ = meta.log_running_checksum;
                 } else {
                   engine_.keyspace().Clear();
                 }
               }
               FinishRecovery();
             });
           });
}

void Node::FinishRecovery() {
  role_ = DbRole::kReplica;
  SyncRoleInfo();
  last_lease_observed_ = Now();
  PollLog();
}

}  // namespace memdb::memorydb
