#include "memorydb/shard.h"

namespace memdb::memorydb {

Shard::Shard(sim::Simulation* sim, Options options)
    : sim_(sim), options_(std::move(options)) {
  log_ = std::make_unique<txlog::LogGroup>(sim_, options_.raft_options);

  // Primary candidate in AZ 0, replicas spread across the remaining AZs.
  for (int i = 0; i <= options_.num_replicas; ++i) {
    const sim::AzId az = static_cast<sim::AzId>(i % sim::kNumAzs);
    const sim::NodeId id = sim_->AddHost(az);
    node_ids_.push_back(id);
    nodes_.push_back(
        std::make_unique<Node>(sim_, id, MakeNodeConfig(/*bootstrap=*/i == 0)));
  }

  if (options_.with_offbox &&
      options_.object_store != sim::kInvalidNode) {
    OffboxConfig oc;
    oc.shard_id = options_.shard_id;
    oc.log_replicas = log_->replica_ids();
    oc.object_store = options_.object_store;
    oc.engine_version = options_.node_template.engine_version;
    oc.synthetic_dataset_bytes = options_.offbox_synthetic_bytes;
    offbox_ = std::make_unique<OffboxSnapshotter>(
        sim_, sim_->AddHost(0), std::move(oc));

    SnapshotScheduler::Config sc = options_.scheduler_config;
    sc.shard_id = options_.shard_id;
    sc.log_replicas = log_->replica_ids();
    sc.object_store = options_.object_store;
    scheduler_ = std::make_unique<SnapshotScheduler>(
        sim_, sim_->AddHost(1), std::move(sc), offbox_.get());
  }
}

NodeConfig Shard::MakeNodeConfig(bool bootstrap) const {
  NodeConfig nc = options_.node_template;
  nc.shard_id = options_.shard_id;
  nc.log_replicas = log_->replica_ids();
  nc.object_store = options_.object_store;
  nc.bootstrap_as_primary = bootstrap;
  return nc;
}

Node* Shard::Primary() {
  for (auto& n : nodes_) {
    if (sim_->IsAlive(n->id()) && n->IsPrimary()) return n.get();
  }
  return nullptr;
}

Node* Shard::AnyReplica() {
  for (auto& n : nodes_) {
    if (sim_->IsAlive(n->id()) && n->db_role() == Node::DbRole::kReplica) {
      return n.get();
    }
  }
  return nullptr;
}

Node* Shard::AddReplica() {
  const sim::AzId az =
      static_cast<sim::AzId>(node_ids_.size() % sim::kNumAzs);
  const sim::NodeId id = sim_->AddHost(az);
  node_ids_.push_back(id);
  nodes_.push_back(
      std::make_unique<Node>(sim_, id, MakeNodeConfig(/*bootstrap=*/false)));
  return nodes_.back().get();
}

void Shard::CrashNode(size_t i) { sim_->Crash(node_ids_[i]); }
void Shard::RestartNode(size_t i) { sim_->Restart(node_ids_[i]); }

}  // namespace memdb::memorydb
