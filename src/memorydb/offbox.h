// Off-box snapshotting (§4.2.2) and snapshot scheduling (§4.2.3).
//
// OffboxSnapshotter is an ephemeral shadow replica on its own host: it
// restores the shard's latest snapshot from the object store, replays the
// transaction log up to the tail recorded at start, verifies the running
// checksum chain along the way (§7.2.1 — this *is* the snapshot correctness
// verification: the prior snapshot's checksum must line up with the log's
// injected checksum records), dumps a fresh snapshot, rehearses restoring
// it, and uploads. Customer nodes are never involved, so customer traffic
// sees no fork/COW cost (Figure 7).
//
// SnapshotScheduler watches snapshot freshness — the distance between the
// latest snapshot's log position and the log tail — and triggers the
// off-box process when it exceeds a bound, then trims the log behind the
// new snapshot, keeping restores snapshot-dominant.

#ifndef MEMDB_MEMORYDB_OFFBOX_H_
#define MEMDB_MEMORYDB_OFFBOX_H_

#include <functional>
#include <string>
#include <vector>

#include "engine/engine.h"
#include "engine/snapshot.h"
#include "sim/actor.h"
#include "sim/queue_server.h"
#include "storage/object_store.h"
#include "txlog/client.h"

namespace memdb::memorydb {

struct OffboxConfig {
  std::string shard_id = "shard-0";
  std::vector<sim::NodeId> log_replicas;
  sim::NodeId object_store = sim::kInvalidNode;
  std::string engine_version = "7.0.7";
  // Serialization throughput of the shadow replica (bytes/sec) — bounds how
  // long a snapshot takes, not customer latency.
  uint64_t serialize_bytes_per_sec = 256ULL << 20;
  // Models a large dataset without materializing it: added to the blob size
  // when computing serialization time (benchmark realism knob).
  uint64_t synthetic_dataset_bytes = 0;
};

class OffboxSnapshotter : public sim::Actor {
 public:
  using DoneCallback = std::function<void(const Status&, uint64_t position)>;

  OffboxSnapshotter(sim::Simulation* sim, sim::NodeId id, OffboxConfig config);

  // Runs one snapshot cycle. Calls `done` with the snapshot's log position
  // on success. Only one cycle at a time.
  void Snapshot(DoneCallback done);

  bool busy() const { return busy_; }
  uint64_t snapshots_created() const { return snapshots_created_; }
  bool verification_failed() const { return verification_failed_; }
  void SetSyntheticDatasetBytes(uint64_t bytes) {
    config_.synthetic_dataset_bytes = bytes;
  }

 private:
  void RestoreLatestSnapshot();
  void ReplayFrom(uint64_t from_index);
  void DumpAndUpload();
  void Finish(const Status& s, uint64_t position);

  OffboxConfig config_;
  engine::Engine engine_;
  txlog::TxLogClient log_;
  storage::StorageClient s3_;
  sim::QueueServer cpu_;

  bool busy_ = false;
  DoneCallback done_;
  uint64_t target_tail_ = 0;
  uint64_t applied_index_ = 0;
  uint64_t running_checksum_ = 0;
  bool verification_failed_ = false;
  uint64_t snapshots_created_ = 0;
  uint64_t cycle_ = 0;
};

// Schedules snapshot creation based on freshness (§4.2.3): the staler the
// latest snapshot relative to the log tail, the sooner a new one is cut.
class SnapshotScheduler : public sim::Actor {
 public:
  struct Config {
    std::string shard_id = "shard-0";
    std::vector<sim::NodeId> log_replicas;
    sim::NodeId object_store = sim::kInvalidNode;
    // Trigger a snapshot when tail - snapshot_position exceeds this.
    uint64_t max_log_distance = 512;
    sim::Duration check_interval = 500 * sim::kMs;
    // After a snapshot at position P, trim the log to P - trim_slack.
    uint64_t trim_slack = 64;
  };

  SnapshotScheduler(sim::Simulation* sim, sim::NodeId id, Config config,
                    OffboxSnapshotter* offbox);

  uint64_t snapshots_triggered() const { return snapshots_triggered_; }
  uint64_t last_snapshot_position() const { return last_snapshot_position_; }

 private:
  void Check();

  Config config_;
  OffboxSnapshotter* offbox_;
  txlog::TxLogClient log_;
  uint64_t last_snapshot_position_ = 0;
  uint64_t snapshots_triggered_ = 0;
};

}  // namespace memdb::memorydb

#endif  // MEMDB_MEMORYDB_OFFBOX_H_
