// Slot ownership and migration (§5.2): the node-side half of resharding.
// A MigrationCoordinator (src/cluster) drives these handlers:
//
//   data movement    — the source serializes each key of the slot (DUMP)
//                      and streams it to the target, which re-creates it
//                      (RESTORE) through its own transaction log; mutations
//                      of already-transferred keys are forwarded on the
//                      same ordered channel;
//   ownership change — writes to the slot are briefly blocked, a data
//                      integrity digest is compared, and ownership flips
//                      via 2-phase-commit records durably appended to both
//                      shards' transaction logs.

#include <algorithm>

#include "common/crc.h"
#include "engine/snapshot.h"
#include "memorydb/node.h"

namespace memdb::memorydb {

using sim::Duration;
using sim::Message;
using sim::NodeId;
using resp::Value;

namespace {

// Payload of kSlotOwnership records and db.slot_ownership requests.
struct OwnershipMsg {
  uint8_t phase = 0;  // 1=prepare-source 2=prepare-target
                      // 3=commit-source  4=commit-target
  uint16_t slot = 0;
  uint64_t peer = 0;

  std::string Encode() const {
    std::string out;
    PutVarint64(&out, phase);
    PutVarint64(&out, slot);
    PutVarint64(&out, peer);
    return out;
  }
  static bool Decode(Slice data, OwnershipMsg* out) {
    Decoder dec(data);
    uint64_t phase, slot, peer;
    if (!dec.GetVarint64(&phase) || !dec.GetVarint64(&slot) ||
        !dec.GetVarint64(&peer)) {
      return false;
    }
    out->phase = static_cast<uint8_t>(phase);
    out->slot = static_cast<uint16_t>(slot);
    out->peer = peer;
    return true;
  }
};

}  // namespace

void Node::SetSlotState(uint16_t slot, SlotState state, NodeId peer) {
  if (state == SlotState::kOwned) {
    slots_.erase(slot);
    return;
  }
  SlotInfo& info = slots_[slot];
  info.state = state;
  info.peer = peer;
}

Node::SlotState Node::slot_state(uint16_t slot) const {
  auto it = slots_.find(slot);
  return it == slots_.end() ? SlotState::kOwned : it->second.state;
}

Value Node::CheckSlotAccess(const std::vector<engine::Argv>& commands,
                            bool has_write, std::vector<std::string>* keys,
                            uint16_t* slot_out) {
  for (const engine::Argv& argv : commands) {
    const engine::CommandSpec* spec = engine_.FindCommand(argv[0]);
    if (spec == nullptr) continue;
    for (auto& k : engine::Engine::CommandKeys(*spec, argv)) {
      keys->push_back(std::move(k));
    }
  }
  if (keys->empty()) return Value::Null();  // keyless commands always run

  const uint16_t slot = KeyHashSlot((*keys)[0]);
  *slot_out = slot;
  for (const std::string& k : *keys) {
    if (KeyHashSlot(k) != slot) {
      return Value::Error(
          "CROSSSLOT Keys in request don't hash to the same slot");
    }
  }
  auto it = slots_.find(slot);
  if (it == slots_.end()) return Value::Null();  // owned
  switch (it->second.state) {
    case SlotState::kOwned:
    case SlotState::kImporting:
      return Value::Null();
    case SlotState::kNotOwned:
      return Value::Error(client::MovedError(slot, it->second.peer));
    case SlotState::kBlocked:
      // Only *new write operations* are blocked during the ownership
      // handshake (§5.2); reads keep flowing.
      if (has_write) return Value::Error("TRYAGAIN slot is being migrated");
      return Value::Null();
    case SlotState::kMigrating: {
      // Keys still present are served here; transferred-and-deleted or
      // never-existing keys are redirected with ASK.
      for (const std::string& k : *keys) {
        if (engine_.keyspace().FindRaw(k) == nullptr) {
          return Value::Error(client::AskError(slot, it->second.peer));
        }
      }
      return Value::Null();
    }
  }
  return Value::Null();
}

void Node::ApplyAndReplicate(const std::vector<engine::Argv>& effects) {
  for (const engine::Argv& argv : effects) {
    engine_.Apply(argv, Now() / 1000);
  }
  PendingRecord rec;
  rec.batch_seq = next_batch_seq_++;
  rec.payload = EncodeEffectBatch(effects);
  for (const engine::Argv& argv : effects) {
    const engine::CommandSpec* spec = engine_.FindCommand(argv[0]);
    if (spec == nullptr) continue;
    for (auto& k : engine::Engine::CommandKeys(*spec, argv)) {
      key_hazards_[k] = rec.batch_seq;
    }
  }
  EnqueueRecord(std::move(rec));
}

// ----------------------------------------------------------- source side

void Node::ForwardEffects(uint16_t slot, const std::vector<engine::Argv>& effects) {
  std::string payload;
  PutVarint64(&payload, slot);
  PutVarint64(&payload, effects.size());
  for (const engine::Argv& argv : effects) {
    PutVarint64(&payload, argv.size());
    for (const std::string& a : argv) PutLengthPrefixed(&payload, a);
  }
  migration_queue_[slot].emplace_back("db.slot_apply", std::move(payload));
  PumpMigrationQueue(slot);
}

void Node::StreamMigratingSlot(uint16_t slot) {
  // Serialize every key currently in the slot into ordered RESTORE batches.
  const auto& keys = engine_.keyspace().KeysInSlot(slot);
  std::vector<std::string> snapshot_keys(keys.begin(), keys.end());
  constexpr size_t kBatch = 16;
  for (size_t i = 0; i < snapshot_keys.size(); i += kBatch) {
    std::string payload;
    PutVarint64(&payload, slot);
    const size_t end = std::min(snapshot_keys.size(), i + kBatch);
    PutVarint64(&payload, end - i);
    for (size_t j = i; j < end; ++j) {
      const engine::Keyspace::Entry* e = engine_.keyspace().FindRaw(snapshot_keys[j]);
      if (e == nullptr) continue;
      PutLengthPrefixed(&payload, snapshot_keys[j]);
      PutFixed64(&payload, e->expire_at_ms);
      std::string dump;
      engine::SerializeValue(e->value, &dump);
      PutFixed64(&dump, Crc64(0, dump.data(), dump.size()));
      PutLengthPrefixed(&payload, dump);
    }
    migration_queue_[slot].emplace_back("db.slot_import", std::move(payload));
  }
  // End-of-stream marker (consumed locally by the pump).
  migration_queue_[slot].emplace_back("__stream_done", "");
  PumpMigrationQueue(slot);
}

void Node::PumpMigrationQueue(uint16_t slot) {
  if (migration_rpc_inflight_[slot]) return;
  auto& queue = migration_queue_[slot];
  while (!queue.empty() && queue.front().first == "__stream_done") {
    slots_[slot].stream_done = true;
    queue.pop_front();
  }
  if (queue.empty()) return;
  auto it = slots_.find(slot);
  if (it == slots_.end() || it->second.peer == sim::kInvalidNode) return;
  migration_rpc_inflight_[slot] = true;
  auto [type, payload] = queue.front();
  const uint64_t epoch = epoch_;
  Rpc(it->second.peer, type, payload, 2 * sim::kSec,
      [this, slot, epoch](const Status& s, const std::string&) {
        if (!alive() || epoch != epoch_) return;
        migration_rpc_inflight_[slot] = false;
        if (s.ok()) migration_queue_[slot].pop_front();
        // On failure the same message is retried (idempotent RESTOREs).
        After(s.ok() ? 0 : 20 * sim::kMs,
              [this, slot] { PumpMigrationQueue(slot); });
      });
}

// ----------------------------------------------------------- handlers

void Node::RegisterSlotHandlers() {
  On("db.health", [this](const Message& m) {
    std::string out;
    PutVarint64(&out, static_cast<uint64_t>(role_));
    PutVarint64(&out, applied_index_);
    Reply(m, std::move(out));
  });

  // Coordinator -> target: start accepting the slot.
  On("db.slot_set_importing", [this](const Message& m) {
    Decoder dec(m.payload);
    uint64_t slot, source;
    if (!dec.GetVarint64(&slot) || !dec.GetVarint64(&source)) return;
    SetSlotState(static_cast<uint16_t>(slot), SlotState::kImporting,
                 static_cast<NodeId>(source));
    Reply(m, "");
  });

  // Coordinator -> source: begin the data movement phase.
  On("db.slot_migrate_start", [this](const Message& m) {
    Decoder dec(m.payload);
    uint64_t slot, target;
    if (!dec.GetVarint64(&slot) || !dec.GetVarint64(&target)) return;
    if (role_ != DbRole::kPrimary) {
      ReplyError(m, Status::Unavailable("not primary"));
      return;
    }
    SetSlotState(static_cast<uint16_t>(slot), SlotState::kMigrating,
                 static_cast<NodeId>(target));
    slots_[static_cast<uint16_t>(slot)].stream_done = false;
    StreamMigratingSlot(static_cast<uint16_t>(slot));
    Reply(m, "");
  });

  // Source -> target: batch of serialized keys.
  On("db.slot_import", [this](const Message& m) {
    if (role_ != DbRole::kPrimary) {
      ReplyError(m, Status::Unavailable("not primary"));
      return;
    }
    Decoder dec(m.payload);
    uint64_t slot, count;
    if (!dec.GetVarint64(&slot) || !dec.GetVarint64(&count)) return;
    std::vector<engine::Argv> restores;
    for (uint64_t i = 0; i < count; ++i) {
      std::string key, dump;
      uint64_t expire_at;
      if (!dec.GetLengthPrefixed(&key) || !dec.GetFixed64(&expire_at) ||
          !dec.GetLengthPrefixed(&dump)) {
        break;
      }
      restores.push_back({"RESTORE", key, std::to_string(expire_at), dump,
                          "REPLACE", "ABSTTL"});
    }
    if (!restores.empty()) ApplyAndReplicate(restores);
    Reply(m, "");
  });

  // Source -> target: forwarded mutations of transferred keys.
  On("db.slot_apply", [this](const Message& m) {
    if (role_ != DbRole::kPrimary) {
      ReplyError(m, Status::Unavailable("not primary"));
      return;
    }
    Decoder dec(m.payload);
    uint64_t slot, count;
    if (!dec.GetVarint64(&slot) || !dec.GetVarint64(&count)) return;
    std::vector<engine::Argv> effects;
    for (uint64_t i = 0; i < count; ++i) {
      uint64_t argc;
      if (!dec.GetVarint64(&argc)) break;
      engine::Argv argv(argc);
      bool ok = true;
      for (uint64_t j = 0; j < argc && ok; ++j) {
        ok = dec.GetLengthPrefixed(&argv[j]);
      }
      if (!ok) break;
      effects.push_back(std::move(argv));
    }
    if (!effects.empty()) ApplyAndReplicate(effects);
    Reply(m, "");
  });

  // Coordinator -> source: data-movement progress.
  On("db.slot_migrate_status", [this](const Message& m) {
    Decoder dec(m.payload);
    uint64_t slot;
    if (!dec.GetVarint64(&slot)) return;
    std::string out;
    auto it = slots_.find(static_cast<uint16_t>(slot));
    const bool stream_done = it != slots_.end() && it->second.stream_done;
    const bool queue_empty =
        migration_queue_[static_cast<uint16_t>(slot)].empty();
    PutVarint64(&out, stream_done && queue_empty ? 1 : 0);
    Reply(m, std::move(out));
  });

  // Coordinator -> source: block writes, wait for in-progress operations to
  // finish propagating to both transaction logs (§5.2).
  On("db.slot_block", [this](const Message& m) {
    Decoder dec(m.payload);
    uint64_t slot;
    if (!dec.GetVarint64(&slot)) return;
    SetSlotState(static_cast<uint16_t>(slot), SlotState::kBlocked,
                 slots_.count(static_cast<uint16_t>(slot))
                     ? slots_[static_cast<uint16_t>(slot)].peer
                     : sim::kInvalidNode);
    // Reply once the append pipeline and the migration channel drain; the
    // check self-reschedules every few milliseconds until then.
    WaitForDrainThenReply(m, static_cast<uint16_t>(slot));
  });

  // Data integrity handshake: digest of the slot's content.
  On("db.slot_digest", [this](const Message& m) {
    Decoder dec(m.payload);
    uint64_t slot;
    if (!dec.GetVarint64(&slot)) return;
    const auto& keys = engine_.keyspace().KeysInSlot(static_cast<uint16_t>(slot));
    uint64_t crc = 0;
    uint64_t count = 0;
    for (const std::string& key : keys) {  // std::set: sorted order
      const engine::Keyspace::Entry* e = engine_.keyspace().FindRaw(key);
      if (e == nullptr) continue;
      std::string buf;
      PutLengthPrefixed(&buf, key);
      PutFixed64(&buf, e->expire_at_ms);
      engine::SerializeValue(e->value, &buf);
      crc = Crc64(crc, buf.data(), buf.size());
      ++count;
    }
    std::string out;
    PutVarint64(&out, count);
    PutFixed64(&out, crc);
    // `pending` tells the coordinator our log pipeline has not drained yet.
    PutVarint64(&out, pipeline_.empty() && !append_in_flight_ ? 0 : 1);
    Reply(m, std::move(out));
  });

  // 2PC ownership records, durably appended to this shard's log.
  On("db.slot_ownership", [this](const Message& m) { HandleSlotOwnership(m); });

  // Coordinator -> any node: authoritative slot owner hint (control-plane /
  // cluster-bus role propagation).
  On("db.slot_update", [this](const Message& m) {
    Decoder dec(m.payload);
    uint64_t slot, owner;
    if (!dec.GetVarint64(&slot) || !dec.GetVarint64(&owner)) return;
    if (static_cast<NodeId>(owner) == id() ||
        (role_ == DbRole::kPrimary && static_cast<NodeId>(owner) == id())) {
      SetSlotState(static_cast<uint16_t>(slot), SlotState::kOwned);
    } else {
      SetSlotState(static_cast<uint16_t>(slot), SlotState::kNotOwned,
                   static_cast<NodeId>(owner));
    }
    Reply(m, "");
  });

  // Coordinator -> source/target: migration failed (the abort path of
  // §5.2). payload = {slot, resume_owned}: the source resumes serving the
  // slot; the target discards the transferred data.
  On("db.slot_abort", [this](const Message& m) {
    Decoder dec(m.payload);
    uint64_t slot, resume_owned = 1;
    if (!dec.GetVarint64(&slot)) return;
    dec.GetVarint64(&resume_owned);
    migration_queue_[static_cast<uint16_t>(slot)].clear();
    if (resume_owned != 0) {
      SetSlotState(static_cast<uint16_t>(slot), SlotState::kOwned);
    } else {
      // Target side: delete everything that was transferred, then treat
      // the slot as foreign again.
      SetSlotState(static_cast<uint16_t>(slot), SlotState::kNotOwned,
                   m.from);
      if (role_ == DbRole::kPrimary) {
        BackgroundDeleteSlot(static_cast<uint16_t>(slot));
      }
    }
    Reply(m, "");
  });
}

void Node::HandleSlotOwnership(const Message& m) {
  OwnershipMsg msg;
  if (!OwnershipMsg::Decode(m.payload, &msg)) return;
  if (role_ != DbRole::kPrimary) {
    ReplyError(m, Status::Unavailable("not primary"));
    return;
  }
  PendingRecord rec;
  rec.type = txlog::RecordType::kSlotOwnership;
  rec.batch_seq = next_batch_seq_++;
  rec.data_records = 0;
  rec.payload = msg.Encode();
  rec.replies.push_back(PendingReply{m, Value::Ok(), ReqTrace{}});
  EnqueueRecord(std::move(rec));
  // State transition happens when the record commits; the primary applies
  // it immediately here (replicas apply it from the log).
  ApplySlotOwnershipRecord([&] {
    txlog::LogRecord r;
    r.payload = msg.Encode();
    return r;
  }());
}

void Node::ApplySlotOwnershipRecord(const txlog::LogRecord& record) {
  OwnershipMsg msg;
  if (!OwnershipMsg::Decode(record.payload, &msg)) return;
  switch (msg.phase) {
    case 1:  // prepare on the source: writes stay blocked
      SetSlotState(msg.slot, SlotState::kBlocked,
                   static_cast<NodeId>(msg.peer));
      break;
    case 2:  // prepare on the target: keep importing
      SetSlotState(msg.slot, SlotState::kImporting,
                   static_cast<NodeId>(msg.peer));
      break;
    case 3:  // commit on the source: ownership gone; clean up in background
      SetSlotState(msg.slot, SlotState::kNotOwned,
                   static_cast<NodeId>(msg.peer));
      if (role_ == DbRole::kPrimary) BackgroundDeleteSlot(msg.slot);
      break;
    case 4:  // commit on the target: slot is ours
      SetSlotState(msg.slot, SlotState::kOwned);
      break;
    default:
      break;
  }
}

void Node::WaitForDrainThenReply(const Message& m, uint16_t slot) {
  if (pipeline_.empty() && !append_in_flight_ &&
      migration_queue_[slot].empty()) {
    Reply(m, "");
    return;
  }
  After(5 * sim::kMs, [this, m, slot] { WaitForDrainThenReply(m, slot); });
}

void Node::BackgroundDeleteSlot(uint16_t slot) {
  // Rate-limited deletion of transferred keys (§5.2), replicated as DELs so
  // source replicas clean up too.
  const auto& keys = engine_.keyspace().KeysInSlot(slot);
  if (keys.empty()) return;
  std::vector<engine::Argv> dels;
  size_t n = 0;
  for (const std::string& key : keys) {
    dels.push_back({"DEL", key});
    if (++n >= 32) break;
  }
  ApplyAndReplicate(dels);
  After(20 * sim::kMs, [this, slot] {
    if (role_ == DbRole::kPrimary) BackgroundDeleteSlot(slot);
  });
}

}  // namespace memdb::memorydb
