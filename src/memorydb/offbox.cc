#include "memorydb/offbox.h"

#include <algorithm>
#include <cstdio>

#include "common/crc.h"
#include "memorydb/node.h"

namespace memdb::memorydb {

using sim::NodeId;

namespace {
// Zero-padded snapshot keys sort lexicographically by position.
std::string SnapshotKey(const std::string& shard_id, uint64_t position) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%020llu",
                static_cast<unsigned long long>(position));
  return "snap/" + shard_id + "/" + buf;
}
}  // namespace

OffboxSnapshotter::OffboxSnapshotter(sim::Simulation* sim, NodeId id,
                                     OffboxConfig config)
    : Actor(sim, id),
      config_(std::move(config)),
      log_(this, config_.log_replicas),
      s3_(this, config_.object_store),
      cpu_(&sim->scheduler(), 1) {}

void OffboxSnapshotter::Snapshot(DoneCallback done) {
  if (busy_) {
    done(Status::Unavailable("snapshot already in progress"), 0);
    return;
  }
  busy_ = true;
  done_ = std::move(done);
  ++cycle_;
  engine_.keyspace().Clear();
  applied_index_ = 0;
  running_checksum_ = 0;
  // Record the tail position at creation time (§4.2.2 step 1); the shadow
  // replica replays up to it and stops.
  const uint64_t cycle = cycle_;
  log_.Tail([this, cycle](const Status& s,
                          const txlog::wire::ClientTailResponse& resp) {
    if (cycle != cycle_) return;
    if (!s.ok()) {
      Finish(s, 0);
      return;
    }
    target_tail_ = resp.commit_index;
    RestoreLatestSnapshot();
  });
}

void OffboxSnapshotter::RestoreLatestSnapshot() {
  const uint64_t cycle = cycle_;
  s3_.List("snap/" + config_.shard_id + "/",
           [this, cycle](const Status& s, const std::vector<std::string>& keys) {
             if (cycle != cycle_) return;
             if (!s.ok() || keys.empty()) {
               ReplayFrom(1);
               return;
             }
             s3_.Get(keys.back(), [this, cycle](const Status& gs,
                                                const std::string& blob) {
               if (cycle != cycle_) return;
               if (gs.ok()) {
                 engine::SnapshotMeta meta;
                 // Step 1 of verification (§7.2.1): the snapshot's own data
                 // checksum must validate.
                 if (DeserializeSnapshot(blob, &engine_.keyspace(), &meta)
                         .ok()) {
                   applied_index_ = meta.log_position;
                   running_checksum_ = meta.log_running_checksum;
                 } else {
                   verification_failed_ = true;
                   engine_.keyspace().Clear();
                   applied_index_ = 0;
                   running_checksum_ = 0;
                 }
               }
               ReplayFrom(applied_index_ + 1);
             });
           });
}

void OffboxSnapshotter::ReplayFrom(uint64_t from_index) {
  if (applied_index_ >= target_tail_) {
    DumpAndUpload();
    return;
  }
  const uint64_t cycle = cycle_;
  log_.Read(from_index, 256, [this, cycle](
                                 const Status& s,
                                 const txlog::wire::ClientReadResponse& r) {
    if (cycle != cycle_) return;
    if (!s.ok()) {
      Finish(s, 0);
      return;
    }
    if (r.first_index > applied_index_ + 1) {
      Finish(Status::Corruption("log trimmed past snapshot position"), 0);
      return;
    }
    for (const txlog::LogEntry& e : r.entries) {
      if (e.index > target_tail_) break;
      if (e.record.type == txlog::RecordType::kData) {
        std::string version;
        std::vector<engine::Argv> effects;
        Decoder dec(e.record.payload);
        if (dec.GetLengthPrefixed(&version)) {
          while (!dec.Empty()) {
            uint64_t argc;
            if (!dec.GetVarint64(&argc)) break;
            engine::Argv argv(argc);
            bool ok = true;
            for (uint64_t i = 0; i < argc && ok; ++i) {
              ok = dec.GetLengthPrefixed(&argv[i]);
            }
            if (!ok) break;
            engine_.Apply(argv, Now() / 1000);
          }
        }
        // Step 2 of verification: recompute the running checksum from the
        // prior snapshot's basis...
        running_checksum_ = Crc64(running_checksum_, e.record.payload);
      } else if (e.record.type == txlog::RecordType::kChecksum) {
        // ...and compare against each checksum injected in the log.
        Decoder dec(e.record.payload);
        uint64_t expected;
        if (dec.GetFixed64(&expected) && expected != running_checksum_) {
          verification_failed_ = true;
          Finish(Status::Corruption(
                     "snapshot/log checksum chain mismatch for shard " +
                     config_.shard_id),
                 0);
          return;
        }
      }
      applied_index_ = e.index;
    }
    if (applied_index_ >= target_tail_ || r.entries.empty()) {
      DumpAndUpload();
    } else {
      ReplayFrom(applied_index_ + 1);
    }
  });
}

void OffboxSnapshotter::DumpAndUpload() {
  engine::SnapshotMeta meta;
  meta.engine_version = config_.engine_version;
  meta.log_position = applied_index_;
  meta.log_running_checksum = running_checksum_;
  meta.created_at_ms = Now() / 1000;
  std::string blob = SerializeSnapshot(engine_.keyspace(), meta);

  // Serialization burns shadow-replica CPU only (isolated cluster).
  const sim::Duration cost = std::max<sim::Duration>(
      1, static_cast<sim::Duration>(
             (static_cast<double>(blob.size()) +
              static_cast<double>(config_.synthetic_dataset_bytes)) *
             1'000'000.0 /
             static_cast<double>(config_.serialize_bytes_per_sec)));
  const uint64_t cycle = cycle_;
  cpu_.SubmitAnd(cost, [this, cycle, blob = std::move(blob)]() mutable {
    if (cycle != cycle_) return;
    // Rehearse the restore before publishing (only verified snapshots are
    // made available, §7.2.1).
    engine::Engine rehearsal;
    engine::SnapshotMeta check;
    if (!DeserializeSnapshot(blob, &rehearsal.keyspace(), &check).ok()) {
      verification_failed_ = true;
      Finish(Status::Corruption("snapshot failed restore rehearsal"), 0);
      return;
    }
    const uint64_t position = applied_index_;
    s3_.Put(SnapshotKey(config_.shard_id, position), std::move(blob),
            [this, cycle, position](const Status& s) {
              if (cycle != cycle_) return;
              if (s.ok()) ++snapshots_created_;
              Finish(s, position);
            });
  });
}

void OffboxSnapshotter::Finish(const Status& s, uint64_t position) {
  busy_ = false;
  if (done_) {
    DoneCallback cb = std::move(done_);
    done_ = nullptr;
    cb(s, position);
  }
}

// --------------------------------------------------------------- scheduler

SnapshotScheduler::SnapshotScheduler(sim::Simulation* sim, NodeId id,
                                     Config config, OffboxSnapshotter* offbox)
    : Actor(sim, id),
      config_(std::move(config)),
      offbox_(offbox),
      log_(this, config_.log_replicas) {
  Periodic(config_.check_interval, [this] { Check(); });
}

void SnapshotScheduler::Check() {
  if (offbox_->busy()) return;
  log_.Tail([this](const Status& s,
                   const txlog::wire::ClientTailResponse& resp) {
    if (!s.ok() || offbox_->busy()) return;
    // Freshness = distance of the latest snapshot from the log tail
    // (§4.2.3); too stale -> cut a new snapshot, then trim behind it.
    const uint64_t tail = resp.commit_index;
    if (tail < last_snapshot_position_ ||
        tail - last_snapshot_position_ < config_.max_log_distance) {
      return;
    }
    ++snapshots_triggered_;
    offbox_->Snapshot([this](const Status& ss, uint64_t position) {
      if (!ss.ok()) return;
      last_snapshot_position_ = position;
      if (position > config_.trim_slack) {
        log_.Trim(position - config_.trim_slack);
      }
    });
  });
}

}  // namespace memdb::memorydb
