// MemoryDB node: the paper's core contribution in executable form.
//
// A node embeds the in-memory execution engine (src/engine) and offloads
// durability to the shard's transaction log (src/txlog):
//
//  * Primary path (§3.1/§3.2): commands execute immediately on the engine;
//    the resulting effect stream is chunked into log records (group commit)
//    and conditionally appended. Replies are parked in the client blocking
//    tracker until the record commits to a majority of AZs. Reads consult
//    the tracker for key-level hazards: a read touching a key with an
//    unacknowledged mutation is delayed until that mutation is durable.
//
//  * Replica path: tails the log, applies data records, observes lease
//    renewals (starting the backoff timer), verifies the running checksum
//    chain, and reports caught-up-ness.
//
//  * Leader election (§4.1): leadership is a conditional append. Only a
//    fully caught-up replica can win; stale primaries are fenced by the
//    precondition and self-demote at lease expiry.
//
//  * Recovery (§4.2.1): restore = latest snapshot from the object store +
//    log replay; purely local, no peer interaction.

#ifndef MEMDB_MEMORYDB_NODE_H_
#define MEMDB_MEMORYDB_NODE_H_

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "client/db_wire.h"
#include "common/metrics.h"
#include "common/trace.h"
#include "engine/engine.h"
#include "engine/snapshot.h"
#include "sim/actor.h"
#include "sim/queue_server.h"
#include "storage/object_store.h"
#include "txlog/client.h"

namespace memdb::memorydb {

// Version ordering for upgrade protection (§7.1): "7.1.0" > "7.0.7".
int CompareEngineVersions(const std::string& a, const std::string& b);

struct NodeConfig {
  std::string shard_id = "shard-0";
  std::vector<sim::NodeId> log_replicas;
  sim::NodeId object_store = sim::kInvalidNode;
  // Claim leadership at startup (cluster bootstrap path).
  bool bootstrap_as_primary = false;

  // Lease machinery (§4.1.3). Backoff MUST exceed the lease duration.
  sim::Duration lease_duration = 400 * sim::kMs;
  sim::Duration lease_renew_interval = 100 * sim::kMs;
  sim::Duration backoff_duration = 650 * sim::kMs;

  sim::Duration replica_poll_interval = 10 * sim::kMs;
  sim::Duration active_expire_interval = 100 * sim::kMs;

  // Inject a running-checksum record every N data records (§7.2.1).
  uint64_t checksum_every = 64;

  std::string engine_version = "7.0.7";
  uint64_t maxmemory_bytes = 0;
  // Under maxmemory pressure the (simulated) primary evicts per this
  // policy; victims replicate as DEL effects exactly like expiry (§2.1).
  engine::EvictionPolicy eviction_policy = engine::EvictionPolicy::kNoEviction;
  int eviction_samples = 5;

  // CPU cost model (per command), nanoseconds.
  int io_threads = 4;
  uint64_t io_op_cost_ns = 1000;
  uint64_t engine_read_cost_ns = 1900;
  uint64_t engine_write_cost_ns = 5200;
};

class Node : public sim::Actor {
 public:
  enum class DbRole { kReplica, kPrimary, kRecovering };

  Node(sim::Simulation* sim, sim::NodeId id, NodeConfig config);

  void OnRestart() override;

  DbRole db_role() const { return role_; }
  bool IsPrimary() const { return role_ == DbRole::kPrimary; }
  uint64_t applied_index() const { return applied_index_; }
  bool caught_up() const { return caught_up_; }
  sim::NodeId known_primary() const { return known_primary_; }
  uint64_t running_checksum() const { return running_checksum_; }
  bool checksum_violation() const { return checksum_violation_; }
  engine::Engine& engine() { return engine_; }
  const NodeConfig& config() const { return config_; }

  // Counters for tests/benches.
  struct Stats {
    uint64_t commands = 0;
    uint64_t writes = 0;
    uint64_t reads_deferred_by_tracker = 0;
    uint64_t records_appended = 0;
    uint64_t demotions = 0;
    uint64_t promotions = 0;
    uint64_t recoveries = 0;
  };
  const Stats& stats() const { return stats_; }

  // Observability. The registry is shared with the embedded engine (so INFO
  // Commandstats/Latencystats and METRICS cover both layers) and scraped by
  // the monitoring service via the `db.metrics` RPC. The trace log records
  // the write-path stages this node executes; merge it with the log
  // replicas' trace logs (TraceLog::Reconstruct) to follow one write end to
  // end.
  MetricsRegistry& metrics() { return metrics_; }
  const MetricsRegistry& metrics() const { return metrics_; }
  const TraceLog& trace_log() const { return trace_; }

  // Triggers an election attempt now (used by collaborative leadership
  // handover during scaling, §5.2).
  void Campaign();
  // Voluntarily stop renewing the lease and demote once it lapses.
  void StepDown();

  // ---- cluster slots (§5.2) ----------------------------------------------
  // Every slot defaults to kOwned (single-shard deployments own the whole
  // keyspace); multi-shard clusters configure ownership at provisioning and
  // adjust it through the migration protocol.
  enum class SlotState : uint8_t {
    kOwned,
    kNotOwned,
    kMigrating,  // source side: serving, streaming to `peer`, ASK misses
    kImporting,  // target side: accepting transferred data + writes
    kBlocked,    // source side: ownership handshake in progress (§5.2)
  };
  void SetSlotState(uint16_t slot, SlotState state,
                    sim::NodeId peer = sim::kInvalidNode);
  SlotState slot_state(uint16_t slot) const;

 private:
  // Per-request trace context, allocated at command receipt and carried to
  // the final reply so per-family latency and span logs line up.
  struct ReqTrace {
    uint64_t id = 0;
    sim::Time received_at = 0;
    std::string family;  // uppercase command name ("SET", "MULTI", ...)
  };
  struct PendingReply {
    sim::Message request;
    resp::Value reply;
    ReqTrace trace;
  };
  // One chunk of the replication stream awaiting commit.
  struct PendingRecord {
    uint64_t batch_seq = 0;
    std::string payload;        // encoded effect batch
    std::vector<PendingReply> replies;
    uint64_t data_records = 1;  // 0 for lease/checksum records
    txlog::RecordType type = txlog::RecordType::kData;
    uint64_t trace_id = 0;      // trace of the command that opened the record
    sim::Time enqueued_at = 0;
    sim::Time issued_at = 0;    // append RPC issue time
  };

  // ---- request plumbing ---------------------------------------------------
  void HandleCommand(const sim::Message& m);
  void HandleMulti(const sim::Message& m);
  void ExecuteOnPrimary(const sim::Message& m,
                        const std::vector<engine::Argv>& commands,
                        bool multi, const ReqTrace& rt);
  void ExecuteReadOnReplica(const sim::Message& m, const engine::Argv& argv,
                            const ReqTrace& rt);
  void ReplyValue(const sim::Message& m, const resp::Value& v);
  // Records the final span + per-family latency, then replies.
  void FinishCommand(const PendingReply& pr, const char* stage);

  // ---- observability ------------------------------------------------------
  uint64_t NewTraceId() { return (uint64_t{id()} << 32) | next_trace_id_++; }
  Histogram* FamilyHistogram(const std::string& family);
  void SyncDepthGauges();
  void SyncRoleInfo();
  engine::ExecContext MakeContext(engine::Role role);

  // ---- tracker (§3.2) -----------------------------------------------------
  void ReleaseUpTo(uint64_t batch_seq);
  uint64_t HazardFor(const std::vector<std::string>& keys) const;

  // ---- append pipeline ----------------------------------------------------
  void EnqueueRecord(PendingRecord record);
  void FlushPipeline();
  void OnAppendResult(const Status& s, uint64_t index);
  void ResyncAfterConditionFailure();

  // ---- roles --------------------------------------------------------------
  void BecomePrimary(uint64_t leadership_index);
  void Demote(const std::string& reason);
  void RenewLease();
  void CheckLease();

  // ---- replica ------------------------------------------------------------
  void PollLog();
  // Applies one entry; returns the number of effect commands applied (the
  // replay CPU cost driver).
  size_t ApplyEntry(const txlog::LogEntry& entry);
  void MaybeCampaign();

  // ---- recovery -----------------------------------------------------------
  void StartRecovery();
  void FinishRecovery();
  void StartLoops();

  // ---- slot migration (node_slots.cc) --------------------------------------
  struct SlotInfo {
    SlotState state = SlotState::kOwned;
    sim::NodeId peer = sim::kInvalidNode;
    bool stream_done = false;
  };
  void RegisterSlotHandlers();
  // Validates slot ownership / cross-slot rules for a command batch; fills
  // *keys; returns an error Value (MOVED/ASK/TRYAGAIN/CROSSSLOT) or Null.
  resp::Value CheckSlotAccess(const std::vector<engine::Argv>& commands,
                              bool has_write, std::vector<std::string>* keys,
                              uint16_t* slot_out);
  // Applies effects locally and appends them to the log (import path).
  void ApplyAndReplicate(const std::vector<engine::Argv>& effects);
  void StreamMigratingSlot(uint16_t slot);
  void PumpMigrationQueue(uint16_t slot);
  void ForwardEffects(uint16_t slot, const std::vector<engine::Argv>& effects);
  void HandleSlotOwnership(const sim::Message& m);
  void WaitForDrainThenReply(const sim::Message& m, uint16_t slot);
  void ApplySlotOwnershipRecord(const txlog::LogRecord& record);
  void BackgroundDeleteSlot(uint16_t slot);

  std::map<uint16_t, SlotInfo> slots_;
  // Per-slot FIFO of migration messages (dumps + forwarded effects); one
  // outstanding RPC at a time preserves ordering.
  std::map<uint16_t, std::deque<std::pair<std::string, std::string>>>
      migration_queue_;
  std::map<uint16_t, bool> migration_rpc_inflight_;

  std::string EncodeEffectBatch(const std::vector<engine::Argv>& effects);
  bool DecodeEffectBatch(const std::string& payload, std::string* version,
                         std::vector<engine::Argv>* effects);

  NodeConfig config_;
  engine::Engine engine_;
  txlog::TxLogClient log_;
  storage::StorageClient s3_;
  sim::QueueServer io_pool_;
  sim::QueueServer workloop_;

  DbRole role_ = DbRole::kReplica;
  sim::NodeId known_primary_ = sim::kInvalidNode;

  // Log positions.
  uint64_t applied_index_ = 0;    // replica: last applied entry
  uint64_t predicted_tail_ = 0;   // primary: tail after in-flight appends
  bool caught_up_ = false;
  bool poll_in_flight_ = false;
  bool version_blocked_ = false;  // saw a stream from a newer engine (§7.1)

  // Running checksum over data-record payloads, and verification state.
  uint64_t running_checksum_ = 0;
  uint64_t data_records_seen_ = 0;
  bool checksum_violation_ = false;

  // Append pipeline (group commit).
  std::deque<PendingRecord> pipeline_;
  bool append_in_flight_ = false;
  uint64_t next_batch_seq_ = 1;
  uint64_t acked_batch_seq_ = 0;
  uint64_t next_request_id_ = 1;
  uint64_t data_since_checksum_ = 0;

  // Key-level hazards: key -> batch_seq of the latest unacked mutation.
  std::map<std::string, uint64_t> key_hazards_;
  // Reads deferred on a hazard: batch_seq -> parked replies.
  std::multimap<uint64_t, PendingReply> deferred_reads_;

  // Lease state.
  sim::Time lease_deadline_ = 0;
  sim::Time last_lease_observed_ = 0;
  bool observed_any_lease_ = false;
  bool stepping_down_ = false;

  Stats stats_;
  uint64_t epoch_ = 0;  // bumped on role change; stale callbacks check it
  // Sub-microsecond cost accumulation (the scheduler's tick is 1 us).
  uint64_t engine_cost_carry_ns_ = 0;
  uint64_t io_cost_carry_ns_ = 0;

  // ---- observability state ------------------------------------------------
  MetricsRegistry metrics_;
  TraceLog trace_;
  engine::ServerInfo server_info_;
  uint64_t next_trace_id_ = 1;
  sim::Time campaign_started_at_ = 0;
  std::map<std::string, Histogram*> family_hists_;  // cmd_latency_us{cmd=}
  Histogram* write_commit_hist_ = nullptr;  // receive -> durable ack
  Histogram* append_hist_ = nullptr;        // append issue -> ack
  Histogram* lease_renew_hist_ = nullptr;
  Histogram* election_hist_ = nullptr;      // campaign -> promoted
  Gauge* pipeline_depth_gauge_ = nullptr;
  Gauge* tracker_keys_gauge_ = nullptr;
  Gauge* deferred_reads_gauge_ = nullptr;
  Gauge* role_gauge_ = nullptr;
  Counter* reads_deferred_counter_ = nullptr;
  Counter* records_appended_counter_ = nullptr;
};

}  // namespace memdb::memorydb

#endif  // MEMDB_MEMORYDB_NODE_H_
