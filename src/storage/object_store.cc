#include "storage/object_store.h"

#include "common/coding.h"

namespace memdb::storage {

using sim::Message;

ObjectStore::ObjectStore(sim::Simulation* sim, sim::NodeId id)
    : ObjectStore(sim, id, Options{}) {}

ObjectStore::ObjectStore(sim::Simulation* sim, sim::NodeId id, Options options)
    : Actor(sim, id), options_(options) {
  On("s3.put", [this](const Message& m) { HandlePut(m); });
  On("s3.get", [this](const Message& m) { HandleGet(m); });
  On("s3.list", [this](const Message& m) { HandleList(m); });
}

void ObjectStore::HandlePut(const Message& m) {
  Decoder dec(m.payload);
  std::string key, data;
  if (!dec.GetLengthPrefixed(&key) || !dec.GetLengthPrefixed(&data)) {
    ReplyError(m, Status::InvalidArgument("bad put request"));
    return;
  }
  After(options_.request_latency, [this, m, key = std::move(key),
                                   data = std::move(data)]() mutable {
    objects_[key] = std::move(data);
    Reply(m, "");
  });
}

void ObjectStore::HandleGet(const Message& m) {
  After(options_.request_latency, [this, m] {
    auto it = objects_.find(m.payload);
    if (it == objects_.end()) {
      ReplyError(m, Status::NotFound("no such object: " + m.payload));
      return;
    }
    Reply(m, it->second);
  });
}

void ObjectStore::HandleList(const Message& m) {
  After(options_.request_latency, [this, m] {
    std::string out;
    const std::string& prefix = m.payload;
    for (auto it = objects_.lower_bound(prefix);
         it != objects_.end() && it->first.compare(0, prefix.size(), prefix) == 0;
         ++it) {
      PutLengthPrefixed(&out, it->first);
    }
    Reply(m, std::move(out));
  });
}

StorageClient::StorageClient(sim::Actor* owner, sim::NodeId store)
    : owner_(owner), store_(store) {}

void StorageClient::Put(const std::string& key, std::string data,
                        PutCallback cb) {
  std::string payload;
  PutLengthPrefixed(&payload, key);
  PutLengthPrefixed(&payload, data);
  // Bulk transfers can take a while at modeled bandwidth; give them room.
  owner_->Rpc(store_, "s3.put", std::move(payload), 120 * sim::kSec,
              [cb = std::move(cb)](const Status& s, const std::string&) {
                cb(s);
              });
}

void StorageClient::Get(const std::string& key, GetCallback cb) {
  owner_->Rpc(store_, "s3.get", key, 120 * sim::kSec,
              [cb = std::move(cb)](const Status& s, const std::string& body) {
                cb(s, body);
              });
}

void StorageClient::List(const std::string& prefix, ListCallback cb) {
  // List responses are small; fail fast so recovery can fall back.
  owner_->Rpc(store_, "s3.list", prefix, 2 * sim::kSec,
              [cb = std::move(cb)](const Status& s, const std::string& body) {
                std::vector<std::string> keys;
                if (s.ok()) {
                  Decoder dec(body);
                  std::string key;
                  while (dec.GetLengthPrefixed(&key)) keys.push_back(key);
                }
                cb(s, keys);
              });
}

}  // namespace memdb::storage
