// ObjectStore: the S3 stand-in — a durable blob store actor. It never
// crashes (S3's durability is out of scope; the paper treats it as a given)
// but every operation pays a realistic request latency, and large blobs pay
// bandwidth through the network model. Snapshots live here (§4.2.1):
// recovering replicas fetch the latest snapshot and replay the transaction
// log, with no peer interaction.

#ifndef MEMDB_STORAGE_OBJECT_STORE_H_
#define MEMDB_STORAGE_OBJECT_STORE_H_

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "sim/actor.h"

namespace memdb::storage {

class ObjectStore : public sim::Actor {
 public:
  struct Options {
    // Server-side processing latency per request.
    sim::Duration request_latency = 8 * sim::kMs;
  };

  ObjectStore(sim::Simulation* sim, sim::NodeId id);
  ObjectStore(sim::Simulation* sim, sim::NodeId id, Options options);

  size_t object_count() const { return objects_.size(); }

  // Direct (test) accessors; production paths go through StorageClient.
  bool Contains(const std::string& key) const { return objects_.count(key); }

 private:
  void HandlePut(const sim::Message& m);
  void HandleGet(const sim::Message& m);
  void HandleList(const sim::Message& m);

  Options options_;
  std::map<std::string, std::string> objects_;
};

// Client-side helper bound to an owning actor.
class StorageClient {
 public:
  using PutCallback = std::function<void(const Status&)>;
  using GetCallback = std::function<void(const Status&, const std::string&)>;
  using ListCallback =
      std::function<void(const Status&, const std::vector<std::string>&)>;

  StorageClient() = default;
  StorageClient(sim::Actor* owner, sim::NodeId store);

  bool valid() const { return owner_ != nullptr; }

  void Put(const std::string& key, std::string data, PutCallback cb);
  void Get(const std::string& key, GetCallback cb);
  // Keys with the given prefix, lexicographically sorted.
  void List(const std::string& prefix, ListCallback cb);

 private:
  sim::Actor* owner_ = nullptr;
  sim::NodeId store_ = sim::kInvalidNode;
};

}  // namespace memdb::storage

#endif  // MEMDB_STORAGE_OBJECT_STORE_H_
