// FsObjectStore: a local-directory stand-in for S3, shared by every real
// daemon (memorydb-server --restore, memorydb-snapshotd). Where
// storage::ObjectStore is a simulation actor, FsObjectStore is a plain
// synchronous blob store over a directory tree:
//
//   * Put is crash-atomic: the blob is written to a unique ".tmp-" sibling,
//     fsynced, then renamed into place (and the parent directory fsynced),
//     so a crash mid-upload leaves only a tmp file that Get/List ignore.
//   * Every blob carries a CRC64 + magic trailer appended on Put and
//     verified (then stripped) on Get, so torn or corrupted files surface
//     as Corruption instead of silently feeding a restore.
//   * List returns keys under a prefix in lexicographic order — with the
//     zero-padded snapshot key naming, "last key" == "latest snapshot".
//
// Keys look like S3 object keys ("snap/shard-0/000...42"): '/'-separated
// components mapped onto subdirectories. Keys with empty, "." or ".."
// components are rejected, so a key can never escape the root.
//
// Thread-safety: calls are independent syscall sequences with no shared
// mutable state; concurrent use from multiple threads or processes is safe
// (atomicity comes from rename, uniqueness from pid+counter tmp names).

#ifndef MEMDB_STORAGE_FS_OBJECT_STORE_H_
#define MEMDB_STORAGE_FS_OBJECT_STORE_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "common/slice.h"
#include "common/status.h"

namespace memdb::storage {

class FsObjectStore {
 public:
  struct Options {
    // fsync file and parent directory on Put. Tests turn this off; every
    // production daemon keeps it on — a snapshot that vanishes in a power
    // loss defeats the point of off-box durability.
    bool fsync = true;
  };

  explicit FsObjectStore(std::string root) : FsObjectStore(root, Options()) {}
  FsObjectStore(std::string root, Options options);

  // Creates the root directory (and parents). Idempotent.
  Status Open();

  // Atomically creates/replaces `key` with `data` + integrity trailer.
  Status Put(const std::string& key, Slice data);

  // Reads `key`, verifies the trailer, returns the payload without it.
  // NotFound if absent, Corruption on checksum/trailer mismatch.
  Status Get(const std::string& key, std::string* data);

  // All keys with the given prefix, lexicographically sorted. In-progress
  // uploads (tmp files) are excluded. An empty result is OK, not an error.
  Status List(const std::string& prefix, std::vector<std::string>* keys);

  Status Delete(const std::string& key);

  const std::string& root() const { return root_; }

 private:
  std::string PathFor(const std::string& key) const;

  std::string root_;
  Options options_;
  std::atomic<uint64_t> tmp_counter_{0};
};

}  // namespace memdb::storage

#endif  // MEMDB_STORAGE_FS_OBJECT_STORE_H_
