#include "storage/fs_object_store.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "common/coding.h"
#include "common/crc.h"

namespace memdb::storage {

namespace {

// Trailer appended to every stored blob: CRC64 of the payload + magic.
constexpr uint32_t kTrailerMagic = 0x4d444253;  // "MDBS" (store)
constexpr size_t kTrailerSize = 8 + 4;
constexpr char kTmpPrefix[] = ".tmp-";

bool ValidKey(const std::string& key) {
  if (key.empty() || key.front() == '/' || key.back() == '/') return false;
  size_t start = 0;
  while (start <= key.size()) {
    const size_t slash = key.find('/', start);
    const size_t end = slash == std::string::npos ? key.size() : slash;
    const std::string comp = key.substr(start, end - start);
    if (comp.empty() || comp == "." || comp == "..") return false;
    if (comp.compare(0, sizeof(kTmpPrefix) - 1, kTmpPrefix) == 0) return false;
    if (slash == std::string::npos) break;
    start = slash + 1;
  }
  return true;
}

// mkdir -p for every directory component of `path` (not the final entry).
Status MakeParents(const std::string& path) {
  size_t slash = path.find('/', 1);
  while (slash != std::string::npos) {
    const std::string dir = path.substr(0, slash);
    if (::mkdir(dir.c_str(), 0755) != 0 && errno != EEXIST) {
      return Status::Internal("mkdir " + dir + ": " +
                              std::string(std::strerror(errno)));
    }
    slash = path.find('/', slash + 1);
  }
  return Status::OK();
}

Status WriteAll(int fd, Slice data) {
  size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::write(fd, data.data() + off, data.size() - off);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return Status::Internal("write: " + std::string(std::strerror(errno)));
    }
    off += static_cast<size_t>(n);
  }
  return Status::OK();
}

// Fsync the directory containing `path`, making the rename itself durable.
void SyncParentDir(const std::string& path) {
  const size_t slash = path.rfind('/');
  const std::string dir =
      slash == std::string::npos ? "." : path.substr(0, slash);
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (fd < 0) return;
  // lint:allow-blocking -- directory fsync makes the snapshot rename durable
  ::fsync(fd);
  ::close(fd);
}

}  // namespace

FsObjectStore::FsObjectStore(std::string root, Options options)
    : root_(std::move(root)), options_(options) {
  while (root_.size() > 1 && root_.back() == '/') root_.pop_back();
}

std::string FsObjectStore::PathFor(const std::string& key) const {
  return root_ + "/" + key;
}

Status FsObjectStore::Open() {
  MEMDB_RETURN_IF_ERROR(MakeParents(root_ + "/x"));
  if (::mkdir(root_.c_str(), 0755) != 0 && errno != EEXIST) {
    return Status::Internal("mkdir " + root_ + ": " +
                            std::string(std::strerror(errno)));
  }
  return Status::OK();
}

Status FsObjectStore::Put(const std::string& key, Slice data) {
  if (!ValidKey(key)) return Status::InvalidArgument("bad object key: " + key);
  const std::string path = PathFor(key);
  MEMDB_RETURN_IF_ERROR(MakeParents(path));

  // Unique sibling: concurrent writers (even across processes) never
  // collide, and a crash leaves a distinguishable ".tmp-" orphan.
  const uint64_t n = tmp_counter_.fetch_add(1, std::memory_order_relaxed);
  const size_t slash = path.rfind('/');
  const std::string tmp = path.substr(0, slash + 1) + kTmpPrefix +
                          std::to_string(static_cast<uint64_t>(::getpid())) +
                          "-" + std::to_string(n);

  int fd = ::open(tmp.c_str(), O_CREAT | O_TRUNC | O_WRONLY | O_CLOEXEC, 0644);
  if (fd < 0) {
    return Status::Internal("open " + tmp + ": " +
                            std::string(std::strerror(errno)));
  }
  std::string trailer;
  PutFixed64(&trailer, Crc64(0, data));
  PutFixed32(&trailer, kTrailerMagic);
  Status s = WriteAll(fd, data);
  if (s.ok()) s = WriteAll(fd, Slice(trailer));
  if (s.ok() && options_.fsync) {
    // lint:allow-blocking -- snapshot durability: fsync before publish
    if (::fsync(fd) != 0) {
      s = Status::Internal("fsync: " + std::string(std::strerror(errno)));
    }
  }
  ::close(fd);
  if (!s.ok()) {
    ::unlink(tmp.c_str());
    return s;
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    const Status rs = Status::Internal("rename " + tmp + ": " +
                                       std::string(std::strerror(errno)));
    ::unlink(tmp.c_str());
    return rs;
  }
  if (options_.fsync) SyncParentDir(path);
  return Status::OK();
}

Status FsObjectStore::Get(const std::string& key, std::string* data) {
  if (!ValidKey(key)) return Status::InvalidArgument("bad object key: " + key);
  data->clear();
  const int fd = ::open(PathFor(key).c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    return errno == ENOENT
               ? Status::NotFound("no object: " + key)
               : Status::Internal("open " + key + ": " +
                                  std::string(std::strerror(errno)));
  }
  std::string raw;
  char chunk[64 * 1024];
  for (;;) {
    const ssize_t n = ::read(fd, chunk, sizeof(chunk));
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;
    raw.append(chunk, static_cast<size_t>(n));
  }
  ::close(fd);

  if (raw.size() < kTrailerSize) {
    return Status::Corruption("object too short: " + key);
  }
  Decoder dec(Slice(raw.data() + raw.size() - kTrailerSize, kTrailerSize));
  uint64_t crc = 0;
  uint32_t magic = 0;
  dec.GetFixed64(&crc);
  dec.GetFixed32(&magic);
  const Slice payload(raw.data(), raw.size() - kTrailerSize);
  if (magic != kTrailerMagic || crc != Crc64(0, payload)) {
    return Status::Corruption("object checksum mismatch: " + key);
  }
  data->assign(payload.data(), payload.size());
  return Status::OK();
}

Status FsObjectStore::List(const std::string& prefix,
                           std::vector<std::string>* keys) {
  keys->clear();
  // Walk the whole tree; stores here hold tens of snapshots, not millions
  // of objects, so a full walk beats prefix-directory bookkeeping.
  std::vector<std::string> pending;
  pending.push_back("");
  while (!pending.empty()) {
    const std::string rel = std::move(pending.back());
    pending.pop_back();
    const std::string dir = rel.empty() ? root_ : root_ + "/" + rel;
    DIR* d = ::opendir(dir.c_str());
    if (d == nullptr) {
      if (rel.empty() && errno == ENOENT) return Status::OK();
      continue;
    }
    while (struct dirent* ent = ::readdir(d)) {
      const std::string name = ent->d_name;
      if (name == "." || name == "..") continue;
      if (name.compare(0, sizeof(kTmpPrefix) - 1, kTmpPrefix) == 0) {
        continue;  // in-progress or orphaned upload
      }
      const std::string child = rel.empty() ? name : rel + "/" + name;
      struct stat st{};
      if (::stat((root_ + "/" + child).c_str(), &st) != 0) continue;
      if (S_ISDIR(st.st_mode)) {
        pending.push_back(child);
      } else if (child.compare(0, prefix.size(), prefix) == 0) {
        keys->push_back(child);
      }
    }
    ::closedir(d);
  }
  std::sort(keys->begin(), keys->end());
  return Status::OK();
}

Status FsObjectStore::Delete(const std::string& key) {
  if (!ValidKey(key)) return Status::InvalidArgument("bad object key: " + key);
  if (::unlink(PathFor(key).c_str()) != 0) {
    return errno == ENOENT
               ? Status::NotFound("no object: " + key)
               : Status::Internal("unlink " + key + ": " +
                                  std::string(std::strerror(errno)));
  }
  return Status::OK();
}

}  // namespace memdb::storage
