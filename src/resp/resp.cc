#include "resp/resp.h"

#include <charconv>

namespace memdb::resp {

Value Value::Simple(std::string s) {
  Value v;
  v.type = Type::kSimpleString;
  v.str = std::move(s);
  return v;
}

Value Value::Error(std::string s) {
  Value v;
  v.type = Type::kError;
  v.str = std::move(s);
  return v;
}

Value Value::Integer(int64_t i) {
  Value v;
  v.type = Type::kInteger;
  v.integer = i;
  return v;
}

Value Value::Bulk(std::string s) {
  Value v;
  v.type = Type::kBulkString;
  v.str = std::move(s);
  return v;
}

Value Value::Null() { return Value(); }

Value Value::Array(std::vector<Value> elems) {
  Value v;
  v.type = Type::kArray;
  v.array = std::move(elems);
  return v;
}

void Value::EncodeTo(std::string* out) const {
  switch (type) {
    case Type::kSimpleString:
      out->push_back('+');
      out->append(str);
      out->append("\r\n");
      break;
    case Type::kError:
      out->push_back('-');
      out->append(str);
      out->append("\r\n");
      break;
    case Type::kInteger:
      out->push_back(':');
      out->append(std::to_string(integer));
      out->append("\r\n");
      break;
    case Type::kBulkString:
      out->push_back('$');
      out->append(std::to_string(str.size()));
      out->append("\r\n");
      out->append(str);
      out->append("\r\n");
      break;
    case Type::kNull:
      out->append("$-1\r\n");
      break;
    case Type::kArray:
      out->push_back('*');
      out->append(std::to_string(array.size()));
      out->append("\r\n");
      for (const Value& e : array) e.EncodeTo(out);
      break;
  }
}

std::string Value::Encode() const {
  std::string out;
  EncodeTo(&out);
  return out;
}

std::string Value::ToString() const {
  switch (type) {
    case Type::kSimpleString:
      return "+" + str;
    case Type::kError:
      return "-" + str;
    case Type::kInteger:
      return std::to_string(integer);
    case Type::kBulkString:
      return "\"" + str + "\"";
    case Type::kNull:
      return "(nil)";
    case Type::kArray: {
      std::string out = "[";
      for (size_t i = 0; i < array.size(); ++i) {
        if (i > 0) out += ", ";
        out += array[i].ToString();
      }
      return out + "]";
    }
  }
  return "?";
}

bool Value::operator==(const Value& other) const {
  if (type != other.type) return false;
  switch (type) {
    case Type::kSimpleString:
    case Type::kError:
    case Type::kBulkString:
      return str == other.str;
    case Type::kInteger:
      return integer == other.integer;
    case Type::kNull:
      return true;
    case Type::kArray:
      return array == other.array;
  }
  return false;
}

std::string EncodeCommand(const std::vector<std::string>& args) {
  std::string out;
  out.push_back('*');
  out.append(std::to_string(args.size()));
  out.append("\r\n");
  for (const std::string& a : args) {
    out.push_back('$');
    out.append(std::to_string(a.size()));
    out.append("\r\n");
    out.append(a);
    out.append("\r\n");
  }
  return out;
}

void Decoder::Feed(Slice data) {
  Compact();
  buffer_.append(data.data(), data.size());
}

void Decoder::Compact() {
  // Avoid unbounded growth: drop consumed prefix when it dominates.
  if (consumed_ > 4096 && consumed_ > buffer_.size() / 2) {
    buffer_.erase(0, consumed_);
    consumed_ = 0;
  }
}

bool Decoder::ReadLine(size_t* pos, std::string* line) {
  size_t p = *pos;
  while (p + 1 < buffer_.size()) {
    if (buffer_[p] == '\r' && buffer_[p + 1] == '\n') {
      line->assign(buffer_, *pos, p - *pos);
      *pos = p + 2;
      return true;
    }
    ++p;
  }
  return false;
}

namespace {
bool ParseInt(const std::string& s, int64_t* out) {
  if (s.empty()) return false;
  auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), *out);
  return ec == std::errc() && ptr == s.data() + s.size();
}
}  // namespace

Status Decoder::ParseAt(size_t* pos, Value* value, size_t depth) {
  if (depth > limits_.max_nesting) {
    return Status::Corruption("multibulk nesting exceeds limit");
  }
  if (*pos >= buffer_.size()) return Status::NotFound("need more data");
  const char marker = buffer_[*pos];
  size_t p = *pos + 1;
  std::string line;
  switch (marker) {
    case '+':
      if (!ReadLine(&p, &line)) return Status::NotFound("need more data");
      *value = Value::Simple(std::move(line));
      *pos = p;
      return Status::OK();
    case '-':
      if (!ReadLine(&p, &line)) return Status::NotFound("need more data");
      *value = Value::Error(std::move(line));
      *pos = p;
      return Status::OK();
    case ':': {
      if (!ReadLine(&p, &line)) return Status::NotFound("need more data");
      int64_t n;
      if (!ParseInt(line, &n))
        return Status::Corruption("bad integer: " + line);
      *value = Value::Integer(n);
      *pos = p;
      return Status::OK();
    }
    case '$': {
      if (!ReadLine(&p, &line)) return Status::NotFound("need more data");
      int64_t len;
      if (!ParseInt(line, &len) || len < -1)
        return Status::Corruption("bad bulk length: " + line);
      if (len > 0 && static_cast<uint64_t>(len) > limits_.max_bulk_bytes)
        return Status::Corruption("invalid bulk length: " + line +
                                  " exceeds proto-max-bulk-len");
      if (len == -1) {
        *value = Value::Null();
        *pos = p;
        return Status::OK();
      }
      const size_t need = static_cast<size_t>(len) + 2;
      if (buffer_.size() - p < need) return Status::NotFound("need more data");
      if (buffer_[p + static_cast<size_t>(len)] != '\r' ||
          buffer_[p + static_cast<size_t>(len) + 1] != '\n') {
        return Status::Corruption("bulk string missing CRLF terminator");
      }
      *value = Value::Bulk(buffer_.substr(p, static_cast<size_t>(len)));
      *pos = p + need;
      return Status::OK();
    }
    case '*': {
      if (!ReadLine(&p, &line)) return Status::NotFound("need more data");
      int64_t n;
      if (!ParseInt(line, &n) || n < -1)
        return Status::Corruption("bad array length: " + line);
      if (n > 0 && static_cast<uint64_t>(n) > limits_.max_array_elems)
        return Status::Corruption("invalid multibulk length: " + line);
      if (n == -1) {
        *value = Value::Null();
        *pos = p;
        return Status::OK();
      }
      std::vector<Value> elems;
      elems.reserve(static_cast<size_t>(n));
      for (int64_t i = 0; i < n; ++i) {
        Value elem;
        MEMDB_RETURN_IF_ERROR(ParseAt(&p, &elem, depth + 1));
        elems.push_back(std::move(elem));
      }
      *value = Value::Array(std::move(elems));
      *pos = p;
      return Status::OK();
    }
    default:
      return Status::Corruption(std::string("unexpected marker byte '") +
                                marker + "'");
  }
}

Status Decoder::TryParse(Value* value) {
  size_t pos = consumed_;
  Status s = ParseAt(&pos, value);
  if (s.ok()) consumed_ = pos;
  return s;
}

Status Decoder::TryParseCommand(std::vector<std::string>* argv) {
  Value v;
  MEMDB_RETURN_IF_ERROR(TryParse(&v));
  if (v.type != Type::kArray)
    return Status::Corruption("command must be an array");
  argv->clear();
  argv->reserve(v.array.size());
  for (Value& e : v.array) {
    if (e.type != Type::kBulkString)
      return Status::Corruption("command elements must be bulk strings");
    argv->push_back(std::move(e.str));
  }
  return Status::OK();
}

namespace {
DecodeStatus FromStatus(const Status& s, std::string* error) {
  if (s.ok()) return DecodeStatus::kOk;
  if (s.IsNotFound()) return DecodeStatus::kNeedMore;
  if (error != nullptr) *error = s.message();
  return DecodeStatus::kError;
}
}  // namespace

DecodeStatus Decoder::Decode(Value* value, std::string* error) {
  return FromStatus(TryParse(value), error);
}

DecodeStatus Decoder::DecodeCommand(std::vector<std::string>* argv,
                                    std::string* error) {
  for (;;) {
    if (consumed_ >= buffer_.size()) return DecodeStatus::kNeedMore;
    if (buffer_[consumed_] == '*') {
      return FromStatus(TryParseCommand(argv), error);
    }
    // Inline command: everything up to the next newline, split on
    // whitespace. Lines may end with bare \n (hand-typed probes) or \r\n.
    const size_t nl = buffer_.find('\n', consumed_);
    if (nl == std::string::npos) {
      if (buffer_.size() - consumed_ > limits_.max_inline_bytes) {
        if (error != nullptr) *error = "too big inline request";
        return DecodeStatus::kError;
      }
      return DecodeStatus::kNeedMore;
    }
    size_t end = nl;
    if (end > consumed_ && buffer_[end - 1] == '\r') --end;
    if (end - consumed_ > limits_.max_inline_bytes) {
      consumed_ = nl + 1;
      if (error != nullptr) *error = "too big inline request";
      return DecodeStatus::kError;
    }
    argv->clear();
    size_t p = consumed_;
    while (p < end) {
      while (p < end && (buffer_[p] == ' ' || buffer_[p] == '\t')) ++p;
      size_t tok = p;
      while (p < end && buffer_[p] != ' ' && buffer_[p] != '\t') ++p;
      if (p > tok) argv->push_back(buffer_.substr(tok, p - tok));
    }
    consumed_ = nl + 1;
    if (!argv->empty()) return DecodeStatus::kOk;
    // Empty line: consumed silently; keep scanning for a real command.
  }
}

}  // namespace memdb::resp
