// RESP2 (REdis Serialization Protocol) value model, encoder, and an
// incremental decoder. Used at three places in the system: the client/server
// command boundary, the replication stream chunker (effects are encoded as
// RESP command arrays, exactly like the Redis replication stream), and
// benchmark drivers.

#ifndef MEMDB_RESP_RESP_H_
#define MEMDB_RESP_RESP_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/slice.h"
#include "common/status.h"

namespace memdb::resp {

enum class Type : uint8_t {
  kSimpleString,  // +OK\r\n
  kError,         // -ERR ...\r\n
  kInteger,       // :42\r\n
  kBulkString,    // $5\r\nhello\r\n
  kNull,          // $-1\r\n (null bulk) / *-1\r\n (null array)
  kArray,         // *2\r\n...
};

// A parsed RESP value. Value-semantic tree.
struct Value {
  Type type = Type::kNull;
  std::string str;            // simple string / error / bulk payload
  int64_t integer = 0;        // integer payload
  std::vector<Value> array;   // array elements

  static Value Simple(std::string s);
  static Value Error(std::string s);
  static Value Integer(int64_t v);
  static Value Bulk(std::string s);
  static Value Null();
  static Value Array(std::vector<Value> elems);
  // The ubiquitous +OK.
  static Value Ok() { return Simple("OK"); }

  bool IsError() const { return type == Type::kError; }
  bool IsNull() const { return type == Type::kNull; }

  // Serializes this value in RESP2 wire format, appending to *out.
  void EncodeTo(std::string* out) const;
  std::string Encode() const;

  // Human-readable form for logs/tests (not wire format).
  std::string ToString() const;

  bool operator==(const Value& other) const;
};

// Encodes a command (array of bulk strings) — the client->server direction.
std::string EncodeCommand(const std::vector<std::string>& args);

// Outcome of one streaming decode step. The tri-state lets socket readers
// distinguish "wait for more bytes" from "tear the connection down".
enum class DecodeStatus : uint8_t {
  kOk,        // one complete frame was consumed
  kNeedMore,  // buffer ends mid-frame; feed more bytes and retry
  kError,     // protocol violation; the stream is unrecoverable
};

// Guard rails applied while decoding untrusted byte streams (the moral
// equivalent of Redis' proto-max-bulk-len / multibulk limits). A frame that
// *declares* a size beyond these is rejected before its payload is buffered.
struct DecodeLimits {
  size_t max_bulk_bytes = 512u << 20;   // per bulk-string payload
  size_t max_array_elems = 1u << 20;    // per multibulk header
  size_t max_inline_bytes = 64u << 10;  // per inline command line
  // Array nesting cap. ParseAt recurses per level, so without this a
  // stream of `*1\r\n` repeated runs the parser thread out of stack
  // (found by fuzz/resp_decode_fuzz.cc). Commands and replication
  // effects are depth <= 2 in practice; 32 is far above anything legal.
  size_t max_nesting = 32;
};

// Incremental decoder: feed bytes as they "arrive", pull complete values.
class Decoder {
 public:
  // Appends bytes to the internal buffer.
  void Feed(Slice data);

  // Attempts to parse one complete value. Returns:
  //  - OK and sets *value if a full value was consumed,
  //  - NotFound if more bytes are needed,
  //  - Corruption on malformed input (protocol error).
  Status TryParse(Value* value);

  // Parses a full command array into argv strings (all elements must be
  // bulk strings). Same return contract as TryParse.
  Status TryParseCommand(std::vector<std::string>* argv);

  // ---- streaming API (socket readers: net::Connection, reply pumps) -----
  // Caps enforced by the streaming entry points below (and by TryParse for
  // declared bulk/array sizes). Defaults are Redis-like and generous.
  void set_limits(const DecodeLimits& limits) { limits_ = limits; }
  const DecodeLimits& limits() const { return limits_; }

  // Streaming value decode: one complete value per kOk. On kError, *error
  // (if non-null) carries the protocol-error detail.
  DecodeStatus Decode(Value* value, std::string* error = nullptr);

  // Streaming command decode. Accepts both framings Redis accepts on the
  // command channel: a multibulk array of bulk strings, and *inline
  // commands* — a bare `SET k v\r\n` text line split on whitespace (empty
  // lines are consumed and skipped, never returned). One command per kOk.
  DecodeStatus DecodeCommand(std::vector<std::string>* argv,
                             std::string* error = nullptr);

  size_t buffered() const { return buffer_.size() - consumed_; }

 private:
  Status ParseAt(size_t* pos, Value* value, size_t depth = 0);
  bool ReadLine(size_t* pos, std::string* line);
  void Compact();

  std::string buffer_;
  size_t consumed_ = 0;
  DecodeLimits limits_;
};

}  // namespace memdb::resp

#endif  // MEMDB_RESP_RESP_H_
