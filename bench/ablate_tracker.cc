// Ablation A5 — the client blocking tracker (§3.2).
//
// On a MemoryDB primary, reads of a key with an in-flight (not yet
// committed) mutation are delayed until the commit completes; reads of
// unrelated keys are not. We drive a write-hot key plus a read mix over the
// hot key and cold keys and compare read latency distributions.
//
// Expected: cold-key reads stay at network+engine latency (~0.2 ms);
// hot-key reads pick up part of the multi-AZ commit latency; no read ever
// returns unacknowledged data.

#include <cstdio>

#include "bench_support/fixtures.h"
#include "bench_support/instances.h"
#include "client/db_wire.h"
#include "common/histogram.h"

namespace memdb::bench {
namespace {

using sim::kMs;
using sim::kSec;

// Dedicated probe actor: alternates hot-key writes with immediate hot/cold
// reads so reads predictably race in-flight commits.
class Probe : public sim::Actor {
 public:
  Probe(sim::Simulation* sim, sim::NodeId id, sim::NodeId target)
      : Actor(sim, id), target_(target) {
    After(1, [this] { Round(); });
  }

  Histogram hot_reads;
  Histogram cold_reads;
  Histogram writes;
  int rounds_done = 0;

 private:
  void Round() {
    if (rounds_done >= 2000) return;
    ++rounds_done;
    // Fire a hot-key write, then immediately race two reads against it.
    Cmd({"SET", "hot", "v" + std::to_string(rounds_done)}, &writes);
    After(50, [this] {
      Cmd({"GET", "hot"}, &hot_reads);
      Cmd({"GET", "cold" + std::to_string(rounds_done % 64)}, &cold_reads);
    });
    After(3 * kMs, [this] { Round(); });
  }

  void Cmd(std::vector<std::string> argv, Histogram* hist) {
    client::DbRequest req;
    req.argv = std::move(argv);
    const sim::Time start = Now();
    Rpc(target_, client::kDbCommand, req.Encode(), 5 * kSec,
        [this, hist, start](const Status& s, const std::string&) {
          if (s.ok()) hist->Record(Now() - start);
        });
  }

  sim::NodeId target_;
};

void Run() {
  MemDbFixture::Params p;
  p.replicas = 1;
  MemDbFixture f = MemDbFixture::Create(R7g("r7g.2xlarge"), p);
  if (f.primary == nullptr) return;
  Probe probe(f.sim.get(), f.sim->AddHost(0), f.primary->id());
  f.sim->RunFor(10 * kSec);

  std::printf("%-22s %10s %10s %10s %10s\n", "series", "count", "p50[us]",
              "p99[us]", "max[us]");
  auto row = [](const char* name, const Histogram& h) {
    std::printf("%-22s %10llu %10llu %10llu %10llu\n", name,
                static_cast<unsigned long long>(h.count()),
                static_cast<unsigned long long>(h.Percentile(0.5)),
                static_cast<unsigned long long>(h.Percentile(0.99)),
                static_cast<unsigned long long>(h.max()));
  };
  row("write (multi-AZ commit)", probe.writes);
  row("read hot key (hazard)", probe.hot_reads);
  row("read cold key", probe.cold_reads);
  std::printf(
      "\nreads deferred by the tracker on the primary: %llu of %llu "
      "commands\n",
      static_cast<unsigned long long>(
          f.primary->stats().reads_deferred_by_tracker),
      static_cast<unsigned long long>(f.primary->stats().commands));
  std::printf(
      "Hot-key reads absorb the remaining commit latency of the write they "
      "raced;\ncold-key reads are untouched (§3.2 key-level hazards).\n");
}

}  // namespace
}  // namespace memdb::bench

int main() {
  std::printf("Ablation A5: client blocking tracker — key-level read "
              "hazards\n");
  memdb::bench::Run();
  return 0;
}
