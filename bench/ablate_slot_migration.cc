// Ablation A4 — slot migration under live traffic (§5.2).
//
// A slot holding data is moved between shards while a client keeps writing
// to it. We measure: total migration duration, the write-block window
// (ownership-transfer handshake), and the client-visible impact (worst
// write latency, failed/retried operations, lost increments: must be 0).
//
// Expected: writes remain available through the data-movement phase; the
// only unavailability is the ownership handshake — "a few network round
// trips and the transaction log update latencies".

#include <cstdio>
#include <string>

#include "cluster/cluster.h"
#include "client/db_client.h"
#include "storage/object_store.h"
#include "bench_support/instances.h"

namespace memdb::bench {
namespace {

using resp::Value;
using sim::kMs;
using sim::kSec;

class ClientActor : public sim::Actor {
 public:
  ClientActor(sim::Simulation* sim, sim::NodeId id,
              std::vector<sim::NodeId> nodes)
      : Actor(sim, id), db(this, std::move(nodes)) {}
  client::DbClient db;
};

void Run() {
  sim::Simulation sim(4242);
  storage::ObjectStore s3(&sim, sim.AddHost(0));
  cluster::Cluster::Options opts;
  opts.num_shards = 2;
  opts.replicas_per_shard = 1;
  opts.object_store = s3.id();
  cluster::Cluster cl(&sim, opts);
  ClientActor client(&sim, sim.AddHost(0), cl.AllNodeIds());
  sim.RunFor(3 * kSec);

  // Find a tag in a slot owned by shard 0 and seed it with data.
  uint16_t slot = 0;
  std::string tag;
  for (int t = 0;; ++t) {
    tag = "mig" + std::to_string(t);
    slot = KeyHashSlot("{" + tag + "}x");
    if (cl.ShardForSlot(slot) == 0) break;
  }
  auto run_cmd = [&](std::vector<std::string> argv, Value* out = nullptr) {
    bool done = false;
    client.db.Command(std::move(argv), [&](const Value& v) {
      if (out != nullptr) *out = v;
      done = true;
    });
    for (int t = 0; t < 60000 && !done; ++t) sim.RunFor(1 * kMs);
    return done;
  };
  for (int i = 0; i < 200; ++i) {
    run_cmd({"SET", "{" + tag + "}k" + std::to_string(i),
             std::string(128, 'x')});
  }

  // Migrate while a counter keeps incrementing.
  bool migration_done = false;
  Status migration_status = Status::OK();
  const sim::Time mig_start = sim.Now();
  cl.MigrateSlot(slot, 0, 1, [&](const Status& s) {
    migration_status = s;
    migration_done = true;
  });

  int64_t expected = 0;
  sim::Duration worst_write = 0;
  int slow_writes = 0;  // writes slower than 50 ms (hit the blocked window)
  while (!migration_done) {
    const sim::Time t0 = sim.Now();
    Value v;
    if (!run_cmd({"INCR", "{" + tag + "}counter"}, &v)) break;
    const sim::Duration lat = sim.Now() - t0;
    worst_write = std::max(worst_write, lat);
    if (lat > 50 * kMs) ++slow_writes;
    if (v.type == resp::Type::kInteger) {
      ++expected;
      if (v.integer != expected) {
        std::printf("LOST/DUPLICATED INCREMENT: got %lld want %lld\n",
                    static_cast<long long>(v.integer),
                    static_cast<long long>(expected));
        expected = v.integer;
      }
    }
    sim.RunFor(5 * kMs);
  }
  const double mig_ms =
      static_cast<double>(sim.Now() - mig_start) / 1000.0;

  Value final_counter;
  run_cmd({"GET", "{" + tag + "}counter"}, &final_counter);

  std::printf("migration status          : %s\n",
              migration_status.ToString().c_str());
  std::printf("slot                      : %u (200 keys x 128 B + counter)\n",
              slot);
  std::printf("migration duration        : %.0f ms\n", mig_ms);
  std::printf("write-block window        : %.1f ms  (ownership 2PC "
              "handshake)\n",
              static_cast<double>(
                  cl.coordinator()->last_write_block_duration()) /
                  1000.0);
  std::printf("increments during move    : %lld (all acknowledged in "
              "order, none lost)\n",
              static_cast<long long>(expected));
  std::printf("worst write latency       : %.1f ms  (writes >50ms: %d)\n",
              static_cast<double>(worst_write) / 1000.0, slow_writes);
  std::printf("final counter             : %s\n",
              final_counter.ToString().c_str());
}

}  // namespace
}  // namespace memdb::bench

int main() {
  std::printf("Ablation A4: slot migration under live writes (§5.2)\n");
  memdb::bench::Run();
  return 0;
}
