// slot_migration_real: client-observed impact of a live fenced slot
// migration (§6 cluster data plane) over the real machinery — two
// gate-backed cluster-mode RespServers, each committing through its own
// in-process single-node txlog group, with a ClusterClient driving a mixed
// GET/SET load pinned to one hash-tagged slot while `CLUSTER SETSLOT
// <slot> MIGRATE` moves that slot between them.
//
// The run is cut into three windows:
//
//   before  — steady state on the source shard;
//   during  — SETSLOT issued until the ownership flip is visible in a
//             fresh CLUSTER SLOTS map (the ASK/TRYAGAIN/MOVED window);
//   after   — steady state on the target shard.
//
// The claim under test: migration is invisible to correctness (every op
// acks with the right value, nothing is lost at the handoff) and costs
// only a bounded latency bump while batches stream and redirects are
// chased — not an availability gap. A full read-back of the keyspace after
// the flip must find zero mismatches.
//
//   slot_migration_real [keys] [migration_batch_keys]
//
// Emits BENCH_cluster.json — the standing real-binary series that
// supersedes the simulation-only ablate_slot_migration numbers.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_support/envelope.h"
#include "client/cluster_client.h"
#include "common/crc.h"
#include "common/histogram.h"
#include "engine/engine.h"
#include "net/server.h"
#include "txlog/service.h"

namespace memdb::bench {
namespace {

uint64_t NowUs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void SleepMs(uint64_t ms) {
  std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

// Kernel-assigned free TCP port, closed before the server binds it. Ports
// are picked up-front so both shards can start with a full, symmetric peer
// map (each knows the other's endpoint before either is listening).
uint16_t FreePort() {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return 0;
  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(fd, reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) != 0) {
    ::close(fd);
    return 0;
  }
  socklen_t len = sizeof(sa);
  ::getsockname(fd, reinterpret_cast<sockaddr*>(&sa), &len);
  ::close(fd);
  return ntohs(sa.sin_port);
}

// Single-node txlog group: quorum of one, so every append commits at the
// speed of one loopback RPC — the bench measures the migration machinery,
// not replication fan-out (failover_mttr_real covers that axis).
struct Group {
  std::unique_ptr<txlog::LogService> service;
  std::string endpoint;

  bool Start(uint64_t node_id) {
    txlog::LogService::Options opt;
    opt.node_id = node_id;
    opt.listen_port = 0;
    opt.fsync = false;
    opt.heartbeat_ms = 20;
    opt.election_min_ms = 50;
    opt.election_max_ms = 120;
    service = std::make_unique<txlog::LogService>(opt);
    if (!service->Start().ok()) return false;
    endpoint = "127.0.0.1:" + std::to_string(service->port());
    service->SetPeers({{node_id, endpoint}});
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(5);
    while (std::chrono::steady_clock::now() < deadline) {
      if (service->IsLeader()) return true;
      SleepMs(5);
    }
    return false;
  }

  void Stop() {
    if (service) service->Stop();
  }
};

struct Shard {
  Group group;
  engine::Engine engine;
  std::unique_ptr<net::RespServer> server;

  bool Start(uint16_t port, uint64_t writer_id, const std::string& shard_id,
             const std::string& slots,
             const std::vector<net::ServerConfig::ClusterPeer>& peers,
             size_t batch_keys) {
    if (!group.Start(writer_id)) return false;
    net::ServerConfig cfg;
    cfg.port = port;
    cfg.loop_timeout_ms = 5;
    cfg.txlog_endpoints = {group.endpoint};
    cfg.txlog_writer_id = writer_id;
    cfg.cluster = true;
    cfg.shard_id = shard_id;
    cfg.cluster_slots = slots;
    cfg.cluster_peers = peers;
    cfg.migration_batch_keys = batch_keys;
    server = std::make_unique<net::RespServer>(&engine, cfg);
    return server->Start().ok();
  }

  void Stop() {
    if (server) server->Stop();
    group.Stop();
  }

  std::string Ep() const {
    return "127.0.0.1:" + std::to_string(server->port());
  }
};

struct Window {
  Histogram lat_us;
  std::atomic<uint64_t> errors{0};
};

const char* kWindowNames[3] = {"before", "during", "after"};

int Run(int argc, char** argv) {
  const int keys = argc > 1 ? std::atoi(argv[1]) : 2000;
  const size_t batch_keys =
      argc > 2 ? static_cast<size_t>(std::atoi(argv[2])) : 64;
  constexpr size_t kValueBytes = 64;
  const std::string tag = "{m1}";  // slot 6916, shard one's range
  const uint16_t slot = KeyHashSlot(Slice(tag));

  const uint16_t p1 = FreePort(), p2 = FreePort();
  const std::string ep1 = "127.0.0.1:" + std::to_string(p1);
  const std::string ep2 = "127.0.0.1:" + std::to_string(p2);
  Shard s1, s2;
  if (!s1.Start(p1, 1, "s1", "0-8191", {{"s2", ep2, "8192-16383"}},
                batch_keys)) {
    std::fprintf(stderr, "shard one failed to start\n");
    return 1;
  }
  if (!s2.Start(p2, 2, "s2", "8192-16383", {{"s1", ep1, "0-8191"}},
                batch_keys)) {
    std::fprintf(stderr, "shard two failed to start\n");
    return 1;
  }

  client::ClusterClient seeder({s1.Ep(), s2.Ep()});
  resp::Value reply;
  for (int i = 0; i < keys; ++i) {
    const std::string key = tag + "k" + std::to_string(i);
    if (!seeder.Execute({"SET", key, std::string(kValueBytes, 'v')}, &reply)
             .ok() ||
        reply.type != resp::Type::kSimpleString) {
      std::fprintf(stderr, "seed write %d failed\n", i);
      return 1;
    }
  }

  // Load thread: mixed 25% SET / 75% GET on the migrating slot through a
  // ClusterClient whose map goes stale mid-run — exactly a production
  // client's view. Window routing is by the phase at op START, so an op
  // straddling the SETSLOT lands in "before" (its latency was almost
  // entirely pre-migration).
  Window windows[3];
  std::atomic<int> phase{0};
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> total_ops{0};
  client::ClusterClient load({s1.Ep(), s2.Ep()});
  if (!load.RefreshSlotMap().ok()) {
    std::fprintf(stderr, "slot map warmup failed\n");
    return 1;
  }
  std::thread loader([&] {
    uint64_t i = 0;
    resp::Value r;
    while (!stop.load(std::memory_order_relaxed)) {
      const int w = phase.load(std::memory_order_relaxed);
      const std::string key = tag + "k" + std::to_string(i % keys);
      const bool is_set = (i & 3) == 0;
      const uint64_t t0 = NowUs();
      const Status s =
          is_set ? load.Execute({"SET", key, std::string(kValueBytes, 'w')},
                                &r)
                 : load.Execute({"GET", key}, &r);
      const uint64_t dt = NowUs() - t0;
      const bool ok =
          s.ok() && (is_set ? r.type == resp::Type::kSimpleString
                            : r.type == resp::Type::kBulkString);
      if (ok) {
        windows[w].lat_us.Record(dt);
      } else {
        windows[w].errors.fetch_add(1, std::memory_order_relaxed);
      }
      total_ops.fetch_add(1, std::memory_order_relaxed);
      ++i;
    }
  });

  SleepMs(1000);  // "before" window

  phase.store(1);
  const uint64_t t_migrate = NowUs();
  client::ClusterClient admin({s1.Ep()});
  if (!admin
           .Execute({"CLUSTER", "SETSLOT", std::to_string(slot), "MIGRATE",
                     "s2", s2.Ep()},
                    &reply)
           .ok() ||
      reply.str != "OK") {
    std::fprintf(stderr, "SETSLOT MIGRATE refused: %s\n", reply.str.c_str());
    stop.store(true);
    loader.join();
    return 1;
  }

  // The "during" window closes when a fresh map shows the new owner.
  bool flipped = false;
  uint64_t t_flip = t_migrate;
  const uint64_t flip_deadline = NowUs() + 60ull * 1000 * 1000;
  while (!flipped && NowUs() < flip_deadline) {
    client::ClusterClient probe({s1.Ep()});
    flipped = probe.RefreshSlotMap().ok() &&
              probe.EndpointForSlot(slot) == s2.Ep();
    t_flip = NowUs();
    if (!flipped) SleepMs(2);
  }
  phase.store(2);
  if (!flipped) {
    std::fprintf(stderr, "migration never committed\n");
    stop.store(true);
    loader.join();
    return 1;
  }

  SleepMs(1000);  // "after" window
  stop.store(true);
  loader.join();

  // Correctness sweep: every key must read back with a well-formed value
  // from the new owner. Zero mismatches is the acked-write-loss check.
  uint64_t mismatches = 0;
  client::ClusterClient verifier({s2.Ep()});
  for (int i = 0; i < keys; ++i) {
    const std::string key = tag + "k" + std::to_string(i);
    if (!verifier.Execute({"GET", key}, &reply).ok() ||
        reply.type != resp::Type::kBulkString ||
        reply.str.size() != kValueBytes) {
      ++mismatches;
    }
  }

  const double migration_ms =
      static_cast<double>(t_flip - t_migrate) / 1000.0;
  std::printf("slot_migration_real: slot %u, %d keys x %zu B, batch %zu\n",
              slot, keys, kValueBytes, batch_keys);
  std::printf("  migration window: %.1f ms; verify mismatches: %llu/%d\n",
              migration_ms, static_cast<unsigned long long>(mismatches),
              keys);
  std::printf("%8s %9s %9s %9s %9s %8s\n", "window", "ops", "p50_us",
              "p99_us", "max_us", "errors");
  for (int w = 0; w < 3; ++w) {
    std::printf("%8s %9llu %9llu %9llu %9llu %8llu\n", kWindowNames[w],
                static_cast<unsigned long long>(windows[w].lat_us.count()),
                static_cast<unsigned long long>(
                    windows[w].lat_us.Percentile(0.50)),
                static_cast<unsigned long long>(
                    windows[w].lat_us.Percentile(0.99)),
                static_cast<unsigned long long>(windows[w].lat_us.max()),
                static_cast<unsigned long long>(windows[w].errors.load()));
  }
  std::printf("  client redirects: moved=%llu ask=%llu tryagain=%llu\n",
              static_cast<unsigned long long>(load.moved_redirects()),
              static_cast<unsigned long long>(load.ask_redirects()),
              static_cast<unsigned long long>(load.tryagain_retries()));

  std::string json = "{";
  json += BenchEnvelopeJson(
      "slot_migration_real",
      {{"slot", std::to_string(slot)},
       {"keys", std::to_string(keys)},
       {"value_bytes", std::to_string(kValueBytes)},
       {"migration_batch_keys", std::to_string(batch_keys)}});
  json += ",\"migration_ms\":" + std::to_string(migration_ms);
  json += ",\"windows\":{";
  for (int w = 0; w < 3; ++w) {
    if (w > 0) json += ",";
    json += QuoteJson(kWindowNames[w]) + ":{";
    json += "\"ops\":" + std::to_string(windows[w].lat_us.count());
    json += ",\"p50_us\":" +
            std::to_string(windows[w].lat_us.Percentile(0.50));
    json += ",\"p99_us\":" +
            std::to_string(windows[w].lat_us.Percentile(0.99));
    json += ",\"max_us\":" + std::to_string(windows[w].lat_us.max());
    json += ",\"errors\":" + std::to_string(windows[w].errors.load()) + "}";
  }
  json += "}";
  json += ",\"client\":{\"moved_redirects\":" +
          std::to_string(load.moved_redirects());
  json += ",\"ask_redirects\":" + std::to_string(load.ask_redirects());
  json += ",\"tryagain_retries\":" + std::to_string(load.tryagain_retries());
  json += "}";
  json += ",\"verify\":{\"keys\":" + std::to_string(keys);
  json += ",\"mismatches\":" + std::to_string(mismatches) + "}";
  json += "}\n";

  std::FILE* f = std::fopen("BENCH_cluster.json", "w");
  if (f != nullptr) {
    std::fputs(json.c_str(), f);
    std::fclose(f);
    std::printf("  wrote BENCH_cluster.json\n");
  }

  s1.Stop();
  s2.Stop();
  return mismatches == 0 ? 0 : 1;
}

}  // namespace
}  // namespace memdb::bench

int main(int argc, char** argv) { return memdb::bench::Run(argc, argv); }
