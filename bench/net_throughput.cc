// Loopback throughput benchmark for the real I/O path (src/net): N client
// threads each keep one TCP connection saturated with pipelined SET/GET
// batches against a RespServer on 127.0.0.1, reporting client-side req/s
// and batch-RTT percentiles, plus the server-side batch-size histogram.
// Writes BENCH_net.json to the current directory.
//
//   net_throughput [connections] [pipeline_depth] [seconds] [io_threads]
//
// Defaults (8 conns x 32-deep pipeline, 2s, 4 io threads) finish in a few
// seconds; this is the real-socket counterpart of fig4's simulated
// throughput panels.

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench_support/envelope.h"
#include "bench_support/metrics_json.h"
#include "common/histogram.h"
#include "engine/engine.h"
#include "net/server.h"
#include "resp/resp.h"

// The bench reuses the loopback client from the test suite's style: a
// plain blocking socket wrapper.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

namespace memdb::bench {
namespace {

constexpr size_t kValueBytes = 100;
constexpr uint64_t kKeySpace = 10000;
constexpr double kSetRatio = 0.2;

struct ClientStats {
  Histogram batch_rtt_us;
  uint64_t ops = 0;
};

int ConnectLoopback(uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  struct sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &sa.sin_addr);
  if (::connect(fd, reinterpret_cast<struct sockaddr*>(&sa), sizeof(sa)) !=
      0) {
    ::close(fd);
    return -1;
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

bool SendAll(int fd, const std::string& bytes) {
  size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n =
        ::send(fd, bytes.data() + off, bytes.size() - off, MSG_NOSIGNAL);
    if (n <= 0) return false;
    off += static_cast<size_t>(n);
  }
  return true;
}

void ClientMain(uint16_t port, int pipeline, int seconds, uint64_t seed,
                ClientStats* stats, std::atomic<bool>* failed) {
  const int fd = ConnectLoopback(port);
  if (fd < 0) {
    failed->store(true);
    return;
  }
  const std::string value(kValueBytes, 'v');
  resp::Decoder dec;
  char buf[64 * 1024];
  uint64_t rng = seed | 1;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(seconds);
  while (std::chrono::steady_clock::now() < deadline) {
    std::string wire;
    for (int i = 0; i < pipeline; ++i) {
      rng = rng * 6364136223846793005ULL + 1442695040888963407ULL;
      const std::string key = "key:" + std::to_string((rng >> 33) % kKeySpace);
      if ((rng >> 16 & 0xff) < static_cast<uint64_t>(kSetRatio * 256)) {
        wire += resp::EncodeCommand({"SET", key, value});
      } else {
        wire += resp::EncodeCommand({"GET", key});
      }
    }
    const auto t0 = std::chrono::steady_clock::now();
    if (!SendAll(fd, wire)) break;
    int replies = 0;
    resp::Value v;
    while (replies < pipeline) {
      if (dec.Decode(&v) == resp::DecodeStatus::kOk) {
        ++replies;
        continue;
      }
      const ssize_t r = ::recv(fd, buf, sizeof(buf), 0);
      if (r <= 0) {
        failed->store(true);
        ::close(fd);
        return;
      }
      dec.Feed(Slice(buf, static_cast<size_t>(r)));
    }
    stats->batch_rtt_us.Record(static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - t0)
            .count()));
    stats->ops += static_cast<uint64_t>(pipeline);
  }
  ::close(fd);
}

int Run(int connections, int pipeline, int seconds, int io_threads) {
  engine::Engine engine;
  net::ServerConfig config;
  config.port = 0;
  config.io_threads = io_threads;
  net::RespServer server(&engine, config);
  const Status s = server.Start();
  if (!s.ok()) {
    std::fprintf(stderr, "net_throughput: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf(
      "net_throughput: %d connections x %d-deep pipeline, %ds, "
      "io-threads=%d, port=%u\n",
      connections, pipeline, seconds, io_threads, server.port());

  std::vector<ClientStats> stats(static_cast<size_t>(connections));
  std::atomic<bool> failed{false};
  const auto wall0 = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  for (int i = 0; i < connections; ++i) {
    threads.emplace_back(ClientMain, server.port(), pipeline, seconds,
                         0x9e3779b9ULL * static_cast<uint64_t>(i + 1),
                         &stats[static_cast<size_t>(i)], &failed);
  }
  for (std::thread& t : threads) t.join();
  const double wall_s =
      std::chrono::duration_cast<std::chrono::duration<double>>(
          std::chrono::steady_clock::now() - wall0)
          .count();

  // Join the loop thread before scraping its registry.
  server.Stop();

  Histogram rtt;
  uint64_t ops = 0;
  for (const ClientStats& cs : stats) {
    rtt.Merge(cs.batch_rtt_us);
    ops += cs.ops;
  }
  const double reqs_per_sec = wall_s > 0 ? static_cast<double>(ops) / wall_s
                                         : 0;
  std::printf("  reqs/s: %.0f  batch RTT p50=%lluus p99=%lluus (%llu ops)%s\n",
              reqs_per_sec,
              static_cast<unsigned long long>(rtt.Percentile(0.50)),
              static_cast<unsigned long long>(rtt.Percentile(0.99)),
              static_cast<unsigned long long>(ops),
              failed.load() ? "  [SOME CLIENTS FAILED]" : "");

  std::string json = "{";
  json += BenchEnvelopeJson("net_throughput",
                            {{"connections", std::to_string(connections)},
                             {"pipeline", std::to_string(pipeline)},
                             {"io_threads", std::to_string(io_threads)},
                             {"seconds", std::to_string(seconds)}});
  json += ",\"connections\":" + std::to_string(connections);
  json += ",\"pipeline\":" + std::to_string(pipeline);
  json += ",\"io_threads\":" + std::to_string(io_threads);
  json += ",\"seconds\":" + std::to_string(seconds);
  json += ",\"reqs_per_sec\":" + std::to_string(reqs_per_sec);
  json += ",\"batch_rtt_p50_us\":" + std::to_string(rtt.Percentile(0.50));
  json += ",\"batch_rtt_p99_us\":" + std::to_string(rtt.Percentile(0.99));
  json += ",\"ops\":" + std::to_string(ops);
  json += ",\"server\":" +
          MetricsJson(server.metrics(), {"net_batch_commands"},
                      {"net_input_bytes_total", "net_output_bytes_total",
                       "net_connections_accepted_total",
                       "net_evicted_clients_total"});
  json += "}\n";
  std::FILE* f = std::fopen("BENCH_net.json", "w");
  if (f != nullptr) {
    std::fputs(json.c_str(), f);
    std::fclose(f);
    std::printf("  wrote BENCH_net.json\n");
  }
  return failed.load() ? 1 : 0;
}

}  // namespace
}  // namespace memdb::bench

int main(int argc, char** argv) {
  const int connections = argc > 1 ? std::atoi(argv[1]) : 8;
  const int pipeline = argc > 2 ? std::atoi(argv[2]) : 32;
  const int seconds = argc > 3 ? std::atoi(argv[3]) : 2;
  const int io_threads = argc > 4 ? std::atoi(argv[4]) : 4;
  if (connections < 1 || pipeline < 1 || seconds < 1 || io_threads < 1) {
    std::fprintf(stderr,
                 "usage: net_throughput [connections] [pipeline] [seconds] "
                 "[io_threads]\n");
    return 2;
  }
  return memdb::bench::Run(connections, pipeline, seconds, io_threads);
}
