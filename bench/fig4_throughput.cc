// Figure 4 — maximum throughput by instance type (§6.1.2.1).
//
// Setup mirrors the paper: 1000 closed-loop client connections (10 hosts x
// 100 connections, no pipelining), 100-byte values, keyspace prefilled so
// GETs always hit. For each r7g instance type we report the sustained
// ops/sec of OSS-Redis-like and MemoryDB configurations for (a) read-only
// and (b) write-only workloads.
//
// Expected shape (paper): reads — parity (~up to 200K) below 2xlarge, then
// MemoryDB ~500K vs Redis ~330K; writes — Redis ~300K vs MemoryDB ~185K
// (every MemoryDB write commits to the multi-AZ transaction log).

#include <cstdio>

#include "bench_support/driver.h"
#include "bench_support/fixtures.h"
#include "bench_support/instances.h"

namespace memdb::bench {
namespace {

constexpr uint64_t kPrefillKeys = 50'000;
constexpr sim::Duration kWarmup = 200 * sim::kMs;
constexpr sim::Duration kMeasure = 600 * sim::kMs;

double MeasureMemDb(const InstanceModel& m, double set_ratio) {
  MemDbFixture f = MemDbFixture::Create(m, MemDbFixture::Params{});
  if (f.primary == nullptr) return 0;
  f.Prefill(kPrefillKeys, 100);
  LoadDriver::Options opts;
  opts.connections = 1000;
  opts.set_ratio = set_ratio;
  opts.value_bytes = 100;
  opts.key_space = kPrefillKeys;
  LoadDriver driver(f.sim.get(), f.sim->AddHost(0), f.primary->id(), opts);
  driver.Start();
  f.sim->RunFor(kWarmup);
  driver.ResetStats();
  f.sim->RunFor(kMeasure);
  return driver.Throughput();
}

double MeasureRedis(const InstanceModel& m, double set_ratio) {
  RedisFixture f = RedisFixture::Create(m, RedisFixture::Params{});
  f.Prefill(kPrefillKeys, 100);
  LoadDriver::Options opts;
  opts.connections = 1000;
  opts.set_ratio = set_ratio;
  opts.value_bytes = 100;
  opts.key_space = kPrefillKeys;
  LoadDriver driver(f.sim.get(), f.sim->AddHost(0), f.primary->id(), opts);
  driver.Start();
  f.sim->RunFor(kWarmup);
  driver.ResetStats();
  f.sim->RunFor(kMeasure);
  return driver.Throughput();
}

void RunPanel(const char* title, double set_ratio) {
  std::printf("\n%s\n", title);
  std::printf("%-14s %14s %14s\n", "instance", "Redis [op/s]",
              "MemoryDB [op/s]");
  for (const InstanceModel& m : R7gCatalog()) {
    const double redis = MeasureRedis(m, set_ratio);
    const double memdb = MeasureMemDb(m, set_ratio);
    std::printf("%-14s %14.0f %14.0f\n", m.name.c_str(), redis, memdb);
    std::fflush(stdout);
  }
}

}  // namespace
}  // namespace memdb::bench

int main() {
  std::printf(
      "Figure 4: maximum throughput, 1000 closed-loop connections, 100B "
      "values\n");
  memdb::bench::RunPanel("(a) read-only workload (GET)", 0.0);
  memdb::bench::RunPanel("(b) write-only workload (SET)", 1.0);
  return 0;
}
