// Ablation A2 — leader election properties (§4.1).
//
// (1) Failover latency distribution: time from primary crash until a new
//     primary holds the lease, over repeated trials.
// (2) Leader singularity: densely sampled primary count never exceeds one,
//     including through a split-brain-inducing partition.
// (3) Liveness without cluster quorum: with only ONE database replica left
//     (no majority of database nodes), election still succeeds, because it
//     depends only on the transaction log service.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_support/fixtures.h"
#include "bench_support/instances.h"

namespace memdb::bench {
namespace {

using sim::kMs;
using sim::kSec;

void FailoverLatency() {
  std::printf("\n(1) failover latency (crash -> new lease), 10 trials\n");
  std::vector<double> samples;
  for (uint64_t trial = 0; trial < 10; ++trial) {
    MemDbFixture::Params p;
    p.replicas = 2;
    p.seed = 100 + trial;
    MemDbFixture f = MemDbFixture::Create(R7g("r7g.2xlarge"), p);
    if (f.primary == nullptr) continue;
    f.sim->Crash(f.primary->id());
    const sim::Time crash = f.sim->Now();
    memorydb::Node* next = nullptr;
    while (next == nullptr && f.sim->Now() - crash < 30 * kSec) {
      f.sim->RunFor(10 * kMs);
      next = f.shard->Primary();
    }
    samples.push_back(static_cast<double>(f.sim->Now() - crash) / 1000.0);
  }
  std::sort(samples.begin(), samples.end());
  std::printf("    min=%.0f ms  median=%.0f ms  max=%.0f ms\n",
              samples.front(), samples[samples.size() / 2], samples.back());
  std::printf("    (lease %d ms + backoff %d ms bound the detection time)\n",
              400, 650);
}

void LeaderSingularity() {
  std::printf("\n(2) leader singularity through partitions and crashes\n");
  MemDbFixture::Params p;
  p.replicas = 2;
  p.seed = 7;
  MemDbFixture f = MemDbFixture::Create(R7g("r7g.2xlarge"), p);
  int max_primaries = 0;
  uint64_t samples = 0;
  auto sample = [&] {
    int primaries = 0;
    for (size_t i = 0; i < f.shard->num_nodes(); ++i) {
      if (f.sim->IsAlive(f.shard->node(i)->id()) &&
          f.shard->node(i)->IsPrimary()) {
        ++primaries;
      }
    }
    max_primaries = std::max(max_primaries, primaries);
    ++samples;
  };
  // Isolate the primary (split brain attempt), heal, crash, restart...
  for (int round = 0; round < 4; ++round) {
    memorydb::Node* primary = f.shard->Primary();
    if (primary != nullptr) f.sim->network().Isolate(primary->id());
    for (int t = 0; t < 200; ++t) {
      f.sim->RunFor(10 * kMs);
      sample();
    }
    f.sim->network().HealAll();
    for (int t = 0; t < 200; ++t) {
      f.sim->RunFor(10 * kMs);
      sample();
    }
  }
  std::printf("    %llu samples, max simultaneous primaries = %d %s\n",
              static_cast<unsigned long long>(samples), max_primaries,
              max_primaries <= 1 ? "(PASS)" : "(VIOLATION)");
}

void LivenessWithoutQuorum() {
  std::printf("\n(3) election with a single surviving database node\n");
  MemDbFixture::Params p;
  p.replicas = 2;
  p.seed = 21;
  MemDbFixture f = MemDbFixture::Create(R7g("r7g.2xlarge"), p);
  // Kill the primary AND one replica: no majority of DB nodes remains.
  memorydb::Node* primary = f.shard->Primary();
  memorydb::Node* survivor = nullptr;
  for (size_t i = 0; i < f.shard->num_nodes(); ++i) {
    memorydb::Node* n = f.shard->node(i);
    if (n == primary) {
      f.sim->Crash(n->id());
    } else if (survivor == nullptr) {
      survivor = n;
    } else {
      f.sim->Crash(n->id());
    }
  }
  const sim::Time crash = f.sim->Now();
  while (f.shard->Primary() == nullptr && f.sim->Now() - crash < 30 * kSec) {
    f.sim->RunFor(10 * kMs);
  }
  if (f.shard->Primary() == survivor) {
    std::printf(
        "    lone replica promoted after %.0f ms — liveness depends only "
        "on the transaction log service (PASS)\n",
        static_cast<double>(f.sim->Now() - crash) / 1000.0);
  } else {
    std::printf("    FAILED to elect the lone replica\n");
  }
}

}  // namespace
}  // namespace memdb::bench

int main() {
  std::printf("Ablation A2: leader election — latency, singularity, "
              "liveness (§4.1)\n");
  memdb::bench::FailoverLatency();
  memdb::bench::LeaderSingularity();
  memdb::bench::LivenessWithoutQuorum();
  return 0;
}
