// Standing load trajectory for the memory-pressure subsystem: the loadgen
// harness drives a real RespServer on 127.0.0.1 through four phases —
// unbounded baseline, allkeys-lru at ~50% and ~20% of the working set, and
// an expiry storm where every SET carries a short TTL — while a sampler
// thread scrapes used_memory_bytes / evicted_keys_total /
// expired_keys_total over the same wire. Per-phase throughput and p50/p99
// trajectories plus the server-side series land in BENCH_load.json.
//
//   load_real [seconds_per_phase]   (default 4)

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_support/envelope.h"
#include "engine/engine.h"
#include "loadgen/loadgen.h"
#include "net/server.h"

namespace memdb::bench {
namespace {

// ~20k keys x 256-byte values ≈ 5 MiB of payload (~7 MiB with per-entry
// overhead): comfortably larger than the pressure budgets below.
constexpr uint64_t kKeySpace = 20'000;
constexpr size_t kValueBytes = 256;
constexpr uint64_t kBudget50 = 4 * 1024 * 1024;
constexpr uint64_t kBudget20 = 3 * 1024 * 1024 / 2;

struct ServerSample {
  uint64_t at_ms;
  double used_memory;
  double evicted_total;
  double expired_total;
};

struct PhaseResult {
  std::string name;
  loadgen::LoadConfig config;
  loadgen::LoadReport report;
  std::vector<ServerSample> series;
};

uint64_t NowMs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// Runs one phase against a fresh server; the sampler thread polls the
// server's METRICS exposition every 250 ms for the memory trajectory.
PhaseResult RunPhase(const std::string& name, uint64_t maxmemory_bytes,
                     engine::EvictionPolicy policy, loadgen::LoadConfig cfg,
                     uint64_t drain_ms) {
  engine::Engine engine;
  engine.set_maxmemory(maxmemory_bytes);
  engine.set_eviction_policy(policy);
  net::ServerConfig server_cfg;
  server_cfg.port = 0;
  server_cfg.loop_timeout_ms = 10;
  net::RespServer server(&engine, server_cfg);
  if (!server.Start().ok()) {
    std::fprintf(stderr, "server start failed\n");
    std::exit(1);
  }
  const std::string endpoint =
      "127.0.0.1:" + std::to_string(server.port());
  cfg.endpoints = {endpoint};

  PhaseResult out;
  out.name = name;
  out.config = cfg;

  std::atomic<bool> stop{false};
  const uint64_t t0 = NowMs();
  std::thread sampler([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      ServerSample s{};
      s.at_ms = NowMs() - t0;
      loadgen::ScrapeMetric(endpoint, "used_memory_bytes", &s.used_memory);
      loadgen::ScrapeMetric(endpoint, "evicted_keys_total",
                            &s.evicted_total);
      loadgen::ScrapeMetric(endpoint, "expired_keys_total",
                            &s.expired_total);
      out.series.push_back(s);
      std::this_thread::sleep_for(std::chrono::milliseconds(250));
    }
  });

  loadgen::LoadGenerator gen(cfg);
  out.report = gen.Run();
  // The expiry storm keeps sampling through a post-load drain window so
  // the active sweep's expirations show up in the trajectory.
  if (drain_ms > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(drain_ms));
  }
  stop.store(true, std::memory_order_relaxed);
  sampler.join();
  server.Stop();

  std::printf(
      "%-16s ops=%-9llu err=%-5llu thr=%-8.0f p50=%lluus p99=%lluus "
      "used=%.0f evicted=%.0f expired=%.0f\n",
      name.c_str(), static_cast<unsigned long long>(out.report.ops),
      static_cast<unsigned long long>(out.report.errors),
      out.report.throughput,
      static_cast<unsigned long long>(out.report.latency.Percentile(0.50)),
      static_cast<unsigned long long>(out.report.latency.Percentile(0.99)),
      out.series.empty() ? 0.0 : out.series.back().used_memory,
      out.series.empty() ? 0.0 : out.series.back().evicted_total,
      out.series.empty() ? 0.0 : out.series.back().expired_total);
  return out;
}

std::string PhaseJson(const PhaseResult& p) {
  std::string out = "{";
  out += "\"name\":" + QuoteJson(p.name);
  out += ",\"config\":" + loadgen::ConfigJson(p.config);
  out += ",\"result\":" + loadgen::ReportJson(p.report);
  out += ",\"server_series\":[";
  for (size_t i = 0; i < p.series.size(); ++i) {
    const ServerSample& s = p.series[i];
    if (i != 0) out += ",";
    out += "{\"at_ms\":" + std::to_string(s.at_ms) +
           ",\"used_memory_bytes\":" + std::to_string(s.used_memory) +
           ",\"evicted_keys_total\":" + std::to_string(s.evicted_total) +
           ",\"expired_keys_total\":" + std::to_string(s.expired_total) +
           "}";
  }
  out += "]}";
  return out;
}

int Main(int argc, char** argv) {
  const uint64_t seconds =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 4;

  loadgen::LoadConfig base;
  base.connections = 8;
  base.threads = 2;
  base.keyspace = kKeySpace;
  base.dist = loadgen::KeyDist::kZipfian;
  base.write_ratio = 0.5;
  base.value_min = base.value_max = kValueBytes;
  base.pipeline = 8;
  base.duration_ms = seconds * 1000;
  base.warmup_ms = 500;

  std::vector<PhaseResult> phases;
  phases.push_back(RunPhase("baseline", 0,
                            engine::EvictionPolicy::kNoEviction, base, 0));
  phases.push_back(RunPhase("pressure_lru_50", kBudget50,
                            engine::EvictionPolicy::kAllKeysLru, base, 0));
  phases.push_back(RunPhase("pressure_lru_20", kBudget20,
                            engine::EvictionPolicy::kAllKeysLru, base, 0));

  loadgen::LoadConfig storm = base;
  storm.write_ratio = 1.0;
  storm.ttl_fraction = 1.0;
  storm.ttl_ms = 500;
  phases.push_back(RunPhase("expiry_storm", kBudget50,
                            engine::EvictionPolicy::kAllKeysLru, storm,
                            /*drain_ms=*/1500));

  bool ok = true;
  for (const PhaseResult& p : phases) {
    if (!p.report.ok || p.report.errors != 0) {
      std::fprintf(stderr, "phase %s saw errors: %s\n", p.name.c_str(),
                   p.report.error_detail.c_str());
      ok = false;
    }
  }

  std::string json = "{";
  json += BenchEnvelopeJson(
      "load", {{"seconds_per_phase", std::to_string(seconds)},
               {"keyspace", std::to_string(kKeySpace)},
               {"value_bytes", std::to_string(kValueBytes)}});
  json += ",\"phases\":[";
  for (size_t i = 0; i < phases.size(); ++i) {
    if (i != 0) json += ",";
    json += PhaseJson(phases[i]);
  }
  json += "]}\n";
  std::FILE* f = std::fopen("BENCH_load.json", "w");
  if (f != nullptr) {
    std::fputs(json.c_str(), f);
    std::fclose(f);
    std::printf("wrote BENCH_load.json\n");
  }
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace memdb::bench

int main(int argc, char** argv) { return memdb::bench::Main(argc, argv); }
