// Ablation A1 — acknowledged-write durability across failover (§2.2 / §4.1).
//
// Both systems run the same experiment: a client streams SETs with unique
// values, the primary is killed mid-stream, a replacement takes over, and
// we count acknowledged writes that the surviving cluster no longer has.
//
// Expected: Redis (asynchronous replication, ranked failover) loses the
// tail of acknowledged writes that had not been flushed to any replica;
// MemoryDB loses none — a write is only acknowledged after commit to the
// multi-AZ transaction log, and only fully caught-up replicas can win
// election. We also report the write-availability gap (time from crash to
// the first successful write on the new primary).

#include <cstdio>
#include <string>
#include <vector>

#include "bench_support/fixtures.h"
#include "client/db_client.h"
#include "bench_support/instances.h"

namespace memdb::bench {
namespace {

using resp::Value;
using sim::kMs;
using sim::kSec;

class ClientActor : public sim::Actor {
 public:
  ClientActor(sim::Simulation* sim, sim::NodeId id,
              std::vector<sim::NodeId> nodes)
      : Actor(sim, id), db(this, std::move(nodes)) {}
  client::DbClient db;
};

struct TrialResult {
  int acked = 0;
  int lost = 0;
  double gap_ms = 0;  // crash -> first successful write
};

// Runs the experiment against an already-bootstrapped cluster.
template <typename CrashFn, typename AliveFn>
TrialResult RunTrial(sim::Simulation* sim, ClientActor* client,
                     CrashFn crash_primary, AliveFn cluster_has_primary,
                     uint64_t seed) {
  TrialResult result;
  std::vector<std::string> acked_keys;
  // Phase 1: stream writes; crash the primary mid-stream without waiting
  // for quiescence.
  int completed = 0;
  int issued = 0;
  bool crashed = false;
  sim::Time crash_time = 0;
  while (issued < 400) {
    const std::string key =
        "d" + std::to_string(seed) + "-" + std::to_string(issued);
    ++issued;
    bool done = false;
    client->db.Command({"SET", key, "v"}, [&](const Value& v) {
      if (v == Value::Ok()) acked_keys.push_back(key);
      done = true;
      ++completed;
    });
    // Poll briefly; do not wait for every reply (writes overlap the crash).
    for (int t = 0; t < 4 && !done; ++t) sim->RunFor(500);
    if (!crashed && issued == 300) {
      crash_time = sim->Now();
      crash_primary();
      crashed = true;
    }
  }
  // Let the failover finish and in-flight replies drain.
  sim->RunFor(5 * kSec);
  result.acked = static_cast<int>(acked_keys.size());

  // Availability gap: first successful write after the crash.
  bool recovered = false;
  while (!recovered) {
    bool done = false;
    client->db.Command({"SET", "probe", "x"}, [&](const Value& v) {
      recovered = (v == Value::Ok());
      done = true;
    });
    for (int t = 0; t < 20000 && !done; ++t) sim->RunFor(1 * kMs);
    if (!done) break;
  }
  result.gap_ms =
      static_cast<double>(sim->Now() - crash_time) / 1000.0 - 5000.0;
  if (result.gap_ms < 0) result.gap_ms = 0;

  // Phase 2: count acked writes that are gone.
  for (const std::string& key : acked_keys) {
    bool done = false;
    bool present = false;
    client->db.Command({"GET", key}, [&](const Value& v) {
      present = (v.type == resp::Type::kBulkString);
      done = true;
    });
    for (int t = 0; t < 20000 && !done; ++t) sim->RunFor(1 * kMs);
    if (!present) ++result.lost;
  }
  return result;
}

void Run() {
  std::printf("%-10s %-6s %8s %8s %14s\n", "system", "trial", "acked",
              "lost", "gap-to-write");
  const InstanceModel& m = R7g("r7g.2xlarge");

  int memdb_total_lost = 0, redis_total_lost = 0;
  for (uint64_t trial = 1; trial <= 3; ++trial) {
    {
      MemDbFixture::Params p;
      p.replicas = 2;
      p.seed = trial;
      MemDbFixture f = MemDbFixture::Create(m, p);
      ClientActor client(f.sim.get(), f.sim->AddHost(0),
                         f.shard->node_ids());
      TrialResult r = RunTrial(
          f.sim.get(), &client,
          [&] {
            memorydb::Node* primary = f.shard->Primary();
            if (primary != nullptr) f.sim->Crash(primary->id());
          },
          [&] { return f.shard->Primary() != nullptr; }, trial);
      memdb_total_lost += r.lost;
      std::printf("%-10s %-6llu %8d %8d %11.0f ms\n", "MemoryDB",
                  static_cast<unsigned long long>(trial), r.acked, r.lost,
                  r.gap_ms);
    }
    {
      RedisFixture::Params p;
      p.replicas = 2;
      p.seed = trial;
      p.base_config.repl_flush_interval = 20 * kMs;
      RedisFixture f = RedisFixture::Create(m, p);
      ClientActor client(f.sim.get(), f.sim->AddHost(0), [&] {
        std::vector<sim::NodeId> ids;
        for (auto& n : f.nodes) ids.push_back(n->id());
        return ids;
      }());
      TrialResult r = RunTrial(
          f.sim.get(), &client,
          [&] { f.sim->Crash(f.nodes[0]->id()); },
          [&] {
            for (auto& n : f.nodes) {
              if (f.sim->IsAlive(n->id()) && n->IsPrimary()) return true;
            }
            return false;
          },
          trial);
      redis_total_lost += r.lost;
      std::printf("%-10s %-6llu %8d %8d %11.0f ms\n", "Redis",
                  static_cast<unsigned long long>(trial), r.acked, r.lost,
                  r.gap_ms);
    }
    std::fflush(stdout);
  }
  std::printf(
      "\ntotal acknowledged writes lost: MemoryDB=%d  Redis=%d\n"
      "(paper: MemoryDB must lose zero; Redis loses the unreplicated "
      "tail)\n",
      memdb_total_lost, redis_total_lost);
}

}  // namespace
}  // namespace memdb::bench

int main() {
  std::printf("Ablation A1: acknowledged-write durability across primary "
              "failover\n");
  memdb::bench::Run();
  return 0;
}
