// Ablation A3 — snapshot-dominant restores (§4.2.3).
//
// A fresh replica joins a shard and must restore: fetch the latest snapshot
// from the object store, then replay the transaction log from the
// snapshot's position. The workload overwrites a 2000-key working set
// 10x over, so the log holds ~10x more bytes than a snapshot of the same
// state — the compaction property §4.2.3 relies on. We sweep the snapshot
// freshness (how much log lies beyond the snapshot) and measure
// time-to-caught-up for a newly added replica.
//
// Expected: restore time grows with the amount of log to replay; keeping
// snapshots fresh (the scheduler's job) bounds MTTR. With no snapshot at
// all, the whole history must be replayed.

#include <cstdio>
#include <string>

#include "bench_support/fixtures.h"
#include "bench_support/instances.h"
#include "client/db_client.h"

namespace memdb::bench {
namespace {

using sim::kMs;
using sim::kSec;

class ClientActor : public sim::Actor {
 public:
  ClientActor(sim::Simulation* sim, sim::NodeId id,
              std::vector<sim::NodeId> nodes)
      : Actor(sim, id), db(this, std::move(nodes)) {}
  client::DbClient db;
};

// Writes `n` keys through the normal path (so they are in the log),
// pipelined 64-deep to keep generation fast.
void WriteKeys(sim::Simulation* sim, ClientActor* client, int n, int base) {
  int completed = 0;
  int issued = 0;
  while (completed < n) {
    while (issued < n && issued - completed < 64) {
      client->db.Command(
          {"SET", "k" + std::to_string((base + issued) % 2000),
           std::string(4096, 'v')},
          [&completed](const resp::Value&) { ++completed; });
      ++issued;
    }
    sim->RunFor(200);
  }
}

// total_writes through the log; snapshot taken after snapshot_at writes
// (-1 = no snapshot at all). Returns replica catch-up time in ms.
double Measure(int total_writes, int snapshot_at) {
  MemDbFixture::Params p;
  p.replicas = 1;
  p.with_offbox = true;
  p.snapshot_max_log_distance = ~0ULL >> 2;  // manual trigger only
  p.seed = static_cast<uint64_t>(total_writes * 31 + snapshot_at);
  MemDbFixture f = MemDbFixture::Create(R7g("r7g.2xlarge"), p);
  if (f.primary == nullptr) return -1;
  ClientActor client(f.sim.get(), f.sim->AddHost(0), f.shard->node_ids());

  if (snapshot_at >= 0) {
    WriteKeys(f.sim.get(), &client, snapshot_at, 0);
    bool snap_done = false;
    f.shard->offbox()->Snapshot(
        [&](const Status&, uint64_t) { snap_done = true; });
    for (int t = 0; t < 60000 && !snap_done; ++t) f.sim->RunFor(1 * kMs);
    WriteKeys(f.sim.get(), &client, total_writes - snapshot_at, snapshot_at);
  } else {
    WriteKeys(f.sim.get(), &client, total_writes, 0);
  }

  // A brand-new replica restores (snapshot + replay).
  const sim::Time start = f.sim->Now();
  memorydb::Node* newbie = f.shard->AddReplica();
  while (!newbie->caught_up() && f.sim->Now() - start < 120 * kSec) {
    f.sim->RunFor(5 * kMs);
  }
  return static_cast<double>(f.sim->Now() - start) / 1000.0;
}

void Run() {
  constexpr int kTotal = 20000;
  std::printf("%-34s %14s\n", "restore configuration", "MTTR [ms]");
  struct Case {
    const char* label;
    int snapshot_at;
  };
  const Case cases[] = {
      {"no snapshot (replay 20000 writes)", -1},
      {"stale snapshot    (replay ~15000)", kTotal - 15000},
      {"aging snapshot    (replay ~10000)", kTotal - 10000},
      {"fresh snapshot    (replay ~5000)", kTotal - 5000},
      {"freshest snapshot (replay ~500)", kTotal - 500},
  };
  for (const Case& c : cases) {
    const double mttr = Measure(kTotal, c.snapshot_at);
    std::printf("%-34s %14.0f\n", c.label, mttr);
    std::fflush(stdout);
  }
  std::printf(
      "\nRestore time is bounded by log replay beyond the snapshot — the\n"
      "scheduler keeps snapshots fresh so restores stay snapshot-dominant "
      "(§4.2.3).\n");
}

}  // namespace
}  // namespace memdb::bench

int main() {
  std::printf("Ablation A3: recovery MTTR vs snapshot freshness\n");
  memdb::bench::Run();
  return 0;
}
