// M1 — engine micro-benchmarks (google-benchmark): raw command execution
// cost of the in-memory engine, outside the simulator. These numbers ground
// the CPU cost model in bench_support/instances.cc.

#include <benchmark/benchmark.h>

#include <string>

#include "engine/engine.h"
#include "engine/snapshot.h"

namespace memdb::engine {
namespace {

class EngineBench {
 public:
  EngineBench() {
    ctx_.now_ms = 1;
    ctx_.rng = &engine_.rng();
  }
  resp::Value Run(const Argv& argv) {
    ctx_.effects.clear();
    ctx_.dirty_keys.clear();
    return engine_.Execute(argv, &ctx_);
  }
  Engine& engine() { return engine_; }

 private:
  Engine engine_;
  ExecContext ctx_;
};

void BM_Set(benchmark::State& state) {
  EngineBench e;
  const std::string value(100, 'x');
  uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        e.Run({"SET", "key:" + std::to_string(i++ % 10000), value}));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_Set);

void BM_GetHit(benchmark::State& state) {
  EngineBench e;
  for (int i = 0; i < 10000; ++i) {
    e.Run({"SET", "key:" + std::to_string(i), std::string(100, 'x')});
  }
  uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(e.Run({"GET", "key:" + std::to_string(i++ % 10000)}));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_GetHit);

void BM_GetMiss(benchmark::State& state) {
  EngineBench e;
  for (auto _ : state) {
    benchmark::DoNotOptimize(e.Run({"GET", "absent"}));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_GetMiss);

void BM_Incr(benchmark::State& state) {
  EngineBench e;
  for (auto _ : state) {
    benchmark::DoNotOptimize(e.Run({"INCR", "counter"}));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_Incr);

void BM_LPushRPop(benchmark::State& state) {
  EngineBench e;
  for (auto _ : state) {
    e.Run({"LPUSH", "list", "element"});
    benchmark::DoNotOptimize(e.Run({"RPOP", "list"}));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 2);
}
BENCHMARK(BM_LPushRPop);

void BM_HSet(benchmark::State& state) {
  EngineBench e;
  uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        e.Run({"HSET", "hash", "f" + std::to_string(i++ % 1000), "value"}));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_HSet);

void BM_ZAdd(benchmark::State& state) {
  EngineBench e;
  uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(e.Run({"ZADD", "zset", std::to_string(i % 5000),
                                    "m" + std::to_string(i % 5000)}));
    ++i;
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_ZAdd);

void BM_ZRangeTop10(benchmark::State& state) {
  EngineBench e;
  for (int i = 0; i < 10000; ++i) {
    e.Run({"ZADD", "zset", std::to_string(i), "m" + std::to_string(i)});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        e.Run({"ZRANGE", "zset", "0", "9", "REV", "WITHSCORES"}));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_ZRangeTop10);

void BM_SAddSpop(benchmark::State& state) {
  EngineBench e;
  uint64_t i = 0;
  for (auto _ : state) {
    e.Run({"SADD", "set", std::to_string(i++ % 4096)});
    benchmark::DoNotOptimize(e.Run({"SPOP", "set"}));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 2);
}
BENCHMARK(BM_SAddSpop);

void BM_SnapshotSerialize10k(benchmark::State& state) {
  EngineBench e;
  for (int i = 0; i < 10000; ++i) {
    e.Run({"SET", "key:" + std::to_string(i), std::string(100, 'x')});
  }
  SnapshotMeta meta;
  for (auto _ : state) {
    benchmark::DoNotOptimize(SerializeSnapshot(e.engine().keyspace(), meta));
  }
}
BENCHMARK(BM_SnapshotSerialize10k);

void BM_SnapshotRestore10k(benchmark::State& state) {
  EngineBench e;
  for (int i = 0; i < 10000; ++i) {
    e.Run({"SET", "key:" + std::to_string(i), std::string(100, 'x')});
  }
  SnapshotMeta meta;
  const std::string blob = SerializeSnapshot(e.engine().keyspace(), meta);
  Engine target;
  for (auto _ : state) {
    SnapshotMeta m2;
    benchmark::DoNotOptimize(
        DeserializeSnapshot(blob, &target.keyspace(), &m2));
  }
}
BENCHMARK(BM_SnapshotRestore10k);

}  // namespace
}  // namespace memdb::engine

BENCHMARK_MAIN();
