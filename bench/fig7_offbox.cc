// Figure 7 — MemoryDB throughput and latency while an off-box cluster takes
// a snapshot (§6.2.2).
//
// Same workload shape as Figure 6 (mixed GET/SET, 500-byte values) against
// a MemoryDB shard; a shadow off-box replica restores from S3 + the
// transaction log and dumps a fresh snapshot in parallel.
//
// Expected shape (paper): average latency around a millisecond with p100
// between ~10 and ~20 ms throughout — stable before, during, and after the
// snapshot, because the customer cluster is not involved at all. (The p100
// reflects reads that hit a key with an in-flight commit and wait on the
// tracker.)

#include <cstdio>

#include "bench_support/driver.h"
#include "bench_support/fixtures.h"
#include "bench_support/instances.h"

namespace memdb::bench {
namespace {

constexpr uint64_t kGiB = 1ULL << 30;

void Run() {
  const InstanceModel& m = R7g("r7g.large");
  MemDbFixture::Params params;
  params.replicas = 1;
  params.with_offbox = true;
  // Scheduler disabled (huge distance); the bench triggers one snapshot
  // explicitly so the timeline is aligned.
  params.snapshot_max_log_distance = ~0ULL >> 2;
  MemDbFixture f = MemDbFixture::Create(m, params);
  if (f.primary == nullptr) {
    std::printf("bootstrap failed\n");
    return;
  }
  f.shard->offbox()->SetSyntheticDatasetBytes(10 * kGiB);
  f.Prefill(20'000, 500);

  LoadDriver::Options read_opts;
  read_opts.connections = 100;
  read_opts.set_ratio = 0.0;
  read_opts.value_bytes = 500;
  read_opts.key_space = 20'000;
  LoadDriver readers(f.sim.get(), f.sim->AddHost(0), f.primary->id(),
                     read_opts);
  LoadDriver::Options write_opts = read_opts;
  write_opts.connections = 20;
  write_opts.set_ratio = 1.0;
  write_opts.seed = 99;
  LoadDriver writers(f.sim.get(), f.sim->AddHost(0), f.primary->id(),
                     write_opts);
  readers.Start();
  writers.Start();

  std::printf("%6s %12s %10s %10s %s\n", "t[s]", "thruput[op/s]", "avg[ms]",
              "p100[ms]", "phase");
  const int kSnapshotStartSec = 5;
  bool snapshot_done = false;
  bool snapshot_started = false;
  int done_at = 1 << 30;
  for (int sec = 1; sec <= 60; ++sec) {
    if (sec == kSnapshotStartSec) {
      snapshot_started = true;
      f.shard->offbox()->Snapshot([&](const Status& s, uint64_t position) {
        snapshot_done = true;
        if (!s.ok()) {
          std::printf("snapshot failed: %s\n", s.ToString().c_str());
        }
      });
    }
    readers.ResetStats();
    writers.ResetStats();
    f.sim->RunFor(1 * sim::kSec);
    Histogram all;
    all.Merge(readers.read_latency());
    all.Merge(writers.write_latency());
    const char* phase =
        !snapshot_started ? "before"
                          : (snapshot_done ? "after" : "OFF-BOX SNAPSHOT");
    std::printf("%6d %12.0f %10.2f %10.2f %s\n", sec,
                readers.Throughput() + writers.Throughput(),
                all.Mean() / 1000.0,
                static_cast<double>(all.max()) / 1000.0, phase);
    std::fflush(stdout);
    if (snapshot_done && done_at > sec) done_at = sec;
    if (sec > done_at + 3) break;
  }
  std::printf("snapshots created: %llu, verification failures: %d\n",
              static_cast<unsigned long long>(
                  f.shard->offbox()->snapshots_created()),
              f.shard->offbox()->verification_failed() ? 1 : 0);
}

}  // namespace
}  // namespace memdb::bench

int main() {
  std::printf(
      "Figure 7: MemoryDB during off-box snapshotting (mixed workload, "
      "500B values)\n");
  memdb::bench::Run();
  return 0;
}
