// rpc_append_latency: ConditionalAppend round-trip latency against an
// in-process 3-replica transaction-log group (txlog::LogService over real
// loopback sockets), measured through txlog::RemoteClient — the same path
// memorydb-server's durability gate uses.
//
//   rpc_append_latency [ops] [pipeline_depth] [payload_bytes]
//
// Two modes over the same group:
//   single    — `ops` sequential AppendSync calls; each RTT spans submit to
//               majority-quorum commit ack.
//   pipelined — a sliding window of `pipeline_depth` concurrent async
//               Appends (distinct request ids, so the daemon's dedup table
//               is exercised but never collapses them); per-append latency
//               is issue-to-ack, throughput benefits from request-id
//               multiplexing on one connection.
//
// Emits BENCH_rpc.json with p50/p99 per mode plus the client-side rpc_rtt_us
// histogram scraped from the shared registry for cross-checking.

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench_support/envelope.h"
#include "bench_support/metrics_json.h"
#include "common/histogram.h"
#include "common/metrics.h"
#include "rpc/loop.h"
#include "txlog/remote_client.h"
#include "txlog/service.h"

namespace memdb::bench {
namespace {

uint64_t NowUs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

struct Group {
  std::vector<std::unique_ptr<txlog::LogService>> services;
  std::vector<std::string> endpoints;

  bool Start(size_t n) {
    for (size_t i = 0; i < n; ++i) {
      txlog::LogService::Options opt;
      opt.node_id = i + 1;
      opt.listen_port = 0;
      opt.fsync = false;  // memory-only replicas; quorum still required
      opt.heartbeat_ms = 20;
      opt.election_min_ms = 50;
      opt.election_max_ms = 120;
      opt.raft_rpc_timeout_ms = 100;
      services.push_back(std::make_unique<txlog::LogService>(opt));
      if (!services.back()->Start().ok()) return false;
    }
    std::vector<std::pair<uint64_t, std::string>> membership;
    for (size_t i = 0; i < n; ++i) {
      endpoints.push_back("127.0.0.1:" + std::to_string(services[i]->port()));
      membership.emplace_back(i + 1, endpoints.back());
    }
    for (auto& s : services) s->SetPeers(membership);
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(5);
    while (std::chrono::steady_clock::now() < deadline) {
      for (auto& s : services) {
        if (s->IsLeader()) return true;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    return false;
  }

  void Stop() {
    for (auto& s : services) s->Stop();
  }
};

txlog::LogRecord MakeRecord(const std::string& payload) {
  txlog::LogRecord rec;
  rec.type = txlog::RecordType::kData;
  rec.payload = payload;
  return rec;
}

int RunSingle(txlog::RemoteClient& client, int ops,
              const std::string& payload, Histogram* lat) {
  for (int i = 0; i < ops; ++i) {
    uint64_t index = 0;
    const uint64_t t0 = NowUs();
    const Status s =
        client.AppendSync(txlog::wire::kUnconditional, MakeRecord(payload),
                          &index);
    if (!s.ok()) {
      std::fprintf(stderr, "append %d failed: %s\n", i, s.ToString().c_str());
      return 1;
    }
    lat->Record(NowUs() - t0);
  }
  return 0;
}

// Sliding window of `depth` concurrent Appends; each completion launches the
// next pending append from the client's loop thread.
int RunPipelined(txlog::RemoteClient& client, int ops, int depth,
                 const std::string& payload, Histogram* lat) {
  std::mutex mu;
  std::condition_variable cv;
  int issued = 0;
  int done = 0;
  int failed = 0;
  std::vector<uint64_t> start_us(static_cast<size_t>(ops), 0);

  std::function<void()> launch_one;
  launch_one = [&] {
    int id = -1;
    {
      std::lock_guard<std::mutex> lock(mu);
      if (issued >= ops) return;
      id = issued++;
      start_us[static_cast<size_t>(id)] = NowUs();
    }
    client.Append(
        txlog::wire::kUnconditional, MakeRecord(payload),
        [&, id](const Status& s, uint64_t) {
          const uint64_t rtt = NowUs() - start_us[static_cast<size_t>(id)];
          // Refill the window BEFORE accounting this completion: once the
          // final ++done is visible the waiter may return and destroy these
          // locals, so nothing may touch them after that point.
          launch_one();
          {
            std::lock_guard<std::mutex> lock(mu);
            if (s.ok()) {
              lat->Record(rtt);
            } else {
              ++failed;
            }
            ++done;
          }
          cv.notify_all();
        });
  };
  for (int i = 0; i < depth && i < ops; ++i) launch_one();

  std::unique_lock<std::mutex> lock(mu);
  cv.wait(lock, [&] { return done == ops; });
  if (failed != 0) {
    std::fprintf(stderr, "%d pipelined appends failed\n", failed);
    return 1;
  }
  return 0;
}

int Run(int ops, int depth, int payload_bytes) {
  std::printf("rpc_append_latency: 3-replica log group, ops=%d depth=%d "
              "payload=%dB\n",
              ops, depth, payload_bytes);
  Group group;
  if (!group.Start(3)) {
    std::fprintf(stderr, "log group failed to start / elect a leader\n");
    return 1;
  }

  MetricsRegistry registry;
  rpc::LoopThread loop;
  if (!loop.Start().ok()) {
    std::fprintf(stderr, "client loop failed to start\n");
    return 1;
  }
  txlog::RemoteClient::Options copt;
  copt.writer_id = 1;
  copt.rpc_timeout_ms = 1000;
  auto client = std::make_unique<txlog::RemoteClient>(&loop, group.endpoints,
                                                      copt, &registry);
  const std::string payload(static_cast<size_t>(payload_bytes), 'x');

  // Warm up the leader hint so neither mode pays redirect hops in-measure.
  uint64_t warm_index = 0;
  (void)client->AppendSync(txlog::wire::kUnconditional, MakeRecord(payload),
                           &warm_index);

  Histogram single_lat;
  const uint64_t single_t0 = NowUs();
  int rc = RunSingle(*client, ops, payload, &single_lat);
  const double single_s =
      static_cast<double>(NowUs() - single_t0) / 1e6;

  Histogram pipe_lat;
  double pipe_s = 0;
  if (rc == 0) {
    const uint64_t pipe_t0 = NowUs();
    rc = RunPipelined(*client, ops, depth, payload, &pipe_lat);
    pipe_s = static_cast<double>(NowUs() - pipe_t0) / 1e6;
  }

  const auto report = [&](const char* mode, const Histogram& h, double secs) {
    std::printf("  %-9s p50=%lluus p99=%lluus  %.0f appends/s\n", mode,
                static_cast<unsigned long long>(h.Percentile(0.50)),
                static_cast<unsigned long long>(h.Percentile(0.99)),
                secs > 0 ? static_cast<double>(h.count()) / secs : 0);
  };
  if (rc == 0) {
    report("single", single_lat, single_s);
    report("pipelined", pipe_lat, pipe_s);
  }

  std::string json = "{";
  json += BenchEnvelopeJson("rpc_append_latency",
                            {{"ops", std::to_string(ops)},
                             {"pipeline_depth", std::to_string(depth)},
                             {"payload_bytes", std::to_string(payload_bytes)}});
  json += ",\"ops\":" + std::to_string(ops);
  json += ",\"pipeline_depth\":" + std::to_string(depth);
  json += ",\"payload_bytes\":" + std::to_string(payload_bytes);
  json += ",\"single\":{";
  json += "\"p50_us\":" + std::to_string(single_lat.Percentile(0.50));
  json += ",\"p99_us\":" + std::to_string(single_lat.Percentile(0.99));
  json += ",\"appends_per_sec\":" +
          std::to_string(single_s > 0
                             ? static_cast<double>(single_lat.count()) /
                                   single_s
                             : 0);
  json += "},\"pipelined\":{";
  json += "\"p50_us\":" + std::to_string(pipe_lat.Percentile(0.50));
  json += ",\"p99_us\":" + std::to_string(pipe_lat.Percentile(0.99));
  json += ",\"appends_per_sec\":" +
          std::to_string(pipe_s > 0
                             ? static_cast<double>(pipe_lat.count()) / pipe_s
                             : 0);
  json += "},\"client\":" +
          MetricsJson(registry, {"rpc_rtt_us"},
                      {"txlog_retries_total", "txlog_redirects_total"});
  json += "}\n";
  std::FILE* f = std::fopen("BENCH_rpc.json", "w");
  if (f != nullptr) {
    std::fputs(json.c_str(), f);
    std::fclose(f);
    std::printf("  wrote BENCH_rpc.json\n");
  }

  client->Shutdown();
  client.reset();
  loop.Stop();
  group.Stop();
  return rc;
}

}  // namespace
}  // namespace memdb::bench

int main(int argc, char** argv) {
  const int ops = argc > 1 ? std::atoi(argv[1]) : 500;
  const int depth = argc > 2 ? std::atoi(argv[2]) : 16;
  const int payload = argc > 3 ? std::atoi(argv[3]) : 128;
  if (ops < 1 || depth < 1 || payload < 0) {
    std::fprintf(stderr,
                 "usage: rpc_append_latency [ops] [pipeline_depth] "
                 "[payload_bytes]\n");
    return 2;
  }
  return memdb::bench::Run(ops, depth, payload);
}
