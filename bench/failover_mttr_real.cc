// failover_mttr_real: automatic-failover MTTR over the real machinery
// (§4.1/§4.2) — in-process 3-replica txlog group on loopback sockets, a
// fenced-lease primary RespServer, and a log-fed replica running the
// FailoverManager. For each replay-backlog length N:
//
//   1. push N acked writes through the primary — a committed tail of N
//      entries the standby has never seen;
//   2. start the replica cold and immediately stop the primary (renewals
//      cease — the lease just expires, the same observable as a crash), so
//      the replica's unreplayed backlog at takeover is the full tail;
//   3. measure kill -> first acked write on the replica (client-observed
//      MTTR), then scrape the replica's failover_last_{detect,lease,
//      replay,promote}_ms gauges for the per-stage breakdown.
//
// The paper's point: detect + lease are constant (lease expiry + one
// arbitrated AcquireLease), replay scales with the backlog, and promote is
// a constant gate restart — so bounded lag keeps MTTR bounded. On loopback
// the catch-up runs concurrently with the detection window, so MTTR stays
// pinned near the lease TTL until the tail takes longer to replay than the
// lease takes to expire (~50k entries here). The 200k point exercises a
// replay much longer than the lease TTL: it passes only because renewals
// run on a fixed cadence (timer-armed, not response-chained) and the server
// applies the backlog in bounded chunks, so lease upkeep stays live through
// the whole promotion instead of starving and self-fencing. Note the
// per-stage gauges
// attribute only post-lease-win time; the lease-TTL dead time before the
// takeover attempt is the MTTR-minus-sum remainder.
//
//   failover_mttr_real [backlogs_csv]
//
// Emits BENCH_failover.json — the standing real-binary series that
// supersedes the simulation-only ablate_failover_durability numbers.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_support/envelope.h"
#include "common/metrics.h"
#include "engine/engine.h"
#include "net/server.h"
#include "resp/resp.h"
#include "txlog/service.h"

namespace memdb::bench {
namespace {

uint64_t NowMs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void SleepMs(uint64_t ms) {
  std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

struct Group {
  std::vector<std::unique_ptr<txlog::LogService>> services;
  std::vector<std::string> endpoints;

  bool Start(size_t n) {
    for (size_t i = 0; i < n; ++i) {
      txlog::LogService::Options opt;
      opt.node_id = i + 1;
      opt.listen_port = 0;
      opt.fsync = false;
      opt.heartbeat_ms = 20;
      opt.election_min_ms = 50;
      opt.election_max_ms = 120;
      opt.raft_rpc_timeout_ms = 100;
      services.push_back(std::make_unique<txlog::LogService>(opt));
      if (!services.back()->Start().ok()) return false;
    }
    std::vector<std::pair<uint64_t, std::string>> membership;
    for (size_t i = 0; i < n; ++i) {
      endpoints.push_back("127.0.0.1:" + std::to_string(services[i]->port()));
      membership.emplace_back(i + 1, endpoints.back());
    }
    for (auto& s : services) s->SetPeers(membership);
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(5);
    while (std::chrono::steady_clock::now() < deadline) {
      for (auto& s : services) {
        if (s->IsLeader()) return true;
      }
      SleepMs(5);
    }
    return false;
  }

  void Stop() {
    for (auto& s : services) s->Stop();
  }
};

// Minimal blocking RESP client.
class Client {
 public:
  explicit Client(uint16_t port, int recv_timeout_s = 10) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    struct sockaddr_in sa;
    std::memset(&sa, 0, sizeof(sa));
    sa.sin_family = AF_INET;
    sa.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &sa.sin_addr);
    if (::connect(fd_, reinterpret_cast<struct sockaddr*>(&sa), sizeof(sa)) !=
        0) {
      ::close(fd_);
      fd_ = -1;
      return;
    }
    struct timeval tv{recv_timeout_s, 0};
    ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    const int one = 1;
    ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  }
  ~Client() {
    if (fd_ >= 0) ::close(fd_);
  }
  bool ok() const { return fd_ >= 0; }

  bool Send(const std::vector<std::string>& argv) {
    const std::string bytes = resp::EncodeCommand(argv);
    size_t off = 0;
    while (off < bytes.size()) {
      const ssize_t n = ::send(fd_, bytes.data() + off, bytes.size() - off,
                               MSG_NOSIGNAL);
      if (n <= 0) return false;
      off += static_cast<size_t>(n);
    }
    return true;
  }

  bool Read(resp::Value* out) {
    char buf[64 * 1024];
    for (;;) {
      const resp::DecodeStatus st = dec_.Decode(out);
      if (st == resp::DecodeStatus::kOk) return true;
      if (st == resp::DecodeStatus::kError) return false;
      const ssize_t r = ::recv(fd_, buf, sizeof(buf), 0);
      if (r <= 0) return false;
      dec_.Feed(Slice(buf, static_cast<size_t>(r)));
    }
  }

  bool RoundTrip(const std::vector<std::string>& argv, resp::Value* out) {
    return Send(argv) && Read(out);
  }

 private:
  int fd_ = -1;
  resp::Decoder dec_;
};

// Pipelines `n` SETs (window 64) through one connection; true when all ack.
bool FillWrites(uint16_t port, int base, int n) {
  Client c(port, 30);
  if (!c.ok()) return false;
  int sent = 0, acked = 0;
  while (acked < n) {
    while (sent < n && sent - acked < 64) {
      if (!c.Send({"SET", "bk" + std::to_string(base + sent),
                   std::string(64, 'v')})) {
        return false;
      }
      ++sent;
    }
    resp::Value v;
    if (!c.Read(&v) || v.type != resp::Type::kSimpleString) return false;
    ++acked;
  }
  return true;
}

double Metric(uint16_t port, const std::string& series) {
  Client c(port);
  resp::Value v;
  if (!c.ok() || !c.RoundTrip({"METRICS"}, &v)) return 0;
  double out = 0;
  MetricsRegistry::ParseSeries(v.str, series, &out);
  return out;
}

net::ServerConfig NodeConfig(const std::vector<std::string>& endpoints,
                             bool replica, uint64_t writer_id) {
  net::ServerConfig cfg;
  cfg.port = 0;
  cfg.loop_timeout_ms = 5;
  if (replica) {
    cfg.replica_of_log = endpoints;
    cfg.replica_poll_wait_ms = 20;
  } else {
    cfg.txlog_endpoints = endpoints;
  }
  cfg.txlog_writer_id = writer_id;
  cfg.failover = true;
  cfg.lease_duration_ms = 400;
  cfg.lease_renew_ms = 100;
  cfg.failover_probe_ms = 80;
  cfg.failover_grace_ms = 150;
  return cfg;
}

struct Point {
  int backlog = 0;
  uint64_t mttr_ms = 0;
  double detect_ms = 0;
  double lease_ms = 0;
  double replay_ms = 0;
  double promote_ms = 0;
  double duration_ms = 0;
};

bool RunPoint(int backlog, Point* out) {
  Group group;
  if (!group.Start(3)) return false;

  engine::Engine primary_engine;
  auto primary = std::make_unique<net::RespServer>(
      &primary_engine, NodeConfig(group.endpoints, false, 1));
  if (!primary->Start().ok()) return false;

  // Commit the tail the standby will have to replay. Going through the
  // primary (rather than raw log appends) keeps the entries honest: real
  // effect batches produced by the real write path.
  if (!FillWrites(primary->port(), 0, 50 + backlog)) return false;

  // Cold standby: start the replica and stop the primary immediately, so
  // the replica's unreplayed backlog at lease win is (approximately) the
  // whole committed tail. Detection overlaps the initial catch-up — the
  // same overlap a genuinely lagging replica would see.
  engine::Engine replica_engine;
  net::RespServer replica(&replica_engine,
                          NodeConfig(group.endpoints, true, 2));
  if (!replica.Start().ok()) return false;

  const uint64_t t_kill = NowMs();
  primary->Stop();
  primary.reset();

  // Client-observed MTTR: first acked write against the replica.
  uint64_t t_first = 0;
  const uint64_t deadline = NowMs() + 60000;
  while (t_first == 0) {
    if (NowMs() >= deadline) return false;
    Client c(replica.port(), 2);
    resp::Value v;
    if (c.ok() && c.RoundTrip({"SET", "mttr-probe", "x"}, &v) &&
        v.type == resp::Type::kSimpleString) {
      t_first = NowMs();
      break;
    }
    SleepMs(5);
  }

  out->backlog = backlog;
  out->mttr_ms = t_first - t_kill;
  out->detect_ms = Metric(replica.port(), "failover_last_detect_ms");
  out->lease_ms = Metric(replica.port(), "failover_last_lease_ms");
  out->replay_ms = Metric(replica.port(), "failover_last_replay_ms");
  out->promote_ms = Metric(replica.port(), "failover_last_promote_ms");
  out->duration_ms = Metric(replica.port(), "failover_last_duration_ms");

  replica.Stop();
  group.Stop();
  return true;
}

int Run(int argc, char** argv) {
  std::vector<int> backlogs = {0, 500, 2000, 8000, 50000, 200000};
  std::string cfg = "0,500,2000,8000,50000,200000";
  if (argc > 1) {
    backlogs.clear();
    cfg = argv[1];
    std::string cur;
    for (const char ch : cfg + ",") {
      if (ch == ',') {
        if (!cur.empty()) backlogs.push_back(std::atoi(cur.c_str()));
        cur.clear();
      } else {
        cur.push_back(ch);
      }
    }
  }

  std::printf("failover_mttr_real: automatic failover MTTR vs replay "
              "backlog (lease 400ms, renew 100ms)\n");
  std::printf("%10s %9s %10s %9s %10s %11s\n", "backlog", "mttr_ms",
              "detect_ms", "lease_ms", "replay_ms", "promote_ms");
  std::vector<Point> points;
  for (const int b : backlogs) {
    Point p;
    if (!RunPoint(b, &p)) {
      std::fprintf(stderr, "  point backlog=%d failed\n", b);
      return 1;
    }
    std::printf("%10d %9llu %10.0f %9.0f %10.0f %11.0f\n", p.backlog,
                static_cast<unsigned long long>(p.mttr_ms), p.detect_ms,
                p.lease_ms, p.replay_ms, p.promote_ms);
    points.push_back(p);
  }

  std::string json = "{";
  json += BenchEnvelopeJson("failover_mttr_real",
                            {{"backlogs", QuoteJson(cfg)},
                             {"lease_duration_ms", "400"},
                             {"lease_renew_ms", "100"}});
  json += ",\"mttr_vs_backlog\":[";
  for (size_t i = 0; i < points.size(); ++i) {
    const Point& p = points[i];
    if (i > 0) json += ",";
    json += "{\"backlog\":" + std::to_string(p.backlog);
    json += ",\"mttr_ms\":" + std::to_string(p.mttr_ms);
    json += ",\"detect_ms\":" + std::to_string(p.detect_ms);
    json += ",\"lease_ms\":" + std::to_string(p.lease_ms);
    json += ",\"replay_ms\":" + std::to_string(p.replay_ms);
    json += ",\"promote_ms\":" + std::to_string(p.promote_ms);
    json += ",\"duration_ms\":" + std::to_string(p.duration_ms) + "}";
  }
  json += "]}\n";

  std::FILE* f = std::fopen("BENCH_failover.json", "w");
  if (f != nullptr) {
    std::fputs(json.c_str(), f);
    std::fclose(f);
    std::printf("  wrote BENCH_failover.json\n");
  }
  return 0;
}

}  // namespace
}  // namespace memdb::bench

int main(int argc, char** argv) { return memdb::bench::Run(argc, argv); }
