// Figure 6 — client-perceived latency and throughput during Redis BGSave in
// a memory-constrained setup (§6.2.1).
//
// Setup mirrors the paper: a 2-vCPU / 16 GB host, maxmemory 12 GB, ~10 GB
// resident dataset (20M x 500B modeled synthetically), 100 GET clients plus
// 20 SET clients. BGSave starts a few seconds in.
//
// Expected shape (paper): at BGSave start, a p100 latency spike from the
// fork page-table clone (~12 ms/GB); no initial throughput impact; then
// copy-on-write from the write workload grows resident memory past DRAM,
// swap sets in, tail latency climbs beyond a second, and throughput drops
// toward zero — an effective availability outage.

#include <cstdio>

#include "bench_support/driver.h"
#include "bench_support/fixtures.h"
#include "bench_support/instances.h"

namespace memdb::bench {
namespace {

constexpr uint64_t kGiB = 1ULL << 30;

void Run() {
  const InstanceModel& m = R7g("r7g.large");  // 2 vCPU / 16 GB
  RedisFixture::Params params;
  params.replicas = 0;
  params.base_config.synthetic_dataset_bytes = 12 * kGiB;
  params.base_config.ram_bytes = 16 * kGiB;
  params.base_config.maxmemory_bytes = 12 * kGiB;
  params.base_config.bgsave_bytes_per_sec = 300ULL << 20;
  RedisFixture f = RedisFixture::Create(m, params);
  f.Prefill(20'000, 500);

  LoadDriver::Options read_opts;
  read_opts.connections = 100;
  read_opts.set_ratio = 0.0;
  read_opts.value_bytes = 500;
  read_opts.key_space = 20'000;
  LoadDriver readers(f.sim.get(), f.sim->AddHost(0), f.primary->id(),
                     read_opts);
  LoadDriver::Options write_opts = read_opts;
  write_opts.connections = 20;
  write_opts.set_ratio = 1.0;
  write_opts.seed = 99;
  LoadDriver writers(f.sim.get(), f.sim->AddHost(0), f.primary->id(),
                     write_opts);
  readers.Start();
  writers.Start();

  std::printf(
      "%6s %12s %10s %10s %10s %8s %8s %s\n", "t[s]", "thruput[op/s]",
      "avg[ms]", "p100[ms]", "resident", "cow[GB]", "swap[GB]", "phase");
  const int kBgsaveStartSec = 5;
  const int kTotalSec = 50;
  for (int sec = 1; sec <= kTotalSec; ++sec) {
    if (sec == kBgsaveStartSec) f.primary->StartBgSave();
    readers.ResetStats();
    writers.ResetStats();
    f.sim->RunFor(1 * sim::kSec);
    Histogram all;
    all.Merge(readers.read_latency());
    all.Merge(writers.write_latency());
    const double throughput = readers.Throughput() + writers.Throughput();
    const char* phase = !f.primary->bgsave_running()
                            ? (sec < kBgsaveStartSec ? "before" : "after")
                            : (f.primary->swap_bytes() > 0 ? "BGSAVE+swap"
                                                           : "BGSAVE");
    std::printf("%6d %12.0f %10.2f %10.2f %9.1fG %8.2f %8.2f %s\n", sec,
                throughput, all.Mean() / 1000.0,
                static_cast<double>(all.max()) / 1000.0,
                static_cast<double>(f.primary->resident_bytes()) /
                    static_cast<double>(kGiB),
                static_cast<double>(f.primary->cow_bytes()) /
                    static_cast<double>(kGiB),
                static_cast<double>(f.primary->swap_bytes()) /
                    static_cast<double>(kGiB),
                phase);
    std::fflush(stdout);
    if (sec > kBgsaveStartSec && !f.primary->bgsave_running() &&
        f.primary->stats().bgsaves_completed > 0 && sec > kBgsaveStartSec + 3) {
      std::printf("BGSave completed; COW released.\n");
      break;
    }
  }
}

}  // namespace
}  // namespace memdb::bench

int main() {
  std::printf(
      "Figure 6: Redis BGSave under memory pressure (2 vCPU, 16 GB RAM, "
      "12 GB maxmemory, ~12 GB resident data, 100 GET + 20 SET clients)\n");
  memdb::bench::Run();
  return 0;
}
