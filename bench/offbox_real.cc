// offbox_real: the off-box snapshot/restore pipeline (§4.2.2) over real
// daemons' machinery — in-process 3-replica txlog group (real loopback
// sockets, fsync off), replication::OffboxRunner cycles against it, and
// peer-less recovery timed against log length:
//
//   1. restore-time vs log length — for each tail length N: append N
//      effect-batch records, time (a) a cold replay from index 1 (no
//      snapshot: what recovery costs without §4.2.2), (b) one off-box
//      snapshot cycle, (c) a restore from that snapshot (what recovery
//      costs with it). The paper's point is (c) stays flat while (a)
//      grows with the log.
//   2. snapshot-while-serving — a RespServer primary serving SET
//      round-trips while an off-box cycle runs; client p50/p99 with and
//      without the concurrent cycle. Off-box means the serving node does
//      no snapshot work, so the two distributions should coincide (§4.2.2
//      vs the BGSave fork stalls of fig6).
//
//   offbox_real [tail_lengths_csv] [serve_seconds]
//
// Emits BENCH_offbox.json.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench_support/envelope.h"
#include "common/coding.h"
#include "common/histogram.h"
#include "common/metrics.h"
#include "engine/engine.h"
#include "net/server.h"
#include "replication/offbox_runner.h"
#include "replication/recovery.h"
#include "replication/snapshot_store.h"
#include "resp/resp.h"
#include "rpc/loop.h"
#include "storage/fs_object_store.h"
#include "txlog/remote_client.h"
#include "txlog/service.h"

namespace memdb::bench {
namespace {

uint64_t NowUs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

struct TempDir {
  TempDir() {
    char tmpl[] = "/tmp/memdb_bench_offbox_XXXXXX";
    char* p = ::mkdtemp(tmpl);
    path = (p != nullptr) ? p : "/tmp";
  }
  ~TempDir() {
    const std::string cmd = "rm -rf '" + path + "'";
    [[maybe_unused]] const int rc = std::system(cmd.c_str());
  }
  std::string path;
};

struct Group {
  std::vector<std::unique_ptr<txlog::LogService>> services;
  std::vector<std::string> endpoints;

  bool Start(size_t n) {
    for (size_t i = 0; i < n; ++i) {
      txlog::LogService::Options opt;
      opt.node_id = i + 1;
      opt.listen_port = 0;
      opt.fsync = false;
      opt.heartbeat_ms = 20;
      opt.election_min_ms = 50;
      opt.election_max_ms = 120;
      opt.raft_rpc_timeout_ms = 100;
      services.push_back(std::make_unique<txlog::LogService>(opt));
      if (!services.back()->Start().ok()) return false;
    }
    std::vector<std::pair<uint64_t, std::string>> membership;
    for (size_t i = 0; i < n; ++i) {
      endpoints.push_back("127.0.0.1:" + std::to_string(services[i]->port()));
      membership.emplace_back(i + 1, endpoints.back());
    }
    for (auto& s : services) s->SetPeers(membership);
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(5);
    while (std::chrono::steady_clock::now() < deadline) {
      for (auto& s : services) {
        if (s->IsLeader()) return true;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    return false;
  }

  void Stop() {
    for (auto& s : services) s->Stop();
  }
};

// One SET effect batch in the wire format log consumers replay.
std::string EffectBatch(int i) {
  std::string out;
  PutLengthPrefixed(&out, "7.0.7");
  PutVarint64(&out, 3);
  PutLengthPrefixed(&out, "SET");
  PutLengthPrefixed(&out, "key" + std::to_string(i));
  PutLengthPrefixed(&out, std::string(64, 'v'));
  return out;
}

// Pipelined append of `n` effect batches (window of 64) — fills the log
// far faster than sequential AppendSync without changing its contents.
bool FillLog(txlog::RemoteClient* client, int n) {
  std::atomic<int> done{0};
  std::atomic<int> failed{0};
  std::atomic<int> issued{0};
  std::mutex mu;
  std::condition_variable cv;
  std::function<void()> launch = [&] {
    const int id = issued.fetch_add(1);
    if (id >= n) return;
    txlog::LogRecord rec;
    rec.type = txlog::RecordType::kData;
    rec.payload = EffectBatch(id);
    client->Append(txlog::wire::kUnconditional, std::move(rec),
                   [&](const Status& s, uint64_t) {
                     if (!s.ok()) failed.fetch_add(1);
                     launch();
                     done.fetch_add(1);
                     cv.notify_all();
                   });
  };
  for (int i = 0; i < 64 && i < n; ++i) launch();
  std::unique_lock<std::mutex> lock(mu);
  cv.wait(lock, [&] { return done.load() >= n; });
  return failed.load() == 0;
}

struct RestorePoint {
  int tail_length = 0;
  double cold_replay_ms = 0;      // no snapshot: replay the whole log
  double snapshot_cycle_ms = 0;   // one off-box cycle (restore+replay+upload)
  double restore_ms = 0;          // snapshot + (empty) tail
  size_t snapshot_bytes = 0;
};

bool RunRestoreSeries(const std::vector<int>& tails,
                      std::vector<RestorePoint>* out) {
  for (const int n : tails) {
    Group group;
    if (!group.Start(3)) return false;
    TempDir store_dir;

    MetricsRegistry registry;
    rpc::LoopThread loop;
    if (!loop.Start().ok()) return false;
    txlog::RemoteClient::Options copt;
    copt.writer_id = 1;
    copt.rpc_timeout_ms = 1000;
    auto client = std::make_unique<txlog::RemoteClient>(&loop, group.endpoints,
                                                        copt, &registry);
    if (!FillLog(client.get(), n)) return false;

    RestorePoint pt;
    pt.tail_length = n;

    {
      engine::Engine eng;
      replication::RestoreResult res;
      const uint64_t t0 = NowUs();
      const Status s = ReplayLogTail(client.get(), &eng, &res, 0);
      pt.cold_replay_ms = static_cast<double>(NowUs() - t0) / 1e3;
      if (!s.ok()) {
        std::fprintf(stderr, "cold replay failed: %s\n", s.ToString().c_str());
        return false;
      }
    }

    replication::OffboxRunner::Options opt;
    opt.endpoints = group.endpoints;
    opt.store_dir = store_dir.path;
    opt.fsync = false;
    opt.issue_trim = false;  // keep the log intact for fair timing
    MetricsRegistry offbox_metrics;
    replication::OffboxRunner runner(opt, &offbox_metrics);
    if (!runner.Start().ok()) return false;
    replication::OffboxRunner::CycleResult cycle;
    {
      const uint64_t t0 = NowUs();
      const Status s = runner.RunCycle(&cycle);
      pt.snapshot_cycle_ms = static_cast<double>(NowUs() - t0) / 1e3;
      if (!s.ok()) {
        std::fprintf(stderr, "cycle failed: %s\n", s.ToString().c_str());
        return false;
      }
    }
    pt.snapshot_bytes = cycle.snapshot_bytes;
    runner.Stop();

    {
      storage::FsObjectStore fs(store_dir.path, {.fsync = false});
      if (!fs.Open().ok()) return false;
      replication::SnapshotStore snaps(&fs, opt.shard_id);
      engine::Engine eng;
      replication::RestoreResult res;
      const uint64_t t0 = NowUs();
      Status s = RestoreFromStore(&snaps, &eng, &res);
      if (s.ok()) s = ReplayLogTail(client.get(), &eng, &res, 0);
      pt.restore_ms = static_cast<double>(NowUs() - t0) / 1e3;
      if (!s.ok()) {
        std::fprintf(stderr, "restore failed: %s\n", s.ToString().c_str());
        return false;
      }
    }

    std::printf("  tail=%-6d cold_replay=%.1fms cycle=%.1fms "
                "restore=%.1fms snapshot=%zuB\n",
                n, pt.cold_replay_ms, pt.snapshot_cycle_ms, pt.restore_ms,
                pt.snapshot_bytes);
    out->push_back(pt);

    client->Shutdown();
    client.reset();
    loop.Stop();
    group.Stop();
  }
  return true;
}

// --- snapshot-while-serving ------------------------------------------------

int ConnectTo(uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  struct sockaddr_in sa;
  std::memset(&sa, 0, sizeof(sa));
  sa.sin_family = AF_INET;
  sa.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &sa.sin_addr);
  if (::connect(fd, reinterpret_cast<struct sockaddr*>(&sa), sizeof(sa)) !=
      0) {
    ::close(fd);
    return -1;
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

// SET round-trips against `port` until *stop; each RTT lands in the
// histogram current at completion time (swapped by the caller).
void ServeLoop(uint16_t port, std::atomic<bool>* stop,
               std::atomic<Histogram*>* sink, std::atomic<int>* errors) {
  const int fd = ConnectTo(port);
  if (fd < 0) {
    errors->fetch_add(1);
    return;
  }
  resp::Decoder dec;
  char buf[4096];
  int i = 0;
  while (!stop->load(std::memory_order_relaxed)) {
    const std::string wire = resp::EncodeCommand(
        {"SET", "serve" + std::to_string(i % 1000), std::string(64, 'x')});
    ++i;
    const uint64_t t0 = NowUs();
    if (::send(fd, wire.data(), wire.size(), MSG_NOSIGNAL) !=
        static_cast<ssize_t>(wire.size())) {
      errors->fetch_add(1);
      break;
    }
    resp::Value v;
    for (;;) {
      const resp::DecodeStatus st = dec.Decode(&v);
      if (st == resp::DecodeStatus::kOk) break;
      if (st == resp::DecodeStatus::kError) {
        errors->fetch_add(1);
        ::close(fd);
        return;
      }
      const ssize_t r = ::recv(fd, buf, sizeof(buf), 0);
      if (r <= 0) {
        errors->fetch_add(1);
        ::close(fd);
        return;
      }
      dec.Feed(Slice(buf, static_cast<size_t>(r)));
    }
    sink->load(std::memory_order_acquire)->Record(NowUs() - t0);
  }
  ::close(fd);
}

struct ServeResult {
  Histogram baseline;        // cycle idle
  Histogram during_cycle;    // off-box cycle in flight
  double cycle_ms = 0;
  bool ok = false;
};

bool RunServeWhileSnapshotting(int seconds, ServeResult* out) {
  Group group;
  if (!group.Start(3)) return false;
  TempDir store_dir;

  engine::Engine engine;
  net::ServerConfig cfg;
  cfg.port = 0;
  cfg.loop_timeout_ms = 10;
  cfg.txlog_endpoints = group.endpoints;
  cfg.txlog_checksum_every = 64;
  net::RespServer server(&engine, cfg);
  if (!server.Start().ok()) return false;

  std::atomic<bool> stop{false};
  std::atomic<int> errors{0};
  std::atomic<Histogram*> sink{&out->baseline};
  std::thread client(ServeLoop, server.port(), &stop, &sink, &errors);

  // Half the window as baseline, then run the off-box cycle mid-traffic.
  std::this_thread::sleep_for(std::chrono::milliseconds(seconds * 500));

  replication::OffboxRunner::Options opt;
  opt.endpoints = group.endpoints;
  opt.store_dir = store_dir.path;
  opt.fsync = false;
  opt.issue_trim = false;
  MetricsRegistry offbox_metrics;
  replication::OffboxRunner runner(opt, &offbox_metrics);
  if (!runner.Start().ok()) {
    stop.store(true);
    client.join();
    return false;
  }
  sink.store(&out->during_cycle, std::memory_order_release);
  replication::OffboxRunner::CycleResult cycle;
  const uint64_t t0 = NowUs();
  const Status s = runner.RunCycle(&cycle);
  out->cycle_ms = static_cast<double>(NowUs() - t0) / 1e3;
  sink.store(&out->baseline, std::memory_order_release);
  runner.Stop();

  // Let the remaining window drain into the baseline again.
  std::this_thread::sleep_for(std::chrono::milliseconds(seconds * 500));
  stop.store(true);
  client.join();
  server.Stop();
  group.Stop();

  out->ok = s.ok() && errors.load() == 0 &&
            out->during_cycle.count() > 0;
  if (!s.ok()) {
    std::fprintf(stderr, "serve-cycle failed: %s\n", s.ToString().c_str());
  }
  return out->ok;
}

int Run(const std::vector<int>& tails, int serve_seconds) {
  std::printf("offbox_real: restore time vs log length (3-replica group, "
              "fsync off)\n");
  std::vector<RestorePoint> points;
  if (!RunRestoreSeries(tails, &points)) return 1;

  std::printf("offbox_real: SET p99 while an off-box cycle runs (%ds "
              "window)\n", serve_seconds);
  ServeResult serve;
  if (!RunServeWhileSnapshotting(serve_seconds, &serve)) return 1;
  std::printf("  baseline  p50=%lluus p99=%lluus (%llu ops)\n",
              static_cast<unsigned long long>(serve.baseline.Percentile(0.5)),
              static_cast<unsigned long long>(serve.baseline.Percentile(0.99)),
              static_cast<unsigned long long>(serve.baseline.count()));
  std::printf("  in-cycle  p50=%lluus p99=%lluus (%llu ops, cycle=%.1fms)\n",
              static_cast<unsigned long long>(
                  serve.during_cycle.Percentile(0.5)),
              static_cast<unsigned long long>(
                  serve.during_cycle.Percentile(0.99)),
              static_cast<unsigned long long>(serve.during_cycle.count()),
              serve.cycle_ms);

  std::string tails_cfg = "[";
  for (size_t i = 0; i < tails.size(); ++i) {
    if (i > 0) tails_cfg += ",";
    tails_cfg += std::to_string(tails[i]);
  }
  tails_cfg += "]";
  std::string json = "{";
  json += BenchEnvelopeJson(
      "offbox_real", {{"tails", tails_cfg},
                      {"serve_seconds", std::to_string(serve_seconds)}});
  json += ",\"restore_vs_log_length\":[";
  for (size_t i = 0; i < points.size(); ++i) {
    const RestorePoint& p = points[i];
    if (i > 0) json += ",";
    json += "{\"tail_length\":" + std::to_string(p.tail_length);
    json += ",\"cold_replay_ms\":" + std::to_string(p.cold_replay_ms);
    json += ",\"snapshot_cycle_ms\":" + std::to_string(p.snapshot_cycle_ms);
    json += ",\"restore_ms\":" + std::to_string(p.restore_ms);
    json += ",\"snapshot_bytes\":" + std::to_string(p.snapshot_bytes) + "}";
  }
  json += "],\"serve_while_snapshotting\":{";
  json += "\"baseline\":{\"p50_us\":" +
          std::to_string(serve.baseline.Percentile(0.5)) +
          ",\"p99_us\":" + std::to_string(serve.baseline.Percentile(0.99)) +
          ",\"ops\":" + std::to_string(serve.baseline.count()) + "}";
  json += ",\"during_cycle\":{\"p50_us\":" +
          std::to_string(serve.during_cycle.Percentile(0.5)) +
          ",\"p99_us\":" +
          std::to_string(serve.during_cycle.Percentile(0.99)) +
          ",\"ops\":" + std::to_string(serve.during_cycle.count()) + "}";
  json += ",\"cycle_ms\":" + std::to_string(serve.cycle_ms) + "}}\n";

  std::FILE* f = std::fopen("BENCH_offbox.json", "w");
  if (f != nullptr) {
    std::fputs(json.c_str(), f);
    std::fclose(f);
    std::printf("  wrote BENCH_offbox.json\n");
  }
  return 0;
}

}  // namespace
}  // namespace memdb::bench

int main(int argc, char** argv) {
  std::vector<int> tails = {500, 2000, 8000};
  if (argc > 1) {
    tails.clear();
    const std::string csv = argv[1];
    size_t start = 0;
    while (start < csv.size()) {
      const size_t comma = csv.find(',', start);
      const std::string tok =
          csv.substr(start, comma == std::string::npos ? std::string::npos
                                                       : comma - start);
      if (!tok.empty()) tails.push_back(std::atoi(tok.c_str()));
      if (comma == std::string::npos) break;
      start = comma + 1;
    }
    if (tails.empty()) tails = {500, 2000, 8000};
  }
  const int serve_seconds = argc > 2 ? std::atoi(argv[2]) : 4;
  return memdb::bench::Run(tails, serve_seconds);
}
