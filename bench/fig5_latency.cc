// Figure 5 — latency vs offered throughput on r7g.16xlarge (§6.1.2.2).
//
// Open-loop load at increasing offered rates; we report p50 and p99 for
// (a) read-only, (b) write-only, and (c) 80/20 mixed workloads. For MemoryDB
// the primary's own write_commit_latency_us histogram is printed alongside
// (srv columns) so the client-observed numbers can be cross-checked against
// the server-side commit path, and every MemoryDB point's node-side metrics
// are dumped to fig5_node_metrics.json.
//
// Expected shape (paper): reads — both sub-ms p50 and <2 ms p99;
// writes — Redis sub-ms p50 / up to 3 ms p99, MemoryDB ~3 ms p50 (every
// write is a multi-AZ commit) / up to 6 ms p99; mixed — both sub-ms p50,
// p99 up to 2 ms (Redis) vs 4 ms (MemoryDB).

#include <cstdio>
#include <string>
#include <vector>

#include "bench_support/driver.h"
#include "bench_support/fixtures.h"
#include "bench_support/instances.h"
#include "bench_support/metrics_json.h"

namespace memdb::bench {
namespace {

constexpr uint64_t kPrefillKeys = 50'000;
constexpr sim::Duration kWarmup = 200 * sim::kMs;
constexpr sim::Duration kMeasure = 500 * sim::kMs;

std::vector<std::string> g_json_rows;

struct Point {
  uint64_t offered;
  double p50_ms, p99_ms;
  double achieved;
  // Server-side commit latency (MemoryDB primary only; 0 when absent).
  double srv_p50_ms = 0, srv_p99_ms = 0;
};

template <typename Fixture>
Point MeasureAt(Fixture& f, sim::NodeId primary, uint64_t offered,
                double set_ratio, uint64_t seed,
                memorydb::Node* server = nullptr) {
  LoadDriver::Options opts;
  opts.set_ratio = set_ratio;
  opts.value_bytes = 100;
  opts.key_space = kPrefillKeys;
  opts.offered_ops_per_sec = offered;
  opts.seed = seed;
  LoadDriver driver(f.sim.get(), f.sim->AddHost(0), primary, opts);
  driver.Start();
  f.sim->RunFor(kWarmup);
  driver.ResetStats();
  // Scope the server-side histograms to the measurement window too.
  if (server != nullptr) server->metrics().ResetAll();
  f.sim->RunFor(kMeasure);
  driver.Stop();
  Histogram combined;
  combined.Merge(driver.read_latency());
  combined.Merge(driver.write_latency());
  Point p;
  p.offered = offered;
  p.p50_ms = static_cast<double>(combined.Percentile(0.50)) / 1000.0;
  p.p99_ms = static_cast<double>(combined.Percentile(0.99)) / 1000.0;
  p.achieved = driver.Throughput();
  if (server != nullptr) {
    const Histogram* h =
        server->metrics().FindHistogram("write_commit_latency_us");
    if (h != nullptr && h->count() > 0) {
      p.srv_p50_ms = static_cast<double>(h->Percentile(0.50)) / 1000.0;
      p.srv_p99_ms = static_cast<double>(h->Percentile(0.99)) / 1000.0;
    }
  }
  return p;
}

void RunPanel(const char* title, const char* slug, double set_ratio,
              const std::vector<uint64_t>& rates) {
  std::printf("\n%s\n", title);
  std::printf("%-12s | %10s %9s %9s | %10s %9s %9s %9s %9s\n", "offered",
              "redis[op/s]", "p50[ms]", "p99[ms]", "memdb[op/s]", "p50[ms]",
              "p99[ms]", "srv p50", "srv p99");
  const InstanceModel& m = R7g("r7g.16xlarge");
  for (uint64_t rate : rates) {
    RedisFixture rf = RedisFixture::Create(m, RedisFixture::Params{});
    rf.Prefill(kPrefillKeys, 100);
    Point redis = MeasureAt(rf, rf.primary->id(), rate, set_ratio, 11);

    MemDbFixture mf = MemDbFixture::Create(m, MemDbFixture::Params{});
    mf.Prefill(kPrefillKeys, 100);
    Point memdb =
        MeasureAt(mf, mf.primary->id(), rate, set_ratio, 12, mf.primary);

    std::printf(
        "%-12llu | %10.0f %9.2f %9.2f | %10.0f %9.2f %9.2f %9.2f %9.2f\n",
        static_cast<unsigned long long>(rate), redis.achieved, redis.p50_ms,
        redis.p99_ms, memdb.achieved, memdb.p50_ms, memdb.p99_ms,
        memdb.srv_p50_ms, memdb.srv_p99_ms);
    std::fflush(stdout);

    g_json_rows.push_back(
        "{\"panel\":\"" + std::string(slug) +
        "\",\"offered\":" + std::to_string(rate) +
        ",\"client_p50_ms\":" + std::to_string(memdb.p50_ms) +
        ",\"client_p99_ms\":" + std::to_string(memdb.p99_ms) +
        ",\"server\":" +
        MetricsJson(mf.primary->metrics(),
                    {"write_commit_latency_us", "append_latency_us",
                     "cmd_latency_us"},
                    {"node_records_appended_total",
                     "node_reads_deferred_total"}) +
        "}");
  }
}

void WriteJson(const char* path) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) return;
  std::fprintf(f, "[\n");
  for (size_t i = 0; i < g_json_rows.size(); ++i) {
    std::fprintf(f, "  %s%s\n", g_json_rows[i].c_str(),
                 i + 1 < g_json_rows.size() ? "," : "");
  }
  std::fprintf(f, "]\n");
  std::fclose(f);
  std::printf("\nnode-side metrics written to %s\n", path);
}

}  // namespace
}  // namespace memdb::bench

int main() {
  std::printf(
      "Figure 5: latency vs offered throughput, r7g.16xlarge, 100B values\n");
  memdb::bench::RunPanel("(a) read-only", "read-only", 0.0,
                         {50'000, 100'000, 200'000, 300'000, 400'000,
                          480'000});
  memdb::bench::RunPanel("(b) write-only", "write-only", 1.0,
                         {25'000, 50'000, 100'000, 150'000, 180'000,
                          250'000});
  memdb::bench::RunPanel("(c) mixed 80%% GET / 20%% SET", "mixed-80-20", 0.2,
                         {50'000, 100'000, 200'000, 300'000, 400'000});
  memdb::bench::WriteJson("fig5_node_metrics.json");
  return 0;
}
