// Figure 5 — latency vs offered throughput on r7g.16xlarge (§6.1.2.2).
//
// Open-loop load at increasing offered rates; we report p50 and p99 for
// (a) read-only, (b) write-only, and (c) 80/20 mixed workloads.
//
// Expected shape (paper): reads — both sub-ms p50 and <2 ms p99;
// writes — Redis sub-ms p50 / up to 3 ms p99, MemoryDB ~3 ms p50 (every
// write is a multi-AZ commit) / up to 6 ms p99; mixed — both sub-ms p50,
// p99 up to 2 ms (Redis) vs 4 ms (MemoryDB).

#include <cstdio>
#include <vector>

#include "bench_support/driver.h"
#include "bench_support/fixtures.h"
#include "bench_support/instances.h"

namespace memdb::bench {
namespace {

constexpr uint64_t kPrefillKeys = 50'000;
constexpr sim::Duration kWarmup = 200 * sim::kMs;
constexpr sim::Duration kMeasure = 500 * sim::kMs;

struct Point {
  uint64_t offered;
  double p50_ms, p99_ms;
  double achieved;
};

template <typename Fixture>
Point MeasureAt(Fixture& f, sim::NodeId primary, uint64_t offered,
                double set_ratio, uint64_t seed) {
  LoadDriver::Options opts;
  opts.set_ratio = set_ratio;
  opts.value_bytes = 100;
  opts.key_space = kPrefillKeys;
  opts.offered_ops_per_sec = offered;
  opts.seed = seed;
  LoadDriver driver(f.sim.get(), f.sim->AddHost(0), primary, opts);
  driver.Start();
  f.sim->RunFor(kWarmup);
  driver.ResetStats();
  f.sim->RunFor(kMeasure);
  driver.Stop();
  Histogram combined;
  combined.Merge(driver.read_latency());
  combined.Merge(driver.write_latency());
  Point p;
  p.offered = offered;
  p.p50_ms = static_cast<double>(combined.Percentile(0.50)) / 1000.0;
  p.p99_ms = static_cast<double>(combined.Percentile(0.99)) / 1000.0;
  p.achieved = driver.Throughput();
  return p;
}

void RunPanel(const char* title, double set_ratio,
              const std::vector<uint64_t>& rates) {
  std::printf("\n%s\n", title);
  std::printf("%-12s | %10s %9s %9s | %10s %9s %9s\n", "offered",
              "redis[op/s]", "p50[ms]", "p99[ms]", "memdb[op/s]", "p50[ms]",
              "p99[ms]");
  const InstanceModel& m = R7g("r7g.16xlarge");
  for (uint64_t rate : rates) {
    RedisFixture rf = RedisFixture::Create(m, RedisFixture::Params{});
    rf.Prefill(kPrefillKeys, 100);
    Point redis = MeasureAt(rf, rf.primary->id(), rate, set_ratio, 11);

    MemDbFixture mf = MemDbFixture::Create(m, MemDbFixture::Params{});
    mf.Prefill(kPrefillKeys, 100);
    Point memdb = MeasureAt(mf, mf.primary->id(), rate, set_ratio, 12);

    std::printf("%-12llu | %10.0f %9.2f %9.2f | %10.0f %9.2f %9.2f\n",
                static_cast<unsigned long long>(rate), redis.achieved,
                redis.p50_ms, redis.p99_ms, memdb.achieved, memdb.p50_ms,
                memdb.p99_ms);
    std::fflush(stdout);
  }
}

}  // namespace
}  // namespace memdb::bench

int main() {
  std::printf(
      "Figure 5: latency vs offered throughput, r7g.16xlarge, 100B values\n");
  memdb::bench::RunPanel("(a) read-only", 0.0,
                         {50'000, 100'000, 200'000, 300'000, 400'000,
                          480'000});
  memdb::bench::RunPanel("(b) write-only", 1.0,
                         {25'000, 50'000, 100'000, 150'000, 180'000,
                          250'000});
  memdb::bench::RunPanel("(c) mixed 80%% GET / 20%% SET", 0.2,
                         {50'000, 100'000, 200'000, 300'000, 400'000});
  return 0;
}
