// writepath_breakdown: per-stage latency attribution of the §3.1 durable
// write path, measured on the REAL cluster pieces — an in-process
// 3-replica txlog group (txlog::LogService over loopback sockets) behind a
// net::RespServer, driven by a plain RESP client socket. Every write is
// traced (sample rate 1); afterwards the server's and each log replica's
// span logs are exported/merged exactly the way tools/memorydb-trace does
// it, and the report says where each microsecond of an acked SET went:
//
//   cmd.receive -> gate.submit -> gate.append.issue -> rpc.send ->
//   rpc.dispatch -> log.append.receive -> log.durable.local ->
//   log.quorum.commit -> rpc.recv -> append.ack -> reply.release
//
// This is the standing baseline for ROADMAP item 3 (group commit): the
// gate.submit -> gate.append.issue delta IS the serialization-queue wait
// that batching would collapse.
//
//   writepath_breakdown [ops] [payload_bytes]
//
// Emits BENCH_writepath.json: envelope, end-to-end p50/p99, per-stage
// p50/p99 along the chain, and the telescoping sum check (per-stage p50s
// vs end-to-end p50 — the same cross-check the driver applies against
// BENCH_rpc.json's single-append latency).

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench_support/envelope.h"
#include "common/histogram.h"
#include "common/trace_export.h"
#include "engine/engine.h"
#include "net/server.h"
#include "resp/resp.h"
#include "txlog/service.h"

namespace memdb::bench {
namespace {

uint64_t NowUs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

struct Group {
  std::vector<std::unique_ptr<txlog::LogService>> services;
  std::vector<std::string> endpoints;

  bool Start(size_t n) {
    for (size_t i = 0; i < n; ++i) {
      txlog::LogService::Options opt;
      opt.node_id = i + 1;
      opt.listen_port = 0;
      opt.fsync = false;  // memory-only replicas; quorum still required
      opt.heartbeat_ms = 20;
      opt.election_min_ms = 50;
      opt.election_max_ms = 120;
      opt.raft_rpc_timeout_ms = 100;
      services.push_back(std::make_unique<txlog::LogService>(opt));
      if (!services.back()->Start().ok()) return false;
    }
    std::vector<std::pair<uint64_t, std::string>> membership;
    for (size_t i = 0; i < n; ++i) {
      endpoints.push_back("127.0.0.1:" + std::to_string(services[i]->port()));
      membership.emplace_back(i + 1, endpoints.back());
    }
    for (auto& s : services) s->SetPeers(membership);
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(5);
    while (std::chrono::steady_clock::now() < deadline) {
      for (auto& s : services) {
        if (s->IsLeader()) return true;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    return false;
  }

  void Stop() {
    for (auto& s : services) s->Stop();
  }
};

// Blocking RESP client: one connection, sequential round trips — the
// single-writer shape whose per-stage breakdown the report attributes.
class Client {
 public:
  explicit Client(uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    struct sockaddr_in sa;
    std::memset(&sa, 0, sizeof(sa));
    sa.sin_family = AF_INET;
    sa.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &sa.sin_addr);
    if (::connect(fd_, reinterpret_cast<struct sockaddr*>(&sa), sizeof(sa)) !=
        0) {
      ::close(fd_);
      fd_ = -1;
      return;
    }
    const int one = 1;
    ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  }
  ~Client() {
    if (fd_ >= 0) ::close(fd_);
  }
  bool ok() const { return fd_ >= 0; }

  bool RoundTrip(const std::vector<std::string>& argv, resp::Value* reply) {
    const std::string bytes = resp::EncodeCommand(argv);
    size_t off = 0;
    while (off < bytes.size()) {
      const ssize_t n = ::send(fd_, bytes.data() + off, bytes.size() - off,
                               MSG_NOSIGNAL);
      if (n <= 0) return false;
      off += static_cast<size_t>(n);
    }
    char buf[16 * 1024];
    for (;;) {
      const resp::DecodeStatus st = dec_.Decode(reply);
      if (st == resp::DecodeStatus::kOk) return true;
      if (st == resp::DecodeStatus::kError) return false;
      const ssize_t r = ::recv(fd_, buf, sizeof(buf), 0);
      if (r <= 0) return false;
      dec_.Feed(Slice(buf, static_cast<size_t>(r)));
    }
  }

 private:
  int fd_ = -1;
  resp::Decoder dec_;
};

int Run(int ops, int payload_bytes) {
  std::printf("writepath_breakdown: 3-replica log group behind RespServer, "
              "ops=%d payload=%dB\n",
              ops, payload_bytes);
  Group group;
  if (!group.Start(3)) {
    std::fprintf(stderr, "log group failed to start / elect a leader\n");
    return 1;
  }

  engine::Engine engine;
  net::ServerConfig config;
  config.port = 0;
  config.txlog_endpoints = group.endpoints;
  config.trace_sample_rate = 1;  // trace every write: attribution, not load
  net::RespServer server(&engine, config);
  if (!server.Start().ok()) {
    std::fprintf(stderr, "resp server failed to start\n");
    group.Stop();
    return 1;
  }

  Client client(server.port());
  if (!client.ok()) {
    std::fprintf(stderr, "client failed to connect\n");
    server.Stop();
    group.Stop();
    return 1;
  }
  const std::string payload(static_cast<size_t>(payload_bytes), 'x');
  resp::Value reply;
  // Warm up: leader hint + connection setup stay out of the measurement.
  if (!client.RoundTrip({"SET", "warm", payload}, &reply)) {
    std::fprintf(stderr, "warmup write failed\n");
    server.Stop();
    group.Stop();
    return 1;
  }

  Histogram client_rtt;
  int failed = 0;
  const uint64_t bench_t0 = NowUs();
  for (int i = 0; i < ops; ++i) {
    const std::string key = "k" + std::to_string(i % 64);
    const uint64_t t0 = NowUs();
    if (!client.RoundTrip({"SET", key, payload}, &reply) ||
        reply.type != resp::Type::kSimpleString) {
      ++failed;
      continue;
    }
    client_rtt.Record(NowUs() - t0);
  }
  const double wall_s = static_cast<double>(NowUs() - bench_t0) / 1e6;
  if (failed != 0) {
    std::fprintf(stderr, "%d writes failed\n", failed);
  }

  // Export/merge every process's spans — identical to what memorydb-trace
  // does with --trace-file outputs, just without the filesystem hop.
  std::vector<ExportedSpan> spans;
  ParseSpansJsonl(ExportSpansJsonl(server.trace_log(), "server"), &spans);
  for (size_t i = 0; i < group.services.size(); ++i) {
    ParseSpansJsonl(
        ExportSpansJsonl(group.services[i]->trace_log(),
                         "txlogd-" + std::to_string(i + 1)),
        &spans);
  }
  const size_t total_spans = spans.size();
  const auto by_trace = GroupSpansByTrace(std::move(spans));
  const WritePathReport report =
      BuildWritePathReport(by_trace, WritePathChain());

  std::printf("  spans=%zu traces=%zu complete_chains=%zu\n", total_spans,
              report.traces, report.complete_chains);
  uint64_t stage_p50_sum = 0;
  for (const StageDelta& d : report.deltas) {
    stage_p50_sum += d.latency_us.Percentile(0.5);
    std::printf("  %-22s -> %-22s count=%llu p50=%lluus p99=%lluus\n",
                d.from.c_str(), d.to.c_str(),
                static_cast<unsigned long long>(d.latency_us.count()),
                static_cast<unsigned long long>(d.latency_us.Percentile(0.5)),
                static_cast<unsigned long long>(
                    d.latency_us.Percentile(0.99)));
  }
  std::printf("  end_to_end p50=%lluus p99=%lluus  client RTT p50=%lluus  "
              "stage-p50 sum=%lluus  %.0f writes/s\n",
              static_cast<unsigned long long>(
                  report.end_to_end_us.Percentile(0.5)),
              static_cast<unsigned long long>(
                  report.end_to_end_us.Percentile(0.99)),
              static_cast<unsigned long long>(client_rtt.Percentile(0.5)),
              static_cast<unsigned long long>(stage_p50_sum),
              wall_s > 0 ? static_cast<double>(client_rtt.count()) / wall_s
                         : 0);

  std::string json = "{";
  json += BenchEnvelopeJson(
      "writepath_breakdown",
      {{"ops", std::to_string(ops)},
       {"payload_bytes", std::to_string(payload_bytes)},
       {"log_replicas", "3"},
       {"trace_sample_rate", "1"}});
  json += ",\"ops\":" + std::to_string(ops);
  json += ",\"traces\":" + std::to_string(report.traces);
  json += ",\"complete_chains\":" + std::to_string(report.complete_chains);
  json += ",\"end_to_end\":{\"p50_us\":" +
          std::to_string(report.end_to_end_us.Percentile(0.5)) +
          ",\"p99_us\":" +
          std::to_string(report.end_to_end_us.Percentile(0.99)) +
          ",\"count\":" + std::to_string(report.end_to_end_us.count()) + "}";
  json += ",\"client_rtt\":{\"p50_us\":" +
          std::to_string(client_rtt.Percentile(0.5)) +
          ",\"p99_us\":" + std::to_string(client_rtt.Percentile(0.99)) + "}";
  json += ",\"stage_p50_sum_us\":" + std::to_string(stage_p50_sum);
  json += ",\"stages\":[";
  for (size_t i = 0; i < report.deltas.size(); ++i) {
    const StageDelta& d = report.deltas[i];
    if (i > 0) json += ",";
    json += "{\"from\":" + QuoteJson(d.from);
    json += ",\"to\":" + QuoteJson(d.to);
    json += ",\"count\":" + std::to_string(d.latency_us.count());
    json += ",\"p50_us\":" + std::to_string(d.latency_us.Percentile(0.5));
    json += ",\"p99_us\":" + std::to_string(d.latency_us.Percentile(0.99));
    json += "}";
  }
  json += "]}\n";
  std::FILE* f = std::fopen("BENCH_writepath.json", "w");
  if (f != nullptr) {
    std::fputs(json.c_str(), f);
    std::fclose(f);
    std::printf("  wrote BENCH_writepath.json\n");
  }

  server.Stop();
  group.Stop();
  return failed != 0 || report.complete_chains == 0 ? 1 : 0;
}

}  // namespace
}  // namespace memdb::bench

int main(int argc, char** argv) {
  const int ops = argc > 1 ? std::atoi(argv[1]) : 500;
  const int payload = argc > 2 ? std::atoi(argv[2]) : 128;
  if (ops < 1 || payload < 0) {
    std::fprintf(stderr, "usage: writepath_breakdown [ops] [payload_bytes]\n");
    return 2;
  }
  return memdb::bench::Run(ops, payload);
}
