#!/usr/bin/env python3
"""memdb-analyzer: AST/call-graph invariant checking for the memorydb tree.

Replaces the per-line regex guesswork in tools/lint.py with function- and
call-graph-level analysis. Two interchangeable frontends produce the same
function IR:

  * clang   — libclang via python `clang.cindex`, when importable and a
              libclang shared object can be loaded (accurate name
              resolution). Any frontend failure falls back to textual with
              a notice, so the gate never breaks on a half-installed clang.
  * textual — a self-contained tokenizer + scope tracker (pure python, no
              dependencies). Precise enough for this codebase's Google-style
              C++; the golden fixtures pin its behaviour.

Checks (each finding prints `path:line: [check] message`):

  blocking-loop        A blocking primitive (sleep_for/sleep_until, fsync/
                       fdatasync, ::connect, CondVar/SyncSlot Wait/WaitFor)
                       called directly from a function defined in loop-owned
                       code (src/net, src/rpc, src/replication, src/failover,
                       src/chaos, src/shard, txlog service/remote_client,
                       storage/fs_object_store — same set tools/lint.py used).
  blocking-transitive  Same, but reached through the call graph: a loop-owned
                       function calls a helper (anywhere in src/) that
                       transitively blocks. The path is printed.
  lock-order           Cycle in the acquired-while-held graph built from
                       memdb::MutexLock scopes, explicit Lock()/Unlock(),
                       and REQUIRES() annotations, propagated through the
                       call graph. Reviewed orderings live in the whitelist
                       (tools/lock_order.allow).
  status-discard       A call whose result (memdb::Status / Result<T>) is
                       dropped on the floor: a bare expression-statement, or
                       a (void) cast without a reason annotation.
  rpc-deadline         An rpc::Channel::Call site whose deadline argument is
                       the literal 0 ("no deadline"): every internal RPC must
                       carry an explicit caller budget.
  ok-return            Config-driven pairing rule: in the named method, every
                       `return Status::OK()` must be preceded by a call to
                       the named must-call function (release/lease checks in
                       RemoteLogGate / FailoverManager).
  raw-sync             lint.py rule 1: no raw std:: mutex/lock/condvar types
                       outside src/common/sync.h.
  memory-order         lint.py rule 2: every std::atomic .load()/.store()
                       spells an explicit std::memory_order.
  trace-lock-free      lint.py rule 4: common/trace.{h,cc} stay lock-free.

Escape hatches (all read from raw source, same-line or two lines above):
  lint:allow-blocking -- <reason>   suppress a blocking site, or stop the
                                    transitive walk at an annotated call.
  lint:off-loop -- <reason>         this function never runs on an event
                                    loop (Start/Stop/ctor/sync wrappers);
                                    placed on/above the definition line.
  lint:allow-discard -- <reason>    this (void)-cast Status discard is
                                    deliberate and reviewed.

Exit status: 0 clean, 1 findings, 2 usage error, 4 requested frontend
unavailable (only with an explicit --frontend clang).
"""

from __future__ import annotations

import argparse
import fnmatch
import json
import re
import sys
from collections import Counter
from dataclasses import dataclass, field
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

# --------------------------------------------------------------------------
# Configuration. The defaults describe the real tree; fixtures pass --config
# with a JSON object overriding any subset of these keys (paths relative to
# the analysis root).
# --------------------------------------------------------------------------

DEFAULT_CONFIG = {
    "roots": ["src"],
    # src/client and src/loadgen are deliberately NOT loop-owned: both are
    # client-side blocking-socket code on plain worker threads (the cluster
    # client, the load generator) and never run on an event loop.
    "loop_owned_dirs": [
        "src/net", "src/rpc", "src/replication", "src/failover",
        "src/chaos", "src/shard",
    ],
    "loop_owned_globs": [
        ["src/txlog", "service.*"],
        ["src/txlog", "remote_client.*"],
        ["src/storage", "fs_object_store.*"],
    ],
    "sync_exempt": ["src/common/sync.h", "src/common/sync.cc"],
    "trace_lock_free": ["src/common/trace.h", "src/common/trace.cc"],
    "lock_order_allow": "tools/lock_order.allow",
    # Pairing rules: in Class::Method, `return Status::OK()` requires a
    # preceding call to `must_call` in the same function body. These encode
    # the §4.2 startup contracts: a gate/manager that reports success
    # without spinning up its loop (held replies would queue forever) or,
    # for the failover manager, without consulting the lease state machine,
    # has silently skipped its fencing obligation.
    "ok_return_rules": [
        {"class": "RemoteLogGate", "method": "Start", "must_call": "Start"},
        {"class": "FailoverManager", "method": "Start", "must_call": "Start"},
        {"class": "FailoverManager", "method": "Start", "must_call": "state"},
    ],
}

ALLOW_BLOCKING = "lint:allow-blocking"
ALLOW_DISCARD = "lint:allow-discard"
OFF_LOOP = "lint:off-loop"

CXX_SUFFIXES = {".h", ".hpp", ".cc", ".cpp", ".cxx"}

# --------------------------------------------------------------------------
# Comment/string stripping (shared with tools/lint.py's approach): blank out
# comment bodies and string literals, preserving the line structure so every
# reported line number stays accurate.
# --------------------------------------------------------------------------


def strip_comments_keep_lines(text: str) -> str:
    out = []
    i, n = 0, len(text)
    state = "code"
    while i < n:
        ch = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if ch == "/" and nxt == "/":
                state, i = "line_comment", i + 2
                out.append("  ")
                continue
            if ch == "/" and nxt == "*":
                state, i = "block_comment", i + 2
                out.append("  ")
                continue
            if ch == '"':
                state = "string"
            elif ch == "'":
                state = "char"
            out.append(ch)
        elif state == "line_comment":
            if ch == "\n":
                state = "code"
            out.append(ch if ch == "\n" else " ")
        elif state == "block_comment":
            if ch == "*" and nxt == "/":
                state, i = "code", i + 2
                out.append("  ")
                continue
            out.append(ch if ch == "\n" else " ")
        elif state == "string":
            if ch == "\\":
                out.append("  ")
                i += 2
                continue
            if ch == '"':
                state = "code"
            out.append(ch if ch in ('"', "\n") else " ")
        elif state == "char":
            if ch == "\\":
                out.append("  ")
                i += 2
                continue
            if ch == "'":
                state = "code"
            out.append(ch if ch in ("'", "\n") else " ")
        i += 1
    return "".join(out)


# --------------------------------------------------------------------------
# Lexer (textual frontend).
# --------------------------------------------------------------------------

TOKEN_RE = re.compile(
    r"[A-Za-z_]\w*"
    r"|::|->|\+\+|--|&&|\|\||==|!=|<=|>=|<<|>>|\.\.\."
    r"|\d[\w'.]*"
    r"|[^\sA-Za-z_0-9]"
)


@dataclass
class Tok:
    __slots__ = ("text", "line")
    text: str
    line: int


def lex(code: str) -> list[Tok]:
    toks = []
    line = 1
    last = 0
    for m in TOKEN_RE.finditer(code):
        line += code.count("\n", last, m.start())
        last = m.start()
        toks.append(Tok(m.group(), line))
    return toks


# --------------------------------------------------------------------------
# Frontend-neutral IR.
# --------------------------------------------------------------------------


@dataclass
class CallSite:
    name: str                 # terminal identifier, e.g. "Call", "fsync"
    line: int
    qual: tuple = ()          # explicit A::B:: qualifier chain, if any
    is_member: bool = False   # preceded by `.` or `->`
    receiver: str = ""        # single-token receiver text ("" if complex)
    colon_prefix: bool = False  # `::name(` — global-qualified
    args: tuple = ()          # top-level argument texts
    held: tuple = ()          # canonical locks held at this site
    detached: bool = False    # inside a std::thread construction statement
    stmt_head: bool = False   # the statement starts with this call chain
    ends_stmt: bool = False   # `)` is immediately followed by `;`
    void_cast: bool = False   # statement begins with a (void) cast


@dataclass
class LockEdge:
    held: str
    acquired: str
    line: int


@dataclass
class FunctionInfo:
    name: str
    cls: str                  # enclosing (or declarator-qualified) class
    ns: str
    file: Path
    line: int
    returns_status: bool = False
    requires: tuple = ()      # canonical locks from REQUIRES()
    calls: list = field(default_factory=list)
    acquired: set = field(default_factory=set)   # canonical locks, direct
    lock_edges: list = field(default_factory=list)
    ok_returns: list = field(default_factory=list)  # lines of return Status::OK()
    off_loop: bool = False

    @property
    def qual(self) -> str:
        parts = [p for p in (self.ns, self.cls, self.name) if p]
        return "::".join(parts)

    @property
    def key(self) -> str:
        return f"{self.cls}::{self.name}" if self.cls else self.name


@dataclass
class FileIR:
    path: Path
    raw_lines: list
    code: str                 # stripped text (for file-level rules)
    functions: list = field(default_factory=list)
    allow_blocking: set = field(default_factory=set)   # line numbers
    allow_discard: set = field(default_factory=set)
    off_loop_lines: set = field(default_factory=set)

    def annotated(self, marker_lines: set, line: int) -> bool:
        # Marker on the same line, within the two lines above (wrapped
        # statements and multi-line declarators push the flagged token past
        # the line carrying the comment), or anywhere in the contiguous
        # comment/blank block immediately above — a multi-line doc comment
        # keeps its marker on the first line.
        if any(l in marker_lines for l in range(line - 2, line + 1)):
            return True
        code_lines = self.code.split("\n")
        l = line - 1
        # Skip back over trailing lines of a wrapped declarator: lines whose
        # stripped code is non-empty belong to the declaration itself only
        # within the 2-line window already checked above.
        while l >= 1:
            stripped = code_lines[l - 1].strip() if l - 1 < len(code_lines) \
                else ""
            if stripped:
                break
            if l in marker_lines:
                return True
            l -= 1
        return False


# --------------------------------------------------------------------------
# Textual frontend: a tokenizer + scope tracker. Understands namespaces,
# class scopes, out-of-line qualified definitions, lambdas, MutexLock
# scopes, and statement boundaries — enough to build the function IR
# without a compiler.
# --------------------------------------------------------------------------

KEYWORDS = {
    "if", "while", "for", "switch", "return", "sizeof", "catch", "do",
    "else", "case", "default", "new", "delete", "throw", "goto", "break",
    "continue", "alignof", "alignas", "decltype", "static_assert", "try",
    "co_return", "co_await", "co_yield", "typeid", "using", "typedef",
    "static_cast", "dynamic_cast", "const_cast", "reinterpret_cast",
}

QUAL_WORDS = {
    "const", "noexcept", "override", "final", "mutable", "volatile", "&&",
    "&", "throw",
}

ANNOT_MACROS = {
    "REQUIRES", "REQUIRES_SHARED", "ACQUIRE", "RELEASE", "TRY_ACQUIRE",
    "EXCLUDES", "ASSERT_CAPABILITY", "RETURN_CAPABILITY",
    "NO_THREAD_SAFETY_ANALYSIS", "GUARDED_BY", "PT_GUARDED_BY",
    "ACQUIRED_BEFORE", "ACQUIRED_AFTER", "NOLINT",
}

CTRL_HEADS = {"if", "while", "for", "switch", "catch"}

MARKERS = (
    (ALLOW_BLOCKING, "allow_blocking"),
    (ALLOW_DISCARD, "allow_discard"),
    (OFF_LOOP, "off_loop_lines"),
)


def canon_lock(expr: str, cls: str) -> str:
    e = expr.strip()
    for pre in ("&", "*"):
        while e.startswith(pre):
            e = e[len(pre):].strip()
    if e.startswith("this->"):
        e = e[len("this->"):].strip()
    if re.fullmatch(r"[A-Za-z_]\w*", e):
        return f"{cls}::{e}" if cls else e
    return e


class TextualFrontend:
    """Parses one file into a FileIR. No cross-file state."""

    name = "textual"

    def parse(self, path: Path, rel: str) -> FileIR:
        raw = path.read_text(encoding="utf-8", errors="replace")
        code = strip_comments_keep_lines(raw)
        ir = FileIR(path=path, raw_lines=raw.splitlines(), code=code)
        for lineno, line in enumerate(ir.raw_lines, 1):
            for marker, attr in MARKERS:
                if marker in line:
                    getattr(ir, attr).add(lineno)
        toks = lex(code)
        self._scan(toks, ir)
        return ir

    # -- brace classification ------------------------------------------------

    def _match_open(self, toks, close_idx, open_ch="(", close_ch=")"):
        depth = 0
        j = close_idx
        while j >= 0:
            t = toks[j].text
            if t == close_ch:
                depth += 1
            elif t == open_ch:
                depth -= 1
                if depth == 0:
                    return j
            j -= 1
        return -1

    def _match_close(self, toks, open_idx, open_ch="(", close_ch=")"):
        depth = 0
        j = open_idx
        n = len(toks)
        while j < n:
            t = toks[j].text
            if t == open_ch:
                depth += 1
            elif t == close_ch:
                depth -= 1
                if depth == 0:
                    return j
            j += 1
        return -1

    def _classify_brace(self, toks, i, stmt_start, ctx_kind):
        """Classify the `{` at toks[i].

        Returns (kind, info): kind in {"ns", "cls", "fn", "lambda", "block"};
        for "ns"/"cls" info is the name, for "fn" info is a dict with
        declarator details.
        """
        j = i - 1
        requires = []
        budget = 64
        while j >= 0 and budget:
            budget -= 1
            t = toks[j].text
            if t in (";", "{", "}"):
                break
            if t == ")":
                k = self._match_open(toks, j)
                if k <= 0:
                    break
                head = toks[k - 1].text
                if head in ANNOT_MACROS:
                    if head in ("REQUIRES", "REQUIRES_SHARED"):
                        requires.append(
                            " ".join(x.text for x in toks[k + 1:j]))
                    j = k - 1
                    continue
                if head in CTRL_HEADS:
                    return "block", None
                if toks[k - 1].text == "]":
                    return "lambda", None
                if re.fullmatch(r"[A-Za-z_]\w*", head) or head in (">",):
                    # Candidate declarator ending at k-1 — only a function
                    # definition at namespace/class scope.
                    if ctx_kind in ("ns", "cls", "global"):
                        return "fn", {"paren": k, "requires": requires}
                    return "block", None
                return "block", None
            if t == "]":
                return "lambda", None
            if t == "namespace":
                return "ns", ""
            if (re.fullmatch(r"[A-Za-z_]\w*", t)
                    and j >= 1 and toks[j - 1].text == "namespace"):
                return "ns", t
            if t in ("=", ",", "(", "return", "["):
                return "block", None
            if t in ("else", "do", "try"):
                return "block", None
            if t in ("class", "struct", "union", "enum"):
                # Name: first plain identifier after the keyword.
                name = ""
                for x in toks[j + 1:i]:
                    if x.text in ("class",):  # enum class
                        continue
                    if re.fullmatch(r"[A-Za-z_]\w*", x.text) \
                            and x.text not in ("final", "alignas"):
                        name = x.text
                        break
                    if x.text in (":", "<"):
                        break
                return "cls", name
            # Qualifier words, trailing-return-type tokens, base-clause
            # tokens: keep scanning back.
            j -= 1
        # Look for class/struct earlier in the statement.
        for x in toks[stmt_start:i]:
            if x.text in ("class", "struct", "union", "enum"):
                return self._classify_brace_cls(toks, stmt_start, i)
        return "block", None

    def _classify_brace_cls(self, toks, stmt_start, i):
        name = ""
        seen_kw = False
        for x in toks[stmt_start:i]:
            if x.text in ("class", "struct", "union", "enum"):
                seen_kw = True
                continue
            if seen_kw and re.fullmatch(r"[A-Za-z_]\w*", x.text) \
                    and x.text not in ("final", "alignas", "class"):
                name = x.text
            if x.text in (":", "<") and name:
                break
        return "cls", name

    def _declarator(self, toks, paren_idx, stmt_start):
        """Extract (name, qual_chain, ret_tokens) for the declarator whose
        parameter list opens at paren_idx."""
        j = paren_idx - 1
        chain = []
        # Terminal name segment: identifier, ~identifier, or operator-id.
        if j >= stmt_start and re.fullmatch(r"[A-Za-z_]\w*", toks[j].text):
            chain.append(toks[j].text)
            j -= 1
            if j >= stmt_start and toks[j].text == "~":
                chain[-1] = "~" + chain[-1]
                j -= 1
        elif j >= stmt_start:  # operator== etc: back up over symbol tokens
            k = j
            while k >= stmt_start and toks[k].text != "operator":
                k -= 1
            if k >= stmt_start:
                chain.append("operator" + "".join(
                    x.text for x in toks[k + 1:j + 1]))
                j = k - 1
        # Qualifier segments, only while connected by `::`.
        while (j - 1 >= stmt_start and toks[j].text == "::"
               and re.fullmatch(r"[A-Za-z_]\w*", toks[j - 1].text)):
            chain.append(toks[j - 1].text)
            j -= 2
        chain.reverse()
        name = chain[-1] if chain else ""
        quals = tuple(chain[:-1])
        ret = [x.text for x in toks[stmt_start:j + 1]]
        return name, quals, ret

    # -- main scan -----------------------------------------------------------

    def _scan(self, toks, ir: FileIR):
        ctx = [{"kind": "global", "name": "", "fn": None}]
        n = len(toks)
        i = 0
        stmt_start = 0
        paren_depth = 0
        # Held locks: list of dicts {lock, depth(None=explicit), }
        held = []
        brace_depth = 0
        detached_until_semi = False
        fn_depth_stack = []  # brace depth at which each fn body opened

        def cur_fn():
            for c in reversed(ctx):
                if c["kind"] == "fn":
                    return c["fn"]
            return None

        def cur_cls():
            for c in reversed(ctx):
                if c["kind"] == "cls":
                    return c["name"]
            return None

        def in_lambda():
            for c in reversed(ctx):
                if c["kind"] == "fn":
                    return False
                if c["kind"] == "lambda":
                    return True
            return False

        def held_names():
            return tuple(h["lock"] for h in held)

        while i < n:
            t = toks[i]
            txt = t.text
            if txt == "(":
                paren_depth += 1
            elif txt == ")":
                paren_depth = max(0, paren_depth - 1)
            elif txt == "{":
                kind, info = self._classify_brace(
                    toks, i, stmt_start, ctx[-1]["kind"])
                if kind == "ns":
                    ctx.append({"kind": "ns", "name": info, "fn": None})
                elif kind == "cls":
                    ctx.append({"kind": "cls", "name": info, "fn": None})
                elif kind == "fn":
                    name, quals, ret = self._declarator(
                        toks, info["paren"], stmt_start)
                    cls = quals[-1] if quals else (cur_cls() or "")
                    ns = "::".join(
                        c["name"] for c in ctx
                        if c["kind"] == "ns" and c["name"])
                    # Anchor at the first declaration token, not the `{`:
                    # a wrapped parameter list must not push the function
                    # past its own `lint:off-loop` comment.
                    decl_line = (toks[stmt_start].line
                                 if stmt_start < len(toks) else t.line)
                    fn = FunctionInfo(
                        name=name, cls=cls, ns=ns, file=ir.path,
                        line=decl_line,
                        returns_status=any(
                            r in ("Status", "Result") for r in ret),
                        requires=tuple(
                            canon_lock(r, cls) for r in info["requires"]),
                        off_loop=ir.annotated(ir.off_loop_lines, decl_line),
                    )
                    # A REQUIRES(mu) body runs with mu held throughout.
                    for r in fn.requires:
                        held.append({"lock": r, "depth": brace_depth + 1,
                                     "scoped": True})
                    ir.functions.append(fn)
                    ctx.append({"kind": "fn", "name": name, "fn": fn})
                    fn_depth_stack.append(brace_depth + 1)
                elif kind == "lambda":
                    ctx.append({"kind": "lambda", "name": "", "fn": None})
                else:
                    ctx.append({"kind": "block", "name": "", "fn": None})
                brace_depth += 1
                stmt_start = i + 1
            elif txt == "}":
                held[:] = [h for h in held
                           if not (h["scoped"] and h["depth"] >= brace_depth)]
                brace_depth = max(0, brace_depth - 1)
                if len(ctx) > 1:
                    popped = ctx.pop()
                    if popped["kind"] == "fn" and fn_depth_stack:
                        fn_depth_stack.pop()
                stmt_start = i + 1
            elif txt == ";" and paren_depth == 0:
                stmt_start = i + 1
                detached_until_semi = False
            fn = cur_fn()
            if fn is not None:
                i = self._body_token(
                    toks, i, stmt_start, fn, ir, held, brace_depth,
                    cur_cls() or fn.cls, in_lambda(),
                    detached_until_semi, held_names)
                if toks[i].text == "thread" and i >= 2 \
                        and toks[i - 1].text == "::" \
                        and toks[i - 2].text == "std":
                    detached_until_semi = True
            i += 1

    def _split_args(self, toks, open_idx, close_idx):
        args = []
        depth = 0
        cur = []
        for x in toks[open_idx + 1:close_idx]:
            if x.text in ("(", "[", "{"):
                depth += 1
            elif x.text in (")", "]", "}"):
                depth -= 1
            if x.text == "," and depth == 0:
                args.append(" ".join(cur))
                cur = []
            else:
                cur.append(x.text)
        if cur or args:
            args.append(" ".join(cur))
        return tuple(args)

    def _chain_start(self, toks, name_idx, stmt_start):
        """Walk the receiver/qualifier chain left of toks[name_idx]; returns
        the index where the full call chain begins."""
        j = name_idx
        while j > stmt_start:
            prev = toks[j - 1].text
            if prev == "::" and j >= 2:
                j -= 2
            elif prev in (".", "->") and j >= 2:
                p2 = toks[j - 2].text
                if p2 == ")":
                    k = self._match_open(toks, j - 2)
                    if k > 0 and re.fullmatch(
                            r"[A-Za-z_]\w*", toks[k - 1].text):
                        j = k - 1
                    elif k > 0 and toks[k - 1].text == "]":
                        # subscript: arr[i]->f()
                        m = self._match_open(toks, k - 1, "[", "]")
                        j = m - 1 if m > 0 else k
                    else:
                        j = k if k > 0 else j - 2
                elif p2 == "]":
                    m = self._match_open(toks, j - 2, "[", "]")
                    j = m - 1 if m > 0 else j - 2
                elif re.fullmatch(r"[A-Za-z_]\w*", p2) or p2 == ")":
                    j -= 2
                else:
                    break
            else:
                break
        return j

    def _body_token(self, toks, i, stmt_start, fn, ir, held, brace_depth,
                    cls, in_lambda, detached, held_names):
        t = toks[i]
        txt = t.text
        n = len(toks)
        nxt = toks[i + 1].text if i + 1 < n else ""

        # return Status::OK();
        if txt == "return" and i + 5 < n \
                and toks[i + 1].text == "Status" \
                and toks[i + 2].text == "::" and toks[i + 3].text == "OK":
            fn.ok_returns.append(t.line)
            return i

        # MutexLock <var>(&mu_);
        if txt == "MutexLock" and i + 2 < n \
                and re.fullmatch(r"[A-Za-z_]\w*", nxt) \
                and toks[i + 2].text == "(":
            close = self._match_close(toks, i + 2)
            if close > 0:
                expr = " ".join(x.text for x in toks[i + 3:close])
                lock = canon_lock(expr.replace(" ", ""), cls)
                for h in held_names():
                    fn.lock_edges.append(LockEdge(h, lock, t.line))
                fn.acquired.add(lock)
                held.append({"lock": lock, "depth": brace_depth,
                             "scoped": True})
            return close if close > 0 else i

        # <expr>.Lock() / .Unlock() / .TryLock()
        if txt in ("Lock", "Unlock", "TryLock") and nxt == "(" and i >= 2 \
                and toks[i - 1].text in (".", "->"):
            recv = toks[i - 2].text
            if re.fullmatch(r"[A-Za-z_]\w*", recv) and recv != "lock":
                lock = canon_lock(recv, cls)
                if txt in ("Lock", "TryLock"):
                    for h in held_names():
                        fn.lock_edges.append(LockEdge(h, lock, t.line))
                    fn.acquired.add(lock)
                    held.append({"lock": lock, "depth": None,
                                 "scoped": False})
                else:
                    held[:] = [h for h in held if h["lock"] != lock]
            return i

        # General call site: identifier followed by `(`.
        if nxt == "(" and re.fullmatch(r"[A-Za-z_]\w*", txt) \
                and txt not in KEYWORDS and txt not in ANNOT_MACROS:
            prev = toks[i - 1].text if i >= 1 else ""
            if prev in ("class", "struct", "enum", "new", "namespace"):
                return i
            close = self._match_close(toks, i + 1)
            if close < 0:
                return i
            is_member = prev in (".", "->")
            receiver = ""
            if is_member and i >= 2:
                r = toks[i - 2].text
                receiver = r if re.fullmatch(r"[A-Za-z_]\w*|this", r) else ""
            qual = []
            j = i
            while j >= 2 and toks[j - 1].text == "::" \
                    and re.fullmatch(r"[A-Za-z_]\w*", toks[j - 2].text):
                qual.insert(0, toks[j - 2].text)
                j -= 2
            colon_prefix = (j >= 1 and toks[j - 1].text == "::"
                            and (j < 2 or not re.fullmatch(
                                r"[A-Za-z_]\w*", toks[j - 2].text)))
            chain_start = self._chain_start(toks, j if qual else i,
                                            stmt_start)
            void_cast = False
            head = chain_start == stmt_start
            if not head and chain_start == stmt_start + 3 \
                    and toks[stmt_start].text == "(" \
                    and toks[stmt_start + 1].text == "void" \
                    and toks[stmt_start + 2].text == ")":
                head, void_cast = True, True
            ends = close + 1 < n and toks[close + 1].text == ";"
            fn.calls.append(CallSite(
                name=txt, line=t.line, qual=tuple(qual),
                is_member=is_member, receiver=receiver,
                colon_prefix=colon_prefix,
                args=self._split_args(toks, i + 1, close),
                held=held_names(), detached=detached,
                stmt_head=head, ends_stmt=ends, void_cast=void_cast))
            return i
        return i


# --------------------------------------------------------------------------
# Cross-file analysis: registry, call resolution, and the checks.
# --------------------------------------------------------------------------

SLEEP_FNS = {"sleep_for", "sleep_until", "usleep", "nanosleep", "sleep"}
FSYNC_FNS = {"fsync", "fdatasync"}
WAIT_METHODS = {"Wait", "WaitFor"}


@dataclass
class Finding:
    path: str
    line: int
    check: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}: [{self.check}] {self.message}"


class Analysis:
    def __init__(self, root: Path, config: dict):
        self.root = root
        self.config = config
        self.files: dict[str, FileIR] = {}   # rel path -> FileIR
        self.by_name: dict[str, list[FunctionInfo]] = {}
        self.findings: list[Finding] = []
        self._blocked_memo: dict[int, object] = {}
        self._acq_memo: dict[int, frozenset] = {}
        self._loop_dirs = [Path(d) for d in config["loop_owned_dirs"]]
        self._loop_globs = [(Path(d), g)
                            for d, g in config["loop_owned_globs"]]

    # -- helpers -------------------------------------------------------------

    def rel(self, path: Path) -> str:
        try:
            return str(path.relative_to(self.root))
        except ValueError:
            return str(path)

    def add_file(self, ir: FileIR):
        relp = self.rel(ir.path)
        self.files[relp] = ir
        for fn in ir.functions:
            self.by_name.setdefault(fn.name, []).append(fn)

    def loop_owned(self, relp: str) -> bool:
        p = Path(relp)
        if p.name.endswith("_main.cc"):
            return False
        for d in self._loop_dirs:
            if d in p.parents:
                return True
        for d, pattern in self._loop_globs:
            if p.parent == d and fnmatch.fnmatch(p.name, pattern):
                return True
        return False

    def resolve(self, call: CallSite, ctx: FunctionInfo):
        """Returns the candidate FunctionInfo list for a call, or [] when
        unknown/ambiguous. Conservative: a member call through an object is
        resolved only when every same-named method lives in one class."""
        cands = self.by_name.get(call.name)
        if not cands:
            return []
        if call.qual:
            want = call.qual[-1]
            qmatch = [c for c in cands if c.cls == want or
                      (c.ns and c.ns.split("::")[-1] == want)]
            return qmatch
        if call.is_member:
            if call.receiver == "this":
                same = [c for c in cands if c.cls == ctx.cls]
                return same
            classes = {c.cls for c in cands}
            if len(classes) == 1:
                return cands
            return []
        # Unqualified direct call: same class first, then unique.
        same = [c for c in cands if c.cls == ctx.cls and ctx.cls]
        if same:
            return same
        free = [c for c in cands if not c.cls]
        if free:
            return free
        classes = {c.cls for c in cands}
        return cands if len(classes) == 1 else []

    # -- blocking ------------------------------------------------------------

    def primitive_kind(self, call: CallSite):
        if call.name in SLEEP_FNS:
            return f"{call.name}()"
        if call.name in FSYNC_FNS:
            return f"{call.name}()"
        if call.name == "connect" and call.colon_prefix:
            return "::connect()"
        if call.name in WAIT_METHODS and call.is_member:
            return f"blocking {call.name}()"
        return None

    def blocked_witness(self, fn: FunctionInfo, stack=None):
        """Returns a list of (description, relpath, line) hops ending at an
        unsuppressed blocking primitive reachable from fn, else None."""
        key = id(fn)
        if key in self._blocked_memo:
            return self._blocked_memo[key]
        stack = stack or set()
        if key in stack:
            return None
        stack = stack | {key}
        self._blocked_memo[key] = None  # break recursion pessimistically
        ir = self.files[self.rel(fn.file)]
        result = None
        for call in fn.calls:
            if call.detached:
                continue
            if ir.annotated(ir.allow_blocking, call.line):
                continue
            prim = self.primitive_kind(call)
            if prim:
                result = [(prim, self.rel(fn.file), call.line)]
                break
            for cand in self.resolve(call, fn):
                if cand is fn:
                    continue
                sub = self.blocked_witness(cand, stack)
                if sub:
                    result = [(cand.qual or cand.name, self.rel(fn.file),
                               call.line)] + sub
                    break
            if result:
                break
        self._blocked_memo[key] = result
        return result

    def check_blocking(self):
        for relp, ir in sorted(self.files.items()):
            if not self.loop_owned(relp):
                continue
            for fn in ir.functions:
                if fn.off_loop or fn.name == "main":
                    continue
                wit = self.blocked_witness(fn)
                if not wit:
                    continue
                first_desc, first_file, first_line = wit[0]
                if len(wit) == 1:
                    self.findings.append(Finding(
                        relp, first_line, "blocking-loop",
                        f"{first_desc} on a loop-owned thread (in "
                        f"{fn.qual or fn.name}) — hop off the loop or "
                        f"annotate with `{ALLOW_BLOCKING} -- <reason>`"))
                else:
                    path = " -> ".join(
                        f"{d} ({f}:{l})" for d, f, l in wit)
                    self.findings.append(Finding(
                        relp, first_line, "blocking-transitive",
                        f"{fn.qual or fn.name} reaches a blocking call: "
                        f"{path} — hop off the loop, annotate the call "
                        f"site with `{ALLOW_BLOCKING} -- <reason>`, or mark "
                        f"the entry `{OFF_LOOP} -- <reason>`"))

    # -- lock order ----------------------------------------------------------

    def acquires_transitive(self, fn: FunctionInfo, stack=None):
        key = id(fn)
        if key in self._acq_memo:
            return self._acq_memo[key]
        stack = stack or set()
        if key in stack:
            return frozenset()
        stack = stack | {key}
        self._acq_memo[key] = frozenset()
        acq = set(fn.acquired)
        for call in fn.calls:
            if call.detached:
                continue
            for cand in self.resolve(call, fn):
                if cand is not fn:
                    acq |= self.acquires_transitive(cand, stack)
        out = frozenset(acq)
        self._acq_memo[key] = out
        return out

    def check_lock_order(self):
        allow = set()
        allow_path = self.config.get("lock_order_allow")
        if allow_path:
            p = self.root / allow_path
            if p.is_file():
                for line in p.read_text().splitlines():
                    line = line.split("#", 1)[0].strip()
                    if not line:
                        continue
                    parts = line.split()
                    if len(parts) == 2:
                        allow.add((parts[0], parts[1]))
        edges = {}  # (held, acquired) -> (relpath, line)
        for relp, ir in sorted(self.files.items()):
            for fn in ir.functions:
                for e in fn.lock_edges:
                    edges.setdefault((e.held, e.acquired), (relp, e.line))
                for call in fn.calls:
                    if not call.held or call.detached:
                        continue
                    prim = self.primitive_kind(call)
                    if prim:
                        continue
                    for cand in self.resolve(call, fn):
                        if cand is fn:
                            continue
                        for l in self.acquires_transitive(cand):
                            for h in call.held:
                                if h != l:
                                    edges.setdefault(
                                        (h, l), (relp, call.line))
        graph = {}
        for (h, a), where in edges.items():
            if (h, a) in allow or h == a:
                continue
            graph.setdefault(h, []).append((a, where))
        # DFS cycle detection.
        color = {}
        stack_path = []

        def dfs(node):
            color[node] = 1
            stack_path.append(node)
            for (nb, where) in graph.get(node, []):
                if color.get(nb, 0) == 1:
                    cyc = stack_path[stack_path.index(nb):] + [nb]
                    relp, line = where
                    self.findings.append(Finding(
                        relp, line, "lock-order",
                        "lock-order cycle: " + " -> ".join(cyc) +
                        " — fix the ordering or whitelist the reviewed "
                        "edge in " + str(self.config.get(
                            "lock_order_allow"))))
                elif color.get(nb, 0) == 0:
                    dfs(nb)
            stack_path.pop()
            color[node] = 2

        for node in sorted(graph):
            if color.get(node, 0) == 0:
                dfs(node)

    # -- status discard ------------------------------------------------------

    def check_status_discard(self):
        for relp, ir in sorted(self.files.items()):
            for fn in ir.functions:
                for call in fn.calls:
                    if not (call.stmt_head and call.ends_stmt):
                        continue
                    cands = self.resolve(call, fn)
                    if not cands or not all(
                            c.returns_status for c in cands):
                        continue
                    if call.void_cast:
                        if ir.annotated(ir.allow_discard, call.line):
                            continue
                        self.findings.append(Finding(
                            relp, call.line, "status-discard",
                            f"(void)-cast discards Status from "
                            f"{call.name}() without a reason — annotate "
                            f"with `{ALLOW_DISCARD} -- <reason>`"))
                    else:
                        self.findings.append(Finding(
                            relp, call.line, "status-discard",
                            f"result of {call.name}() (Status/Result) is "
                            f"discarded — handle it, or cast to (void) "
                            f"with `{ALLOW_DISCARD} -- <reason>`"))

    # -- rpc deadline --------------------------------------------------------

    def check_rpc_deadline(self):
        for relp, ir in sorted(self.files.items()):
            for fn in ir.functions:
                for call in fn.calls:
                    if call.name != "Call" or not call.is_member:
                        continue
                    if len(call.args) != 5:
                        continue
                    deadline = call.args[2].strip()
                    if deadline == "0":
                        self.findings.append(Finding(
                            relp, call.line, "rpc-deadline",
                            "rpc::Channel::Call with deadline 0 (no "
                            "deadline) — every internal RPC must carry an "
                            "explicit caller budget"))

    # -- ok-return pairing ---------------------------------------------------

    def check_ok_return(self):
        for rule in self.config.get("ok_return_rules", []):
            cls, method, must = rule["class"], rule["method"], \
                rule["must_call"]
            for fn in self.by_name.get(method, []):
                if fn.cls != cls or not fn.ok_returns:
                    continue
                call_lines = [c.line for c in fn.calls
                              if c.name == must]
                first = min(call_lines) if call_lines else None
                for line in fn.ok_returns:
                    if first is None or line < first:
                        self.findings.append(Finding(
                            self.rel(fn.file), line, "ok-return",
                            f"{cls}::{method} returns Status::OK() "
                            f"without calling {must}() first"))

    # -- folded lint.py file-level rules ------------------------------------

    RAW_SYNC = [
        (re.compile(r"#\s*include\s*<mutex>"), "#include <mutex>"),
        (re.compile(r"#\s*include\s*<condition_variable>"),
         "#include <condition_variable>"),
        (re.compile(r"\bstd::(?:timed_|recursive_|shared_)?mutex\b"),
         "raw std:: mutex type"),
        (re.compile(r"\bstd::(?:lock_guard|unique_lock|scoped_lock)\b"),
         "raw std:: lock type"),
        (re.compile(r"\bstd::condition_variable(?:_any)?\b"),
         "raw std::condition_variable"),
    ]
    ATOMIC_ACCESS = re.compile(r"\.(load|store)\s*\(")
    TRACE_SYNC_INCLUDE = re.compile(r"#\s*include\s*\"common/sync\.h\"")
    TRACE_LOCK_IDENT = re.compile(
        r"\b(?:memdb::)?(?:Mutex|MutexLock|CondVar)\b")

    @staticmethod
    def _line_of(text, offset):
        return text.count("\n", 0, offset) + 1

    def check_file_rules(self):
        sync_exempt = set(self.config["sync_exempt"])
        trace_files = set(self.config["trace_lock_free"])
        for relp, ir in sorted(self.files.items()):
            code = ir.code
            if relp not in sync_exempt:
                for pattern, what in self.RAW_SYNC:
                    for m in pattern.finditer(code):
                        self.findings.append(Finding(
                            relp, self._line_of(code, m.start()),
                            "raw-sync",
                            f"{what} — use memdb::Mutex/MutexLock/CondVar "
                            f"from common/sync.h"))
            for m in self.ATOMIC_ACCESS.finditer(code):
                depth, j = 1, m.end()
                while j < len(code) and depth > 0:
                    if code[j] == "(":
                        depth += 1
                    elif code[j] == ")":
                        depth -= 1
                    j += 1
                if "memory_order" not in code[m.end():j - 1]:
                    self.findings.append(Finding(
                        relp, self._line_of(code, m.start()),
                        "memory-order",
                        f".{m.group(1)}() without an explicit "
                        f"std::memory_order"))
            if relp in trace_files:
                raw = "\n".join(ir.raw_lines)
                why = ("span recording runs inline on event-loop threads "
                       "and must stay lock-free")
                for m in self.TRACE_SYNC_INCLUDE.finditer(raw):
                    self.findings.append(Finding(
                        relp, self._line_of(raw, m.start()),
                        "trace-lock-free",
                        f"include of common/sync.h in the trace hot path "
                        f"— {why}"))
                for m in self.TRACE_LOCK_IDENT.finditer(code):
                    self.findings.append(Finding(
                        relp, self._line_of(code, m.start()),
                        "trace-lock-free",
                        f"blocking lock primitive {m.group(0)} in the "
                        f"trace hot path — {why}"))

    def run(self, checks=None):
        all_checks = {
            "blocking": self.check_blocking,
            "lock-order": self.check_lock_order,
            "status-discard": self.check_status_discard,
            "rpc-deadline": self.check_rpc_deadline,
            "ok-return": self.check_ok_return,
            "file-rules": self.check_file_rules,
        }
        for name, chk in all_checks.items():
            if checks and name not in checks:
                continue
            chk()
        self.findings.sort(key=lambda f: (f.path, f.line, f.check))
        return self.findings


# --------------------------------------------------------------------------
# libclang frontend: same IR, real AST. Best-effort — any failure (missing
# module, unloadable libclang, parse crash) falls back to the textual
# frontend so the gate never depends on a healthy clang install.
# --------------------------------------------------------------------------


class ClangFrontend:
    name = "clang"

    def __init__(self, root: Path):
        import clang.cindex as ci  # raises ImportError when absent
        self.ci = ci
        self.index = ci.Index.create()  # raises when libclang won't load
        self.root = root
        self.args = ["-xc++", "-std=c++20", f"-I{root / 'src'}",
                     f"-I{root}"]
        self.textual = TextualFrontend()

    def parse(self, path: Path, rel: str) -> FileIR:
        try:
            return self._parse(path)
        except Exception as e:  # noqa: BLE001 — deliberate broad fallback
            print(f"memdb-analyzer: clang frontend failed on {rel} "
                  f"({type(e).__name__}: {e}); using textual frontend "
                  f"for this file", file=sys.stderr)
            return self.textual.parse(path, rel)

    def _parse(self, path: Path) -> FileIR:
        raw = path.read_text(encoding="utf-8", errors="replace")
        ir = FileIR(path=path, raw_lines=raw.splitlines(),
                    code=strip_comments_keep_lines(raw))
        for lineno, line in enumerate(ir.raw_lines, 1):
            for marker, attr in MARKERS:
                if marker in line:
                    getattr(ir, attr).add(lineno)
        tu = self.index.parse(str(path), args=self.args)
        self._walk(tu.cursor, "", "", ir, str(path))
        return ir

    def _tok_text(self, cur) -> str:
        return " ".join(t.spelling for t in cur.get_tokens())

    def _walk(self, cur, ns, cls, ir, path):
        K = self.ci.CursorKind
        for ch in cur.get_children():
            k = ch.kind
            if k == K.NAMESPACE:
                sub = f"{ns}::{ch.spelling}" if ns else ch.spelling
                self._walk(ch, sub, cls, ir, path)
            elif k in (K.CLASS_DECL, K.STRUCT_DECL, K.CLASS_TEMPLATE,
                       K.UNION_DECL):
                self._walk(ch, ns, ch.spelling or cls, ir, path)
            elif k in (K.FUNCTION_DECL, K.CXX_METHOD, K.CONSTRUCTOR,
                       K.DESTRUCTOR, K.FUNCTION_TEMPLATE):
                if not ch.is_definition():
                    continue
                loc = ch.location
                if not loc.file or str(loc.file) != path:
                    continue
                fcls = cls
                sp = ch.semantic_parent
                if sp is not None and sp.kind in (
                        K.CLASS_DECL, K.STRUCT_DECL, K.CLASS_TEMPLATE):
                    fcls = sp.spelling
                ret = ""
                try:
                    ret = ch.result_type.spelling or ""
                except Exception:  # noqa: BLE001
                    pass
                fn = FunctionInfo(
                    name=ch.spelling.split("<")[0], cls=fcls, ns=ns,
                    file=ir.path, line=loc.line,
                    returns_status=("Status" in ret.replace(
                        "StatusCode", "") or "Result<" in ret),
                    off_loop=ir.annotated(ir.off_loop_lines, loc.line))
                # REQUIRES() locks from the declaration tokens (TSA
                # attributes are invisible to cindex).
                header = []
                for t in ch.get_tokens():
                    if t.spelling == "{":
                        break
                    header.append(t.spelling)
                htext = " ".join(header)
                for m in re.finditer(r"\bREQUIRES(?:_SHARED)?\s*\(([^)]*)\)",
                                     htext):
                    fn.requires = fn.requires + tuple(
                        canon_lock(a.strip().replace(" ", ""), fcls)
                        for a in m.group(1).split(","))
                ir.functions.append(fn)
                held = [{"lock": r, "scoped": True} for r in fn.requires]
                for body in ch.get_children():
                    if body.kind == K.COMPOUND_STMT:
                        self._body(body, fn, fcls, held, ir,
                                   detached=False)
            else:
                self._walk(ch, ns, cls, ir, path)

    def _body(self, cur, fn, cls, held, ir, detached):
        K = self.ci.CursorKind
        for ch in cur.get_children():
            k = ch.kind
            if k == K.COMPOUND_STMT:
                mark = len(held)
                self._body(ch, fn, cls, held, ir, detached)
                del held[mark:]
                continue
            if k == K.DECL_STMT:
                for d in ch.get_children():
                    if d.kind == K.VAR_DECL:
                        ty = d.type.spelling
                        if "MutexLock" in ty:
                            txt = self._tok_text(d)
                            m = re.search(r"\(([^)]*)\)", txt)
                            lock = canon_lock(
                                (m.group(1) if m else "").replace(" ", ""),
                                cls)
                            for h in held:
                                fn.lock_edges.append(LockEdge(
                                    h["lock"], lock, d.location.line))
                            fn.acquired.add(lock)
                            held.append({"lock": lock, "scoped": True})
                        elif "std::thread" in ty or ty.endswith("thread"):
                            self._body(d, fn, cls, held, ir, True)
                            continue
                    self._body(d, fn, cls, held, ir, detached)
                continue
            if k == K.RETURN_STMT:
                txt = self._tok_text(ch)
                if re.match(r"return\s+Status\s*::\s*OK", txt):
                    fn.ok_returns.append(ch.location.line)
                self._body(ch, fn, cls, held, ir, detached)
                continue
            if k in (K.CALL_EXPR,):
                self._call(ch, fn, cls, held, ir, detached,
                           stmt_parent=(cur.kind == K.COMPOUND_STMT),
                           void_cast=False)
                continue
            if k == K.CSTYLE_CAST_EXPR and cur.kind == K.COMPOUND_STMT:
                inner = [c for c in ch.get_children()]
                if inner and inner[-1].kind == K.CALL_EXPR \
                        and "void" in self._tok_text(ch)[:8]:
                    self._call(inner[-1], fn, cls, held, ir, detached,
                               stmt_parent=True, void_cast=True)
                    continue
            self._body(ch, fn, cls, held, ir, detached)

    def _call(self, ch, fn, cls, held, ir, detached, stmt_parent,
              void_cast):
        K = self.ci.CursorKind
        name = ch.spelling or ""
        toks = [t.spelling for t in ch.get_tokens()]
        qual = ()
        is_member = False
        receiver = ""
        ref = ch.referenced
        if ref is not None:
            sp = ref.semantic_parent
            if sp is not None and sp.kind in (
                    K.CLASS_DECL, K.STRUCT_DECL, K.CLASS_TEMPLATE):
                qual = (sp.spelling,)
                is_member = True
        if "std::thread" in (ch.type.spelling or ""):
            detached = True
        colon_prefix = len(toks) >= 1 and toks[0] == "::"
        # Lock()/Unlock() on a memdb::Mutex member.
        if name in ("Lock", "Unlock", "TryLock") and qual == ("Mutex",):
            m = re.match(r"([A-Za-z_]\w*)\s*(?:\.|->)", " ".join(toks))
            lock = canon_lock(m.group(1) if m else "", cls)
            if name in ("Lock", "TryLock"):
                for h in held:
                    fn.lock_edges.append(LockEdge(
                        h["lock"], lock, ch.location.line))
                fn.acquired.add(lock)
                held.append({"lock": lock, "scoped": False})
            else:
                held[:] = [h for h in held if h["lock"] != lock]
            return
        args = []
        try:
            for a in ch.get_arguments():
                args.append(" ".join(t.spelling for t in a.get_tokens()))
        except Exception:  # noqa: BLE001
            pass
        if name:
            fn.calls.append(CallSite(
                name=name.split("<")[0], line=ch.location.line, qual=qual,
                is_member=is_member, receiver=receiver,
                colon_prefix=colon_prefix, args=tuple(args),
                held=tuple(h["lock"] for h in held), detached=detached,
                stmt_head=stmt_parent, ends_stmt=stmt_parent,
                void_cast=void_cast))
        for sub in ch.get_children():
            self._body(sub, fn, cls, held, ir, detached)


# --------------------------------------------------------------------------
# CLI.
# --------------------------------------------------------------------------


def load_config(root: Path, path: str | None) -> dict:
    cfg = dict(DEFAULT_CONFIG)
    if path:
        with open(path, encoding="utf-8") as f:
            cfg.update(json.load(f))
    return cfg


def collect_files(root: Path, cfg: dict, explicit: list[str]):
    if explicit:
        out = []
        for p in explicit:
            pp = Path(p)
            if pp.is_dir():
                out.extend(sorted(
                    x for x in pp.rglob("*")
                    if x.suffix in CXX_SUFFIXES and x.is_file()))
            else:
                out.append(pp)
        return out
    files = []
    for r in cfg["roots"]:
        base = root / r
        files.extend(sorted(
            p for p in base.rglob("*")
            if p.suffix in CXX_SUFFIXES and p.is_file()))
    return files


def make_frontend(kind: str, root: Path):
    notice = None
    if kind in ("auto", "clang"):
        try:
            return ClangFrontend(root), None
        except Exception as e:  # noqa: BLE001
            notice = (f"clang frontend unavailable "
                      f"({type(e).__name__}: {e}); using textual frontend")
            if kind == "clang":
                return None, notice
    return TextualFrontend(), notice


def main() -> int:
    ap = argparse.ArgumentParser(
        description="memdb-analyzer: call-graph invariant checks")
    ap.add_argument("--root", default=str(REPO_ROOT),
                    help="repo root (default: this script's parent/..)")
    ap.add_argument("--config", help="JSON config overriding the defaults")
    ap.add_argument("--frontend", choices=["auto", "clang", "textual"],
                    default="auto")
    ap.add_argument("--check", action="append",
                    help="run only the named check group(s): blocking, "
                         "lock-order, status-discard, rpc-deadline, "
                         "ok-return, file-rules")
    ap.add_argument("--golden",
                    help="compare findings against this expected file "
                         "(lines: `<relpath> [<check>]`) instead of "
                         "printing them")
    ap.add_argument("paths", nargs="*",
                    help="explicit files/dirs (default: config roots)")
    args = ap.parse_args()

    root = Path(args.root).resolve()
    cfg = load_config(root, args.config)
    frontend, notice = make_frontend(args.frontend, root)
    if notice:
        print(f"memdb-analyzer: NOTICE: {notice}", file=sys.stderr)
    if frontend is None:
        return 4

    analysis = Analysis(root, cfg)
    files = collect_files(root, cfg, args.paths)
    for path in files:
        relp = analysis.rel(path.resolve())
        analysis.add_file(frontend.parse(path.resolve(), relp))
    findings = analysis.run(set(args.check) if args.check else None)

    if args.golden:
        expected = []
        with open(args.golden, encoding="utf-8") as f:
            for line in f:
                line = line.split("#", 1)[0].strip()
                if line:
                    expected.append(line)
        got = sorted(f"{f.path} [{f.check}]" for f in findings)
        expected = sorted(expected)
        if got == expected:
            print(f"memdb-analyzer: golden OK ({len(got)} finding(s) "
                  f"match, frontend={frontend.name})")
            return 0
        print("memdb-analyzer: golden MISMATCH", file=sys.stderr)
        # Multiset diff: a count mismatch on one line is still a mismatch.
        want, have = Counter(expected), Counter(got)
        for line in sorted((want - have).elements()):
            print(f"  missing:    {line}", file=sys.stderr)
        for line in sorted((have - want).elements()):
            print(f"  unexpected: {line}", file=sys.stderr)
        for f in findings:
            print(f"  detail: {f.render()}", file=sys.stderr)
        return 1

    if findings:
        print(f"memdb-analyzer: {len(findings)} finding(s) "
              f"(frontend={frontend.name})", file=sys.stderr)
        for f in findings:
            print(f.render())
        return 1
    print(f"memdb-analyzer: OK ({len(files)} files clean, "
          f"frontend={frontend.name})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
