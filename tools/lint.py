#!/usr/bin/env python3
"""Repo-invariant linter for the memorydb tree.

Enforces the concurrency conventions that the compiler cannot (or that only
clang's -Wthread-safety can, which not every toolchain has):

  1. No raw standard-library mutexes outside src/common/sync.h. Everything in
     src/ must use memdb::Mutex / memdb::MutexLock / memdb::CondVar so that
     fields can carry GUARDED_BY annotations and locks are visible to clang's
     thread-safety analysis. Flags std::mutex, std::timed_mutex,
     std::recursive_mutex, std::shared_mutex, std::lock_guard,
     std::unique_lock, std::scoped_lock, std::condition_variable(_any), and
     direct #include <mutex> / #include <condition_variable>.

  2. No bare std::atomic .load()/.store() in src/: every access must spell an
     explicit std::memory_order so the required ordering is a reviewed
     decision, not a silent seq_cst default.

  3. No blocking syscalls on event-loop threads: sleep_for, fsync/fdatasync,
     and ::connect inside loop-owned files (src/net/, src/rpc/, and the
     txlog service/remote-client, excluding *_main.cc entry points).
     src/client/ and src/loadgen/ are deliberately off-loop: client-side
     blocking sockets on plain worker threads, never an event loop. A site
     that blocks deliberately — txlogd's fsync-before-ack durability gate,
     a nonblocking connect that returns EINPROGRESS — carries a
     `lint:allow-blocking` comment on its line or within the two lines above
     (statements wrap), which both suppresses the finding and documents why
     the block is intentional.

  4. Span recording stays lock-free: TraceLog::Record runs inline on
     event-loop threads (net io loops, the rpc loop, txlogd's raft loop), so
     src/common/trace.{h,cc} may not name any blocking lock primitive —
     memdb::Mutex / MutexLock / CondVar, or an include of common/sync.h.
     A trace-plane stall must never become a write-path stall; the ring is
     atomics-only by construction and this keeps it that way.

Exit status 0 = clean, 1 = findings (one per line: path:lineno: message).
Run from anywhere; paths resolve relative to the repo root.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"

SYNC_EXEMPT = {SRC / "common" / "sync.h", SRC / "common" / "sync.cc"}

RAW_SYNC_PATTERNS = [
    (re.compile(r"#\s*include\s*<mutex>"), "#include <mutex>"),
    (re.compile(r"#\s*include\s*<condition_variable>"),
     "#include <condition_variable>"),
    (re.compile(r"\bstd::(?:timed_|recursive_|shared_)?mutex\b"),
     "raw std:: mutex type"),
    (re.compile(r"\bstd::(?:lock_guard|unique_lock|scoped_lock)\b"),
     "raw std:: lock type"),
    (re.compile(r"\bstd::condition_variable(?:_any)?\b"),
     "raw std::condition_variable"),
]

ATOMIC_ACCESS = re.compile(r"\.(load|store)\s*\(")

BLOCKING_PATTERNS = [
    (re.compile(r"\bsleep_for\s*\("), "sleep_for on a loop-owned thread"),
    (re.compile(r"\bsleep_until\s*\("), "sleep_until on a loop-owned thread"),
    (re.compile(r"\b(?:::)?fsync\s*\("), "fsync on a loop-owned thread"),
    (re.compile(r"\b(?:::)?fdatasync\s*\("),
     "fdatasync on a loop-owned thread"),
    (re.compile(r"::connect\s*\("), "connect on a loop-owned thread"),
]

ALLOW_BLOCKING = "lint:allow-blocking"

# The span-recording hot path: called inline from event-loop threads, so it
# must stay lock-free (rule 4).
TRACE_LOCK_FREE_FILES = {SRC / "common" / "trace.h", SRC / "common" / "trace.cc"}

# The include is matched against the raw text (the quoted path is a string
# literal, which the comment stripper blanks); the identifiers against the
# stripped code so prose in comments cannot trip the rule.
TRACE_SYNC_INCLUDE = re.compile(r"#\s*include\s*\"common/sync\.h\"")
TRACE_LOCK_IDENT = re.compile(r"\b(?:memdb::)?(?:Mutex|MutexLock|CondVar)\b")

# Files whose code runs on (or can be inlined into) an event-loop thread.
# src/failover runs entirely on the RespServer's loop (lease ticks are loop
# timers). src/chaos is driver-thread code, but it is held to the same rule
# so every deliberate block carries a reason next to it.
LOOP_OWNED_DIRS = [
    SRC / "net",
    SRC / "rpc",
    SRC / "replication",
    SRC / "failover",
    SRC / "chaos",
    # The slot table and migrator state machine run on the RespServer loop;
    # only the migration channel worker may block, with a reason comment.
    SRC / "shard",
]
LOOP_OWNED_FILES_GLOB = [
    (SRC / "txlog", "service.*"),
    (SRC / "txlog", "remote_client.*"),
    (SRC / "storage", "fs_object_store.*"),
]

CXX_SUFFIXES = {".h", ".hpp", ".cc", ".cpp", ".cxx"}


def strip_comments_keep_lines(text: str) -> str:
    """Blank out comment bodies and string literals, preserving line structure
    so reported line numbers stay accurate."""
    out = []
    i, n = 0, len(text)
    state = "code"  # code | line_comment | block_comment | string | char
    while i < n:
        ch = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if ch == "/" and nxt == "/":
                state = "line_comment"
                out.append("  ")
                i += 2
                continue
            if ch == "/" and nxt == "*":
                state = "block_comment"
                out.append("  ")
                i += 2
                continue
            if ch == '"':
                state = "string"
                out.append(ch)
                i += 1
                continue
            if ch == "'":
                state = "char"
                out.append(ch)
                i += 1
                continue
            out.append(ch)
        elif state == "line_comment":
            if ch == "\n":
                state = "code"
                out.append(ch)
            else:
                out.append(" ")
        elif state == "block_comment":
            if ch == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
                continue
            out.append(ch if ch == "\n" else " ")
        elif state == "string":
            if ch == "\\":
                out.append("  ")
                i += 2
                continue
            if ch == '"':
                state = "code"
            out.append(ch if ch in ('"', "\n") else " ")
        elif state == "char":
            if ch == "\\":
                out.append("  ")
                i += 2
                continue
            if ch == "'":
                state = "code"
            out.append(ch if ch in ("'", "\n") else " ")
        i += 1
    return "".join(out)


def line_of(text: str, offset: int) -> int:
    return text.count("\n", 0, offset) + 1


def check_raw_sync(path: Path, code: str, findings: list[str]) -> None:
    if path in SYNC_EXEMPT:
        return
    for pattern, what in RAW_SYNC_PATTERNS:
        for m in pattern.finditer(code):
            findings.append(
                f"{path.relative_to(REPO_ROOT)}:{line_of(code, m.start())}: "
                f"{what} — use memdb::Mutex/MutexLock/CondVar from "
                f"common/sync.h instead")


def check_atomic_order(path: Path, code: str, findings: list[str]) -> None:
    for m in ATOMIC_ACCESS.finditer(code):
        # Walk the (possibly multi-line) argument list to its closing paren.
        depth = 1
        j = m.end()
        while j < len(code) and depth > 0:
            if code[j] == "(":
                depth += 1
            elif code[j] == ")":
                depth -= 1
            j += 1
        args = code[m.end():j - 1]
        if "memory_order" not in args:
            findings.append(
                f"{path.relative_to(REPO_ROOT)}:{line_of(code, m.start())}: "
                f".{m.group(1)}() without an explicit std::memory_order")


def is_loop_owned(path: Path) -> bool:
    if path.name.endswith("_main.cc"):
        return False
    for d in LOOP_OWNED_DIRS:
        if d in path.parents:
            return True
    for d, pattern in LOOP_OWNED_FILES_GLOB:
        if path.parent == d and path.match(pattern):
            return True
    return False


def check_blocking(path: Path, code: str, raw_lines: list[str],
                   findings: list[str]) -> None:
    if not is_loop_owned(path):
        return
    for pattern, what in BLOCKING_PATTERNS:
        for m in pattern.finditer(code):
            lineno = line_of(code, m.start())
            # Same line or up to two lines above (wrapped statements push the
            # call past the line carrying the comment).
            window = raw_lines[max(0, lineno - 3):lineno]
            if any(ALLOW_BLOCKING in line for line in window):
                continue
            findings.append(
                f"{path.relative_to(REPO_ROOT)}:{lineno}: {what} — hop off "
                f"the loop or annotate the line (or the line above) with "
                f"`{ALLOW_BLOCKING} -- <reason>`")


def check_trace_lock_free(path: Path, code: str, raw: str,
                          findings: list[str]) -> None:
    if path not in TRACE_LOCK_FREE_FILES:
        return
    rel = path.relative_to(REPO_ROOT)
    why = ("span recording runs inline on event-loop threads and must stay "
           "lock-free (atomics only)")
    for m in TRACE_SYNC_INCLUDE.finditer(raw):
        findings.append(
            f"{rel}:{line_of(raw, m.start())}: include of common/sync.h in "
            f"the trace hot path — {why}")
    for m in TRACE_LOCK_IDENT.finditer(code):
        findings.append(
            f"{rel}:{line_of(code, m.start())}: blocking lock primitive "
            f"{m.group(0)} in the trace hot path — {why}")


def main() -> int:
    findings: list[str] = []
    files = sorted(p for p in SRC.rglob("*")
                   if p.suffix in CXX_SUFFIXES and p.is_file())
    for path in files:
        raw = path.read_text(encoding="utf-8")
        code = strip_comments_keep_lines(raw)
        raw_lines = raw.splitlines()
        check_raw_sync(path, code, findings)
        check_atomic_order(path, code, findings)
        check_blocking(path, code, raw_lines, findings)
        check_trace_lock_free(path, code, raw, findings)
    if findings:
        print(f"tools/lint.py: {len(findings)} finding(s)", file=sys.stderr)
        for f in findings:
            print(f)
        return 1
    print(f"tools/lint.py: OK ({len(files)} files clean)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
