// Analyzer-FAIL twin of lock_order_ok.cc: Debit inverts the acquisition
// order, planting a classic ABBA deadlock. memdb-analyzer's lock-order
// check must report exactly one cycle here
// (Transfer::ledger_mu_ -> Transfer::account_mu_ -> Transfer::ledger_mu_);
// check.sh runs both twins and fails if this one passes or the ok twin
// doesn't.

#include "common/sync.h"

namespace {

class Transfer {
 public:
  void Credit() {
    memdb::MutexLock ledger(&ledger_mu_);
    memdb::MutexLock account(&account_mu_);
    balance_ += 1;
  }

  void Debit() {
    memdb::MutexLock account(&account_mu_);
    memdb::MutexLock ledger(&ledger_mu_);
    balance_ -= 1;
  }

 private:
  memdb::Mutex ledger_mu_ ACQUIRED_BEFORE(account_mu_);
  memdb::Mutex account_mu_;
  int balance_ GUARDED_BY(account_mu_) = 0;
};

}  // namespace

int main() {
  Transfer t;
  t.Credit();
  t.Debit();
  return 0;
}
