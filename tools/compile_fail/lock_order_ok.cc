// Analyzer-PASS control for the lock-order harness: identical shape to
// lock_order_cycle.cc but with both paths taking the two mutexes in the
// same order. memdb-analyzer's lock-order check must report nothing here;
// if it does, the failure of lock_order_cycle.cc proves nothing (the
// harness itself is broken). Also compiles clean under clang's
// -Wthread-safety for toolchains that have it.

#include "common/sync.h"

namespace {

class Transfer {
 public:
  void Credit() {
    memdb::MutexLock ledger(&ledger_mu_);
    memdb::MutexLock account(&account_mu_);
    balance_ += 1;
  }

  void Debit() {
    memdb::MutexLock ledger(&ledger_mu_);
    memdb::MutexLock account(&account_mu_);
    balance_ -= 1;
  }

 private:
  memdb::Mutex ledger_mu_ ACQUIRED_BEFORE(account_mu_);
  memdb::Mutex account_mu_;
  int balance_ GUARDED_BY(account_mu_) = 0;
};

}  // namespace

int main() {
  Transfer t;
  t.Credit();
  t.Debit();
  return 0;
}
