// Compile-fail check: a GUARDED_BY field touched without its mutex MUST be
// rejected by clang -Wthread-safety -Werror=thread-safety. scripts/check.sh
// compiles this file expecting failure; if it ever compiles, the annotation
// plumbing in common/thread_annotations.h has silently broken.
//
// Only meaningful under clang — the attributes expand to nothing on GCC, so
// the harness skips this check when clang++ is unavailable.

#include "common/sync.h"

namespace {

class Account {
 public:
  // BUG (deliberate): writes balance_ without holding mu_. Thread-safety
  // analysis must flag this as "writing variable 'balance_' requires holding
  // mutex 'mu_'".
  void Deposit(int amount) { balance_ += amount; }

  int Read() {
    memdb::MutexLock lock(&mu_);
    return balance_;
  }

 private:
  memdb::Mutex mu_;
  int balance_ GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Account account;
  account.Deposit(1);
  return account.Read();
}
