// Compile-PASS control for the thread-safety harness: identical shape to
// unguarded_access.cc but with every access correctly locked. If this file
// fails to compile under -Wthread-safety -Werror=thread-safety, the failure
// of unguarded_access.cc proves nothing (the harness itself is broken —
// e.g. a bad include path or over-strict annotations in common/sync.h).

#include "common/sync.h"

namespace {

class Account {
 public:
  void Deposit(int amount) {
    memdb::MutexLock lock(&mu_);
    balance_ += amount;
  }

  int Read() {
    memdb::MutexLock lock(&mu_);
    return balance_;
  }

  // Exercises REQUIRES: the caller must hold the lock.
  int ReadLocked() REQUIRES(mu_) { return balance_; }

  int ReadViaRequires() {
    memdb::MutexLock lock(&mu_);
    return ReadLocked();
  }

 private:
  memdb::Mutex mu_;
  int balance_ GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Account account;
  account.Deposit(1);
  return account.Read() + account.ReadViaRequires();
}
