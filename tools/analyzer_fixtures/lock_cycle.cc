// Seeded violation: a classic ABBA inversion on two member mutexes.
// Expected: one [lock-order] finding (the cycle is reported once).
//
// The Pair class below plants the SAME inversion on mu_c_/mu_d_, but one
// direction is whitelisted in lock_order.allow — proving the reviewed-
// exception path drops the edge before the cycle search.
#include "common/sync.h"

namespace memdb {

class Dual {
 public:
  void AThenB() {
    MutexLock a(&mu_a_);
    MutexLock b(&mu_b_);
  }
  void BThenA() {
    MutexLock b(&mu_b_);
    MutexLock a(&mu_a_);
  }

 private:
  Mutex mu_a_;
  Mutex mu_b_;
};

class Pair {
 public:
  void CThenD() {
    MutexLock c(&mu_c_);
    MutexLock d(&mu_d_);
  }
  void DThenC() {
    MutexLock d(&mu_d_);
    MutexLock c(&mu_c_);
  }

 private:
  Mutex mu_c_;
  Mutex mu_d_;
};

}  // namespace memdb
