// Seeded violations for the folded lint.py file-level rules: a raw std::
// mutex (two findings: the include and the type) and an atomic access
// with the silent seq_cst default.
// Expected: two [raw-sync] findings and one [memory-order] finding.
#include <atomic>
#include <mutex>

namespace memdb {

std::mutex g_raw_mutex;

int ReadCount(std::atomic<int>& c) {
  return c.load();
}

}  // namespace memdb
