// Seeded violations: this file is listed in config.json's trace_lock_free
// set (the span-recording hot path), so the sync.h include and every lock
// identifier (Mutex, MutexLock) violate the atomics-only rule.
// Expected: three [trace-lock-free] findings.
#ifndef ANALYZER_FIXTURES_TRACE_HOT_H_
#define ANALYZER_FIXTURES_TRACE_HOT_H_

#include "common/sync.h"

namespace memdb {

inline void Record(Mutex* mu) {
  MutexLock lock(mu);
}

}  // namespace memdb

#endif  // ANALYZER_FIXTURES_TRACE_HOT_H_
