// Seeded violation for the ok-return pairing rule in config.json
// ({class: Gate, method: Start, must_call: Arm}): the fast path reports
// success without arming. Expected: one [ok-return] finding (the second
// return, after Arm(), is clean).
namespace memdb {

struct Status {
  static Status OK();
};

class Gate {
 public:
  Status Start(bool fast) {
    if (fast) {
      return Status::OK();  // skipped Arm(): flagged
    }
    Arm();
    return Status::OK();  // armed first: clean
  }

 private:
  void Arm() {}
};

}  // namespace memdb
