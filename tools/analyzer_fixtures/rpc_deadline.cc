// Seeded violation: an rpc::Channel::Call with deadline 0 (wait forever).
// Expected: one [rpc-deadline] finding; the budgeted twin is clean.
#include <string>

namespace memdb {

struct Channel {
  void Call(std::string method, std::string payload, int timeout_ms,
            int trace_id, void (*done)(int));
};

void OnDone(int);

void Probe(Channel* ch) {
  ch->Call("ping", "", 0, 0, OnDone);    // no deadline: hangs forever
  ch->Call("ping", "", 50, 0, OnDone);   // explicit caller budget: clean
}

}  // namespace memdb
