// Clean control for the blocking checks: every blocking call here uses one
// of the two escape hatches, so this file must contribute zero findings.
#include <chrono>
#include <thread>

namespace memdb {

void BoundedBackoff() {
  // lint:allow-blocking -- fixture control: deliberate bounded sleep with a
  // documented reason suppresses the direct check.
  std::this_thread::sleep_for(std::chrono::milliseconds(1));
}

// lint:off-loop -- fixture control: this body runs on a dedicated worker
// thread, never on the event loop, so it may block freely.
void WorkerBody(int fd) {
  ::fsync(fd);
}

}  // namespace memdb
