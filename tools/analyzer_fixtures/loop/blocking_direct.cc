// Seeded violation: a direct sleep inside a loop-owned file.
// Expected: one [blocking-loop] finding.
#include <chrono>
#include <thread>

namespace memdb {

void TickHandler() {
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
}

}  // namespace memdb
