// Seeded violation: the blocking call hides one helper deep, in another
// file that is NOT loop-owned — exactly the case the per-file regex
// linter cannot see. Expected: one [blocking-transitive] finding with the
// two-hop witness path (OnWritable -> BlockingFlush -> fsync).
namespace memdb {

void BlockingFlush(int fd);  // defined in ../util.cc; calls ::fsync

void OnWritable(int fd) {
  BlockingFlush(fd);
}

}  // namespace memdb
