// Helper soil for loop/blocking_transitive.cc: this file is not
// loop-owned, so the direct fsync here is legal — the violation is the
// *call* from the loop-owned entry point, which only the call-graph walk
// can see. Contributes zero findings itself.
#include <unistd.h>

namespace memdb {

void BlockingFlush(int fd) {
  ::fsync(fd);
}

}  // namespace memdb
