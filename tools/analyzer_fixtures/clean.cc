// Clean control: every pattern here is the *approved* form of something a
// sibling fixture plants as a violation. Must contribute zero findings.
#include <atomic>

namespace memdb {

struct Status {
  static Status OK();
  bool ok() const;
};

Status TryThing() { return Status::OK(); }

void HandledAndAnnotated() {
  Status s = TryThing();  // handled
  if (!s.ok()) return;
  // lint:allow-discard -- fixture control: best-effort call, the caller
  // retries on its own cadence either way.
  (void)TryThing();
}

int ReadCountRelaxed(std::atomic<int>& c) {
  return c.load(std::memory_order_relaxed);
}

}  // namespace memdb
