// Seeded violations: a Status-returning call discarded bare, and a
// (void)-cast discard with no reason comment.
// Expected: two [status-discard] findings.
namespace memdb {

struct Status {
  static Status OK();
};

Status SaveThing() { return Status::OK(); }

void Caller() {
  SaveThing();        // bare discard
  (void)SaveThing();  // cast away with no reason comment
}

}  // namespace memdb
