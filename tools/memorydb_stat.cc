// memorydb-stat: one-shot fleet scraper. Pulls the Prometheus exposition
// from every member of a MemoryDB deployment — RESP servers (primary and
// replicas) via the `METRICS` command, txlogd replicas and the snapshotter
// via the rpc `svc.Metrics` endpoint — and renders one table, one row per
// process, so an operator sees the whole write path at a glance.
//
//   memorydb-stat [--server HOST:PORT]... [--rpc HOST:PORT]...
//                 [--series NAME]... [--raw]
//
// Default columns cover the durable write path end to end: client load on
// the server, gate throughput, raft role/commit on each log replica, and
// snapshot progress. --series replaces them (repeatable; fully-qualified
// series names, e.g. 'cmd_latency_us_count{cmd="SET"}'). --raw dumps each
// scrape's exposition text instead of the table.
//
// Exit status: 0 if every target answered, 1 if any scrape failed.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/slice.h"
#include "common/status.h"
#include "common/sync.h"
#include "resp/resp.h"
#include "rpc/channel.h"
#include "rpc/loop.h"
#include "txlog/rpc_wire.h"

namespace {

struct Target {
  std::string endpoint;  // host:port
  bool rpc = false;      // false = RESP server, true = svc.Metrics
};

bool SplitHostPort(const std::string& endpoint, std::string* host,
                   uint16_t* port) {
  const size_t colon = endpoint.rfind(':');
  if (colon == std::string::npos) return false;
  *host = endpoint.substr(0, colon);
  char* end = nullptr;
  const unsigned long v = std::strtoul(endpoint.c_str() + colon + 1, &end, 10);
  if (end == endpoint.c_str() + colon + 1 || *end != '\0' || v > 65535) {
    return false;
  }
  *port = static_cast<uint16_t>(v);
  return true;
}

// Blocking one-command RESP client (the tool runs one scrape and exits;
// no event loop needed on this side).
bool RespScrape(const std::string& host, uint16_t port,
                const std::vector<std::string>& argv, std::string* out) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return false;
  struct sockaddr_in sa;
  std::memset(&sa, 0, sizeof(sa));
  sa.sin_family = AF_INET;
  sa.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &sa.sin_addr) != 1 ||
      ::connect(fd, reinterpret_cast<struct sockaddr*>(&sa), sizeof(sa)) !=
          0) {
    ::close(fd);
    return false;
  }
  struct timeval tv{5, 0};
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  const std::string bytes = memdb::resp::EncodeCommand(argv);
  size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n =
        ::send(fd, bytes.data() + off, bytes.size() - off, MSG_NOSIGNAL);
    if (n <= 0) {
      ::close(fd);
      return false;
    }
    off += static_cast<size_t>(n);
  }
  memdb::resp::Decoder dec;
  char buf[16 * 1024];
  for (;;) {
    memdb::resp::Value v;
    const memdb::resp::DecodeStatus st = dec.Decode(&v);
    if (st == memdb::resp::DecodeStatus::kOk) {
      ::close(fd);
      if (v.type != memdb::resp::Type::kBulkString) return false;
      *out = v.str;
      return true;
    }
    if (st == memdb::resp::DecodeStatus::kError) {
      ::close(fd);
      return false;
    }
    const ssize_t r = ::recv(fd, buf, sizeof(buf), 0);
    if (r <= 0) {
      ::close(fd);
      return false;
    }
    dec.Feed(memdb::Slice(buf, static_cast<size_t>(r)));
  }
}

// Synchronous svc.Metrics call over the shared loop thread.
bool RpcScrape(memdb::rpc::LoopThread* loop, const std::string& host,
               uint16_t port, std::string* out) {
  memdb::rpc::Channel channel(loop, host, port);
  memdb::Mutex mu;
  memdb::CondVar cv;
  bool done = false;
  bool ok = false;
  channel.Call(memdb::txlog::rpcwire::kMetrics, std::string(),
               /*timeout_ms=*/3000, /*trace_id=*/0,
               [&](const memdb::Status& s, std::string payload) {
                 memdb::MutexLock lock(&mu);
                 ok = s.ok();
                 if (ok) *out = std::move(payload);
                 done = true;
                 cv.Signal();
               });
  {
    memdb::MutexLock lock(&mu);
    while (!done) cv.Wait(&mu);
  }
  channel.Shutdown();
  return ok;
}

std::string FormatSeries(const std::string& exposition,
                         const std::string& series) {
  double v = 0;
  if (!memdb::MetricsRegistry::ParseSeries(exposition, series, &v)) {
    return "-";
  }
  char buf[32];
  if (v == static_cast<double>(static_cast<long long>(v))) {
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  } else {
    std::snprintf(buf, sizeof(buf), "%.2f", v);
  }
  return buf;
}

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--server HOST:PORT]... [--rpc HOST:PORT]...\n"
               "          [--series NAME]... [--raw]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<Target> targets;
  std::vector<std::string> series;
  bool raw = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const bool has_value = i + 1 < argc;
    if (arg == "--server" && has_value) {
      targets.push_back(Target{argv[++i], false});
    } else if (arg == "--rpc" && has_value) {
      targets.push_back(Target{argv[++i], true});
    } else if (arg == "--series" && has_value) {
      series.push_back(argv[++i]);
    } else if (arg == "--raw") {
      raw = true;
    } else {
      return Usage(argv[0]);
    }
  }
  if (targets.empty()) return Usage(argv[0]);
  if (series.empty()) {
    series = {"connected_clients",     "txlog_gate_appends_total",
              "raft_role",             "raft_commit_index",
              "txlog_fsyncs_total",    "offbox_cycles_total",
              "offbox_last_snapshot_position",
              "used_memory_bytes",     "evicted_keys_total",
              "expired_keys_total"};
  }

  memdb::rpc::LoopThread loop;
  if (!loop.Start().ok()) {
    std::fprintf(stderr, "memorydb-stat: cannot start rpc loop\n");
    return 1;
  }

  std::vector<std::string> expositions(targets.size());
  std::vector<bool> scraped(targets.size(), false);
  bool all_ok = true;
  for (size_t i = 0; i < targets.size(); ++i) {
    std::string host;
    uint16_t port = 0;
    if (!SplitHostPort(targets[i].endpoint, &host, &port)) {
      std::fprintf(stderr, "memorydb-stat: bad endpoint '%s'\n",
                   targets[i].endpoint.c_str());
      all_ok = false;
      continue;
    }
    scraped[i] = targets[i].rpc
                     ? RpcScrape(&loop, host, port, &expositions[i])
                     : RespScrape(host, port, {"METRICS"}, &expositions[i]);
    if (!scraped[i]) {
      std::fprintf(stderr, "memorydb-stat: scrape failed for %s\n",
                   targets[i].endpoint.c_str());
      all_ok = false;
    }
  }
  loop.Stop();

  if (raw) {
    for (size_t i = 0; i < targets.size(); ++i) {
      std::printf("== %s ==\n%s\n", targets[i].endpoint.c_str(),
                  scraped[i] ? expositions[i].c_str() : "(unreachable)");
    }
    return all_ok ? 0 : 1;
  }

  std::printf("%-22s %-6s", "endpoint", "kind");
  for (const std::string& s : series) std::printf(" %*s", 18, s.c_str());
  std::printf("\n");
  for (size_t i = 0; i < targets.size(); ++i) {
    std::printf("%-22s %-6s", targets[i].endpoint.c_str(),
                targets[i].rpc ? "rpc" : "resp");
    for (const std::string& s : series) {
      std::printf(" %*s", 18,
                  scraped[i] ? FormatSeries(expositions[i], s).c_str() : "!");
    }
    std::printf("\n");
  }
  return all_ok ? 0 : 1;
}
