// memorydb-trace: offline cross-process trace analysis. Merges per-process
// span files (the JSONL written by --trace-file or scraped via TRACE DUMP /
// svc.TraceDump), reconstructs each write's causal chain across processes
// (the file-based analogue of TraceLog::Reconstruct: merge, stable-sort by
// wall stamp), and reports per-stage latency attribution along the §3.1
// durable write path plus the critical path of the slowest trace.
//
//   memorydb-trace SPANS.jsonl [SPANS.jsonl ...]
//
// Output (stable lines, parsed by the e2e test):
//   spans=N traces=N complete_chains=N
//   stage <from> -> <to>: count=N p50=Nus p99=Nus
//   end_to_end: count=N p50=Nus p99=Nus
//   critical path trace=N total=Nus
//     <proc> <stage> +Nus
//
// Exit status: 0 when at least one span parsed, 1 otherwise.

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "common/trace_export.h"

namespace {

std::string ReadFile(const char* path, bool* ok) {
  *ok = false;
  std::FILE* f = std::fopen(path, "rb");
  if (f == nullptr) return std::string();
  std::string out;
  char buf[1 << 16];
  size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) out.append(buf, n);
  std::fclose(f);
  *ok = true;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s SPANS.jsonl [SPANS.jsonl ...]\n", argv[0]);
    return 2;
  }
  std::vector<memdb::ExportedSpan> spans;
  for (int i = 1; i < argc; ++i) {
    bool ok = false;
    const std::string text = ReadFile(argv[i], &ok);
    if (!ok) {
      std::fprintf(stderr, "memorydb-trace: cannot read %s\n", argv[i]);
      return 2;
    }
    memdb::ParseSpansJsonl(text, &spans);
  }
  if (spans.empty()) {
    std::fprintf(stderr, "memorydb-trace: no spans parsed\n");
    return 1;
  }
  const size_t total_spans = spans.size();
  const std::map<uint64_t, std::vector<memdb::ExportedSpan>> by_trace =
      memdb::GroupSpansByTrace(std::move(spans));
  const memdb::WritePathReport report =
      memdb::BuildWritePathReport(by_trace, memdb::WritePathChain());

  std::printf("spans=%zu traces=%zu complete_chains=%zu\n", total_spans,
              report.traces, report.complete_chains);
  for (const memdb::StageDelta& d : report.deltas) {
    std::printf("stage %s -> %s: count=%llu p50=%lluus p99=%lluus\n",
                d.from.c_str(), d.to.c_str(),
                static_cast<unsigned long long>(d.latency_us.count()),
                static_cast<unsigned long long>(d.latency_us.Percentile(0.5)),
                static_cast<unsigned long long>(d.latency_us.Percentile(0.99)));
  }
  std::printf("end_to_end: count=%llu p50=%lluus p99=%lluus\n",
              static_cast<unsigned long long>(report.end_to_end_us.count()),
              static_cast<unsigned long long>(
                  report.end_to_end_us.Percentile(0.5)),
              static_cast<unsigned long long>(
                  report.end_to_end_us.Percentile(0.99)));

  // Critical path: the slowest complete chain, span by span, with each
  // hop's contribution — where an engineer looks first when p99 moves.
  const std::vector<std::string>& chain = memdb::WritePathChain();
  uint64_t worst_trace = 0;
  uint64_t worst_total = 0;
  for (const auto& [trace_id, tspans] : by_trace) {
    uint64_t first = 0, last = 0;
    bool has_first = false, has_last = false;
    for (const memdb::ExportedSpan& s : tspans) {
      if (!has_first && s.stage == chain.front()) {
        first = s.wall_us;
        has_first = true;
      }
      if (!has_last && s.stage == chain.back()) {
        last = s.wall_us;
        has_last = true;
      }
    }
    if (has_first && has_last && last >= first &&
        last - first >= worst_total) {
      worst_total = last - first;
      worst_trace = trace_id;
    }
  }
  if (worst_trace != 0) {
    std::printf("critical path trace=%llu total=%lluus\n",
                static_cast<unsigned long long>(worst_trace),
                static_cast<unsigned long long>(worst_total));
    const std::vector<memdb::ExportedSpan>& tspans = by_trace.at(worst_trace);
    uint64_t prev = tspans.empty() ? 0 : tspans.front().wall_us;
    for (const memdb::ExportedSpan& s : tspans) {
      std::printf("  %-12s %-22s +%lluus\n", s.proc.c_str(), s.stage.c_str(),
                  static_cast<unsigned long long>(
                      s.wall_us >= prev ? s.wall_us - prev : 0));
      prev = s.wall_us;
    }
  }
  return 0;
}
